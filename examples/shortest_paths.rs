//! Weighted shortest paths as Datalog provenance over the tropical
//! semiring — the paper's §2.4 interpretation, on a road-network-style
//! workload, with the k-best variant via `Trop_k`.
//!
//! ```text
//! cargo run --example shortest_paths
//! ```

use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;

fn main() {
    // A small road network: nodes are cities, edge weights are distances.
    //      0 ──4── 1 ──3── 2
    //      │       │       │
    //      2       1       5
    //      │       │       │
    //      3 ──6── 4 ──2── 5
    let mut g = LabeledDigraph::new(6);
    let mut weights: Vec<u64> = Vec::new();
    let road = |g: &mut LabeledDigraph, w: &mut Vec<u64>, a: u32, b: u32, dist: u64| {
        // Two directed edges per road.
        g.add_edge(a, b, "road");
        w.push(dist);
        g.add_edge(b, a, "road");
        w.push(dist);
    };
    road(&mut g, &mut weights, 0, 1, 4);
    road(&mut g, &mut weights, 1, 2, 3);
    road(&mut g, &mut weights, 0, 3, 2);
    road(&mut g, &mut weights, 1, 4, 1);
    road(&mut g, &mut weights, 2, 5, 5);
    road(&mut g, &mut weights, 3, 4, 6);
    road(&mut g, &mut weights, 4, 5, 2);

    // One session: transitive closure over `road` edges.
    let engine = Engine::builder()
        .program_text(
            "T(X,Y) :- road(X,Y).\n\
             T(X,Y) :- T(X,Z), road(Z,Y).",
        )
        .graph(&g)
        .build()
        .expect("build session");

    // Compile the provenance circuit for T(city0, city5) with the NC²
    // repeated-squaring construction (Theorem 5.7): depth O(log² n).
    let q = engine.node_query(0, 5).expect("query");
    let sq = q.circuit(Strategy::ProductSquaring).expect("compile");
    println!(
        "squaring circuit for T(city0, city5): {} gates, depth {}",
        sq.stats.num_gates, sq.stats.depth
    );

    // Tropical semiring: the shortest 0 → 5 distance. The i-th graph edge
    // carries weights[i], aligned through the session's edge facts.
    let tropical = FromEdgeWeights::from_fn(engine.edge_facts(), |i| Tropical::new(weights[i]));
    let dist = sq.circuit.eval(&tropical);
    println!("shortest distance 0 → 5: {dist}   (0-1-4-5: 4+1+2 = 7)");

    // Trop_3: the three best path weights.
    let top3 = sq
        .circuit
        .eval(&FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
            TropK::<3>::single(weights[i])
        }));
    println!("3 best path weights:     {top3}");

    // Bottleneck semiring: the widest path (weights as capacities).
    let cap = sq
        .circuit
        .eval(&FromEdgeWeights::from_fn(engine.edge_facts(), |i| {
            Bottleneck::new(weights[i])
        }));
    println!("widest-path capacity:    {cap}");

    // Why-provenance: which roads appear in some minimal route?
    let why = sq.circuit.eval(&from_fn(WhyProv::fact));
    println!(
        "minimal road sets supporting reachability: {} witnesses",
        why.len()
    );

    // Cross-check: the Bellman–Ford construction (Theorem 5.6) and the
    // session's own fixpoint evaluation agree with the circuit.
    let bf = q.circuit(Strategy::ProductBellmanFord).expect("compile BF");
    assert_eq!(bf.circuit.eval(&tropical), dist, "both constructions agree");
    assert_eq!(
        q.eval(&tropical).expect("fixpoint"),
        dist,
        "fixpoint agrees"
    );
    println!("Bellman–Ford circuit agrees (Thm 5.6 ≡ Thm 5.7 over the tropical semiring).");
}
