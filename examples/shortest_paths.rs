//! Weighted shortest paths as Datalog provenance over the tropical
//! semiring — the paper's §2.4 interpretation, on a road-network-style
//! workload, with the k-best variant via `Trop_k`.
//!
//! ```text
//! cargo run --example shortest_paths
//! ```

use datalog_circuits::circuit;
use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::semiring::prelude::*;

fn main() {
    // A small road network: nodes are cities, edge weights are distances.
    //      0 ──4── 1 ──3── 2
    //      │       │       │
    //      2       1       5
    //      │       │       │
    //      3 ──6── 4 ──2── 5
    let mut g = LabeledDigraph::new(6);
    let mut weights: Vec<u64> = Vec::new();
    let road = |g: &mut LabeledDigraph, w: &mut Vec<u64>, a: u32, b: u32, dist: u64| {
        // Two directed edges per road.
        g.add_edge(a, b, "road");
        w.push(dist);
        g.add_edge(b, a, "road");
        w.push(dist);
    };
    road(&mut g, &mut weights, 0, 1, 4);
    road(&mut g, &mut weights, 1, 2, 3);
    road(&mut g, &mut weights, 0, 3, 2);
    road(&mut g, &mut weights, 1, 4, 1);
    road(&mut g, &mut weights, 2, 5, 5);
    road(&mut g, &mut weights, 3, 4, 6);
    road(&mut g, &mut weights, 4, 5, 2);

    // Compile the TC provenance circuit for T(0, 5) with the NC²
    // repeated-squaring construction (Theorem 5.7): depth O(log² n).
    let sq = circuit::squaring_graph(&g);
    let c = sq.circuit_for(0, 5);
    let st = circuit::stats(&c);
    println!(
        "squaring circuit for T(city0, city5): {} gates, depth {}",
        st.num_gates, st.depth
    );

    // Tropical semiring: the shortest 0 → 5 distance.
    let dist = c.eval(&|e| Tropical::new(weights[e as usize]));
    println!("shortest distance 0 → 5: {dist}   (0-1-4-5: 4+1+2 = 7)");

    // Trop_3: the three best path weights.
    let top3 = c.eval(&|e| TropK::<3>::single(weights[e as usize]));
    println!("3 best path weights:     {top3}");

    // Bottleneck semiring: the widest path (weights as capacities).
    let cap = c.eval(&|e| Bottleneck::new(weights[e as usize]));
    println!("widest-path capacity:    {cap}");

    // Why-provenance: which roads appear in some minimal route?
    let why = c.eval(&WhyProv::fact);
    println!("minimal road sets supporting reachability: {} witnesses", why.len());

    // Cross-check against the Bellman–Ford construction (Theorem 5.6).
    let bf = circuit::bellman_ford_graph(&g, 0, 5);
    assert_eq!(
        bf.eval(&|e| Tropical::new(weights[e as usize])),
        dist,
        "both constructions agree"
    );
    println!("Bellman–Ford circuit agrees (Thm 5.6 ≡ Thm 5.7 over the tropical semiring).");
}
