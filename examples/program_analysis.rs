//! Dyck-1 reachability (paper Example 6.4) as interprocedural program
//! analysis: matched call/return edges over a control-flow supergraph,
//! with provenance telling you *which* call chains witness a flow.
//!
//! ```text
//! cargo run --example program_analysis
//! ```

use datalog_circuits::datalog::programs;
use datalog_circuits::grammar::{CflOptions, Cnf};
use datalog_circuits::graphgen::LabeledDigraph;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;

fn main() {
    // A tiny supergraph: main calls f twice; flows are valid only if calls
    // and returns match (Dyck-1 over L=call, R=return).
    //
    //   0 -L(call₁)-> 1 -L(call₂)-> 2 -R(ret₂)-> 3 -R(ret₁)-> 4
    //   plus an unmatched edge 0 -R-> 5 that must not create flows.
    let mut g = LabeledDigraph::new(6);
    g.add_edge(0, 1, "L");
    g.add_edge(1, 2, "L");
    g.add_edge(2, 3, "R");
    g.add_edge(3, 4, "R");
    g.add_edge(0, 5, "R");

    // Route 1: the CFL-reachability worklist engine (Definition 5.1), as an
    // independent oracle for the Datalog session below.
    let cnf = Cnf::from_cfg(&datalog_circuits::grammar::Cfg::dyck1());
    let edges: Vec<(u32, u32, u32)> = g
        .edges()
        .iter()
        .map(|&(u, v, t)| (u, v, cnf.alphabet.get(g.alphabet.name(t)).unwrap()))
        .collect();
    let res = datalog_circuits::grammar::cflreach::solve(
        &cnf,
        g.num_nodes(),
        &edges,
        CflOptions::default(),
    );
    println!("balanced (matched call/return) flows:");
    for (u, v) in res.pairs_of(cnf.start) {
        println!("  node {u} ⇒ node {v}");
    }
    assert!(res.holds(cnf.start, 0, 4)); // fully matched
    assert!(res.holds(cnf.start, 1, 3)); // inner pair
    assert!(!res.holds(cnf.start, 0, 5)); // unmatched return

    // Route 2: an Engine session + the Ullman–Van Gelder circuit
    // (Theorem 6.2) — Dyck-1 has the polynomial fringe property, so the
    // provenance circuit has depth O(log² m) despite the non-linear rules.
    let engine = Engine::builder()
        .program(programs::dyck1())
        .graph(&g)
        .build()
        .expect("build session");
    let q = engine.query("S", &["v0", "v4"]).expect("query");
    assert!(q.is_derivable().expect("ground"), "flow 0⇒4 derivable");
    assert!(
        !engine
            .query("S", &["v0", "v5"])
            .unwrap()
            .is_derivable()
            .unwrap(),
        "unmatched return creates no flow"
    );

    let compiled = q.circuit(Strategy::UllmanVanGelder).expect("compile");
    println!(
        "\nUvG provenance circuit for flow 0⇒4: {} gates, depth {} (Θ(log² m))",
        compiled.stats.num_gates, compiled.stats.depth
    );
    println!(
        "witnessing edge sets: {}",
        compiled.circuit.eval(&from_fn(WhyProv::fact))
    );
    println!("polynomial: {}", q.provenance().expect("provenance"));

    // Fuzzy semiring: confidence of the flow = weakest analysis edge.
    let conf = compiled
        .circuit
        .eval(&from_fn(|e| Fuzzy::new(1.0 - 0.1 * e as f64)));
    println!("flow confidence (fuzzy): {conf}");
}
