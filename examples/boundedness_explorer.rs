//! Explore boundedness (paper §4): exact decisions for chain programs
//! (Prop 5.5), Theorem 4.6 expansion evidence, the empirical Definition-4.1
//! probe, and Corollary 4.7's cross-semiring agreement.
//!
//! ```text
//! cargo run --example boundedness_explorer
//! ```

use datalog_circuits::datalog::{programs, Database};
use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::{cross_semiring_iterations, decide_boundedness, Engine};
use datalog_circuits::semiring::{AllOnes, Bool};

fn main() {
    let suite = [
        ("transitive closure", programs::transitive_closure()),
        ("Example 4.2 (bounded)", programs::bounded_example()),
        ("monadic reachability", programs::monadic_reachability()),
        ("Dyck-1", programs::dyck1()),
        ("three hops (UCQ)", programs::three_hops()),
        ("same generation", programs::same_generation()),
    ];

    println!("— decision / evidence (Prop 5.5 exact for chain, Thm 4.6 otherwise) —");
    for (name, p) in &suite {
        let r = decide_boundedness(p, &Default::default());
        println!("  {name:<24} {:?}", r.verdict);
    }

    println!("\n— empirical probe (Definition 4.1): iterations to fixpoint on paths —");
    println!(
        "  {:<24} {:>5} {:>5} {:>5} {:>5}",
        "program", "n=4", "n=8", "n=16", "n=32"
    );
    for (name, p) in &suite {
        let mut row = Vec::new();
        for n in [4usize, 8, 16, 32] {
            // Per-program workload: Dyck needs L/R-labeled inputs, the rest
            // run on E-labeled paths (with unary seeds where needed).
            let g = if *name == "Dyck-1" {
                generators::dyck_path(n / 2, 7)
            } else {
                generators::path(n, "E")
            };
            // Seed unary EDBs the programs may need (A for Example 4.2 /
            // monadic reachability — at the path's end, since monadic
            // reachability propagates U backwards; F sibling pairs for
            // same-generation).
            let mut b = Engine::builder().program(p.clone()).graph(&g);
            if p.preds.get("A").is_some() {
                b = b.fact("A", &[&format!("v{n}")]);
            }
            if p.preds.get("F").is_some() {
                b = b.fact("F", &["v0", "v1"]);
            }
            match b.build().and_then(|e| e.fixpoint::<Bool, _>(&AllOnes)) {
                Ok(run) => row.push(if run.converged {
                    run.iterations.to_string()
                } else {
                    "∞".to_owned()
                }),
                Err(_) => row.push("-".to_owned()),
            }
        }
        println!(
            "  {:<24} {:>5} {:>5} {:>5} {:>5}",
            name, row[0], row[1], row[2], row[3]
        );
    }
    println!("  (bounded programs: flat rows; unbounded: rows grow with n)");

    println!("\n— Corollary 4.7: Boolean vs Chom-semiring iteration agreement —");
    let mut tc = programs::transitive_closure();
    let dbs: Vec<Database> = [6usize, 10, 14]
        .iter()
        .map(|&n| {
            let g = generators::gnm(n, 3 * n, &["E"], n as u64);
            Database::from_graph(&mut tc, &g).0
        })
        .collect();
    let rows = cross_semiring_iterations(&tc, &dbs).unwrap();
    for (i, (b, f, k)) in rows.iter().enumerate() {
        println!("  input {i}: Bool={b}, Fuzzy={f}, Bottleneck={k}");
    }
}
