//! The Θ(log n) vs Θ(log² n) RPQ depth dichotomy (Theorem 5.3), live:
//! two social-network path queries, one with a finite language and one with
//! an infinite one, compiled and compared.
//!
//! ```text
//! cargo run --example rpq_dichotomy --release
//! ```

use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::prelude::*;

fn main() {
    // friend-of-friend-of-friend: finite language {F·F·F}.
    let fof = "Q(X,Y) :- Q2(X,Z), F(Z,Y).\n\
               Q2(X,Y) :- Q1(X,Z), F(Z,Y).\n\
               Q1(X,Y) :- F(X,Y).\n\
               @target Q";
    // influence: F⁺ — infinite language.
    let influence = "I(X,Y) :- F(X,Y).\n\
                     I(X,Y) :- I(X,Z), F(Z,Y).";

    // Classify both (an instance-free session: classification needs no data).
    let rf = Engine::builder().program_text(fof).build().unwrap();
    let ri = Engine::builder().program_text(influence).build().unwrap();
    let (rf, ri) = (rf.classification().clone(), ri.classification().clone());
    println!(
        "friend³:   depth {:?} (lower {:?}), formulas {:?}",
        rf.depth_upper, rf.depth_lower, rf.formula
    );
    println!(
        "influence: depth {:?} (lower {:?}), formulas {:?}",
        ri.depth_upper, ri.depth_lower, ri.formula
    );

    println!(
        "\n{:>6} | {:>22} | {:>22}",
        "n", "friend³ depth (/log n)", "influence depth (/log²n)"
    );
    for n in [16usize, 32, 64, 128] {
        let g = generators::gnm(n, 4 * n, &["F"], 99);
        // A target three hops out, and the farthest one for influence.
        let dist = g.bfs_distances(0);
        let d3 = dist.iter().position(|&d| d == Some(3)).unwrap_or(1) as u32;
        let far = dist
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.map(|d| (d, v)))
            .max()
            .map(|(_, v)| v as u32)
            .unwrap_or(1);

        let ef = Engine::builder()
            .program_text(fof)
            .graph(&g)
            .build()
            .unwrap();
        let ei = Engine::builder()
            .program_text(influence)
            .graph(&g)
            .build()
            .unwrap();
        let cf = ef
            .node_query(0, d3)
            .unwrap()
            .circuit(Strategy::Auto)
            .unwrap();
        let ci = ei
            .node_query(0, far)
            .unwrap()
            .circuit(Strategy::Auto)
            .unwrap();
        let log = (n as f64).log2();
        println!(
            "{:>6} | {:>14} ({:>5.2}) | {:>14} ({:>5.2})",
            n,
            cf.stats.depth,
            cf.stats.depth as f64 / log,
            ci.stats.depth,
            ci.stats.depth as f64 / (log * log),
        );
    }
    println!("\nreading: both normalized columns stay flat — Θ(log n) vs Θ(log² n),");
    println!("with nothing in between (Theorem 5.3). The infinite query therefore has");
    println!("no polynomial-size formula (Theorem 5.4), while friend³ does.");
}
