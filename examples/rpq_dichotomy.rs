//! The Θ(log n) vs Θ(log² n) RPQ depth dichotomy (Theorem 5.3), live:
//! two social-network path queries, one with a finite language and one with
//! an infinite one, compiled and compared.
//!
//! ```text
//! cargo run --example rpq_dichotomy --release
//! ```

use datalog_circuits::core::prelude::*;
use datalog_circuits::graphgen::generators;

fn main() {
    // friend-of-friend-of-friend: finite language {F·F·F}.
    let fof = datalog_circuits::datalog::parse_program(
        "Q(X,Y) :- Q2(X,Z), F(Z,Y).\n\
         Q2(X,Y) :- Q1(X,Z), F(Z,Y).\n\
         Q1(X,Y) :- F(X,Y).\n\
         @target Q",
    )
    .unwrap();
    // influence: F⁺ — infinite language.
    let influence = datalog_circuits::datalog::parse_program(
        "I(X,Y) :- F(X,Y).\n\
         I(X,Y) :- I(X,Z), F(Z,Y).",
    )
    .unwrap();

    let rf = classify_program(&fof, 5);
    let ri = classify_program(&influence, 5);
    println!("friend³:   depth {:?} (lower {:?}), formulas {:?}", rf.depth_upper, rf.depth_lower, rf.formula);
    println!("influence: depth {:?} (lower {:?}), formulas {:?}", ri.depth_upper, ri.depth_lower, ri.formula);

    println!("\n{:>6} | {:>22} | {:>22}", "n", "friend³ depth (/log n)", "influence depth (/log²n)");
    for n in [16usize, 32, 64, 128] {
        let g = generators::gnm(n, 4 * n, &["F"], 99);
        // A target three hops out, and the farthest one for influence.
        let dist = g.bfs_distances(0);
        let d3 = dist.iter().position(|&d| d == Some(3)).unwrap_or(1) as u32;
        let far = dist
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.map(|d| (d, v)))
            .max()
            .map(|(_, v)| v as u32)
            .unwrap_or(1);

        let cf = compile_graph_fact(&fof, &g, 0, d3, Strategy::Auto).unwrap();
        let ci = compile_graph_fact(&influence, &g, 0, far, Strategy::Auto).unwrap();
        let log = (n as f64).log2();
        println!(
            "{:>6} | {:>14} ({:>5.2}) | {:>14} ({:>5.2})",
            n,
            cf.stats.depth,
            cf.stats.depth as f64 / log,
            ci.stats.depth,
            ci.stats.depth as f64 / (log * log),
        );
    }
    println!("\nreading: both normalized columns stay flat — Θ(log n) vs Θ(log² n),");
    println!("with nothing in between (Theorem 5.3). The infinite query therefore has");
    println!("no polynomial-size formula (Theorem 5.4), while friend³ does.");
}
