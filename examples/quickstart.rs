//! Quickstart: one `Engine` session from Datalog text to semiring answers —
//! classify, query, compile a provenance circuit, and interpret it over
//! several semirings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datalog_circuits::graphgen::generators;
use datalog_circuits::provcirc::prelude::*;
use datalog_circuits::semiring::prelude::*;

fn main() {
    // The paper's running example: transitive closure (Example 2.1), as one
    // session owning the program, the graph-backed database, and every
    // cached derived artifact. Grounding and evaluation shard across the
    // builder's `parallelism(n)` threads — available cores by default,
    // `parallelism(1)` for the exact sequential code path; the grounding
    // (and every FactId) is bit-identical either way.
    let engine = Engine::builder()
        .program_text(
            "T(X,Y) :- E(X,Y).\n\
             T(X,Y) :- T(X,Z), E(Z,Y).",
        )
        .graph(&generators::gnm(8, 20, &["E"], 42))
        .build()
        .expect("build session");
    println!("program:\n{}", engine.program());
    println!("parallelism:        {} thread(s)", engine.parallelism());

    // 1. Classify: which side of the paper's dichotomies is this on?
    let report = engine.classification();
    println!("chain program:      {}", report.syntax.is_chain);
    println!("boundedness:        {:?}", report.boundedness.verdict);
    println!("depth upper bound:  {:?}", report.depth_upper);
    println!("depth lower bound:  {:?}", report.depth_lower);
    println!("formula size:       {:?}", report.formula);

    // 2. Query T(v0, v5): evaluate directly, then compile the circuit.
    // Evaluation runs the delta-driven semi-naive fixpoint by default
    // (`.eval_strategy(EvalStrategy::Naive)` opts back into the ICO
    // iteration whose round count is the §4 boundedness probe).
    let q = engine.node_query(0, 5).expect("query");
    println!("\neval strategy:      {:?}", engine.eval_strategy());
    println!(
        "T(v0,v5) derivable: {}   shortest path (tropical, unit weights): {}",
        q.eval::<Bool, _>(&AllOnes).unwrap(),
        q.eval(&UnitWeights::new(Tropical::new(1))).unwrap()
    );

    let compiled = q.circuit(Strategy::Auto).expect("compile");
    println!(
        "compiled with {:?}: {} gates, depth {}",
        compiled.strategy, compiled.stats.num_gates, compiled.stats.depth
    );

    // 3. One circuit, many semirings (the whole point of provenance):
    let circuit = &compiled.circuit;
    println!("\ninterpretations of the same circuit:");
    println!(
        "  boolean (is v5 reachable?):        {}",
        circuit.eval::<Bool, _>(&AllOnes)
    );
    println!(
        "  tropical (shortest path, unit w):  {}",
        circuit.eval(&UnitWeights::new(Tropical::new(1)))
    );
    println!(
        "  counting-of-min-paths via Trop_3:  {}",
        circuit.eval(&UnitWeights::new(TropK::<3>::single(1)))
    );
    println!(
        "  fuzzy (best weakest-link):         {}",
        circuit.eval(&from_fn(|e| Fuzzy::new(0.5 + (e % 5) as f64 / 10.0)))
    );
    println!(
        "  why-provenance (minimal witnesses): {}",
        circuit.eval(&from_fn(WhyProv::fact))
    );
    println!(
        "\ncanonical polynomial: {}",
        q.provenance().expect("provenance")
    );

    // The session grounded and classified exactly once for all of the above.
    let stats = engine.cache_stats();
    println!(
        "\nsession work: {} grounding(s), {} classification(s), {} circuit(s) built",
        stats.groundings, stats.classifications, stats.circuits_built
    );
}
