//! Quickstart: parse a Datalog program, classify it, compile a provenance
//! circuit, and interpret it over several semirings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datalog_circuits::core::prelude::*;
use datalog_circuits::graphgen::generators;
use datalog_circuits::semiring::prelude::*;

fn main() {
    // The paper's running example: transitive closure (Example 2.1).
    let program = datalog_circuits::datalog::parse_program(
        "T(X,Y) :- E(X,Y).\n\
         T(X,Y) :- T(X,Z), E(Z,Y).",
    )
    .expect("parse");
    println!("program:\n{program}");

    // 1. Classify: which side of the paper's dichotomies is this on?
    let report = classify_program(&program, 5);
    println!("chain program:      {}", report.syntax.is_chain);
    println!("boundedness:        {:?}", report.boundedness.verdict);
    println!("depth upper bound:  {:?}", report.depth_upper);
    println!("depth lower bound:  {:?}", report.depth_lower);
    println!("formula size:       {:?}", report.formula);

    // 2. Compile the provenance circuit of T(v0, v5) on a small graph.
    let graph = generators::gnm(8, 20, &["E"], 42);
    let compiled = compile_graph_fact(&program, &graph, 0, 5, Strategy::Auto)
        .expect("compile");
    println!(
        "\ncompiled with {:?}: {} gates, depth {}",
        compiled.strategy, compiled.stats.num_gates, compiled.stats.depth
    );

    // 3. One circuit, many semirings (the whole point of provenance):
    let circuit = &compiled.circuit;
    println!("\ninterpretations of the same circuit:");
    println!("  boolean (is v5 reachable?):        {}", circuit.eval(&|_| Bool(true)));
    println!(
        "  tropical (shortest path, unit w):  {}",
        circuit.eval(&|_| Tropical::new(1))
    );
    println!(
        "  counting-of-min-paths via Trop_3:  {}",
        circuit.eval(&|_| TropK::<3>::single(1))
    );
    println!(
        "  fuzzy (best weakest-link):         {}",
        circuit.eval(&|e| Fuzzy::new(0.5 + (e % 5) as f64 / 10.0))
    );
    println!(
        "  why-provenance (minimal witnesses): {}",
        circuit.eval(&WhyProv::fact)
    );
    println!("\ncanonical polynomial: {}", circuit.polynomial());
}
