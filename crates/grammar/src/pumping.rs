//! Pumping decompositions for infinite languages.
//!
//! The lower-bound reductions of the paper are built on pumping: Theorem 5.9
//! expands every TC edge into the `y`-part of a regular decomposition
//! `x y^i z`, and Theorem 5.11 uses a CFG decomposition `u v^i w x^i y`.
//! This module extracts *concrete* decompositions (actual terminal strings)
//! from the automaton/grammar, which is exactly what those reductions need
//! as input.

use std::collections::VecDeque;

use crate::analysis::CfgAnalysis;
use crate::cfg::{NonTerminal, Terminal};
use crate::dfa::Dfa;
use crate::normalize::Cnf;

/// A regular pumping decomposition: every `x y^i z` (i ≥ 0) is accepted,
/// with `|y| ≥ 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegularPumping {
    /// Prefix.
    pub x: Vec<Terminal>,
    /// Pumpable middle, nonempty.
    pub y: Vec<Terminal>,
    /// Suffix.
    pub z: Vec<Terminal>,
}

impl RegularPumping {
    /// Extract a decomposition from a DFA with an infinite language:
    /// a useful state on a cycle yields `x` (start → state), `y` (the
    /// cycle), `z` (state → accept).
    pub fn from_dfa(dfa: &Dfa) -> Option<RegularPumping> {
        let reach = dfa.reachable();
        let co = dfa.co_reachable();
        let useful: Vec<bool> = (0..dfa.num_states).map(|s| reach[s] && co[s]).collect();
        for q in 0..dfa.num_states {
            if !useful[q] {
                continue;
            }
            // Shortest cycle through q staying within useful states.
            let Some(y) = shortest_path(dfa, &useful, q, q, true) else {
                continue;
            };
            let x = shortest_path(dfa, &useful, dfa.start, q, false)?;
            // Shortest path from q to any accepting useful state.
            let z = (0..dfa.num_states)
                .filter(|&s| useful[s] && dfa.accepting[s])
                .filter_map(|acc| shortest_path(dfa, &useful, q, acc, false))
                .min_by_key(Vec::len)?;
            return Some(RegularPumping { x, y, z });
        }
        None
    }

    /// The word `x y^i z`.
    pub fn pump(&self, i: usize) -> Vec<Terminal> {
        let mut out = self.x.clone();
        for _ in 0..i {
            out.extend_from_slice(&self.y);
        }
        out.extend_from_slice(&self.z);
        out
    }
}

/// BFS for the label sequence of a shortest path; with `proper`, paths of
/// length 0 are disallowed (for cycles).
fn shortest_path(
    dfa: &Dfa,
    useful: &[bool],
    from: usize,
    to: usize,
    proper: bool,
) -> Option<Vec<Terminal>> {
    if from == to && !proper {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<(usize, Terminal)>> = vec![None; dfa.num_states];
    let mut seen = vec![false; dfa.num_states];
    let mut queue = VecDeque::new();
    // Seed with the first step so cycles are proper.
    for t in 0..dfa.num_terminals as Terminal {
        if let Some(next) = dfa.step(from, t) {
            if useful[next] && !seen[next] {
                seen[next] = true;
                pred[next] = Some((from, t));
                queue.push_back(next);
                if next == to {
                    return Some(reconstruct(&pred, from, to));
                }
            }
        }
    }
    while let Some(s) = queue.pop_front() {
        for t in 0..dfa.num_terminals as Terminal {
            if let Some(next) = dfa.step(s, t) {
                if useful[next] && !seen[next] {
                    seen[next] = true;
                    pred[next] = Some((s, t));
                    if next == to {
                        return Some(reconstruct(&pred, from, to));
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

fn reconstruct(pred: &[Option<(usize, Terminal)>], from: usize, to: usize) -> Vec<Terminal> {
    let mut out = Vec::new();
    let mut cur = to;
    loop {
        let (p, t) = pred[cur].expect("path exists");
        out.push(t);
        if p == from {
            break;
        }
        cur = p;
    }
    out.reverse();
    out
}

/// A CFG pumping decomposition: every `u v^i w x^i y` (i ≥ 0) is accepted,
/// with `|vx| ≥ 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgPumping {
    /// Outer prefix.
    pub u: Vec<Terminal>,
    /// Left pumpable part.
    pub v: Vec<Terminal>,
    /// Core.
    pub w: Vec<Terminal>,
    /// Right pumpable part.
    pub x: Vec<Terminal>,
    /// Outer suffix.
    pub y: Vec<Terminal>,
}

/// One descent step in a binary derivation: which child holds the hole, and
/// the sibling non-terminal.
#[derive(Clone, Copy, Debug)]
struct Step {
    hole_left: bool,
    sibling: NonTerminal,
}

impl CfgPumping {
    /// Extract a decomposition from a CNF grammar with an infinite language:
    /// find a useful non-terminal `A` with `A ⇒⁺ vAx` and `S ⇒* uAy`,
    /// expanding siblings by their shortest words.
    pub fn from_cnf(cnf: &Cnf, analysis: &CfgAnalysis) -> Option<CfgPumping> {
        let n = cnf.num_nonterminals();
        // Edges among useful NTs with step metadata.
        let mut edges: Vec<Vec<(NonTerminal, Step)>> = vec![Vec::new(); n];
        for &(a, b, c) in &cnf.binary {
            let ok = |x: NonTerminal| analysis.useful[x as usize];
            if ok(a) && ok(b) && ok(c) {
                edges[a as usize].push((
                    b,
                    Step {
                        hole_left: true,
                        sibling: c,
                    },
                ));
                edges[a as usize].push((
                    c,
                    Step {
                        hole_left: false,
                        sibling: b,
                    },
                ));
            }
        }
        // Find a cycle through some useful NT.
        for a in 0..n as NonTerminal {
            if !analysis.useful[a as usize] {
                continue;
            }
            let Some(cycle) = bfs_steps(&edges, a, a, true) else {
                continue;
            };
            let spine = bfs_steps(&edges, cnf.start, a, false)?;
            let (u, y) = expand_steps(cnf, analysis, &spine);
            let (v, x) = expand_steps(cnf, analysis, &cycle);
            let w = analysis.shortest_word(cnf, a)?;
            debug_assert!(!v.is_empty() || !x.is_empty(), "pumpable part is empty");
            return Some(CfgPumping { u, v, w, x, y });
        }
        None
    }

    /// The word `u v^i w x^i y`.
    pub fn pump(&self, i: usize) -> Vec<Terminal> {
        let mut out = self.u.clone();
        for _ in 0..i {
            out.extend_from_slice(&self.v);
        }
        out.extend_from_slice(&self.w);
        for _ in 0..i {
            out.extend_from_slice(&self.x);
        }
        out.extend_from_slice(&self.y);
        out
    }
}

/// BFS over the step graph, returning the step sequence from `from` to `to`
/// (outermost first); with `proper`, zero-length paths are disallowed.
fn bfs_steps(
    edges: &[Vec<(NonTerminal, Step)>],
    from: NonTerminal,
    to: NonTerminal,
    proper: bool,
) -> Option<Vec<Step>> {
    if from == to && !proper {
        return Some(Vec::new());
    }
    let n = edges.len();
    let mut pred: Vec<Option<(NonTerminal, Step)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for &(child, step) in &edges[from as usize] {
        if !seen[child as usize] {
            seen[child as usize] = true;
            pred[child as usize] = Some((from, step));
            if child == to {
                return Some(rebuild_steps(&pred, from, to));
            }
            queue.push_back(child);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &(child, step) in &edges[cur as usize] {
            if !seen[child as usize] {
                seen[child as usize] = true;
                pred[child as usize] = Some((cur, step));
                if child == to {
                    return Some(rebuild_steps(&pred, from, to));
                }
                queue.push_back(child);
            }
        }
    }
    None
}

fn rebuild_steps(
    pred: &[Option<(NonTerminal, Step)>],
    from: NonTerminal,
    to: NonTerminal,
) -> Vec<Step> {
    let mut out = Vec::new();
    let mut cur = to;
    loop {
        let (p, step) = pred[cur as usize].expect("path exists");
        out.push(step);
        if p == from {
            break;
        }
        cur = p;
    }
    out.reverse();
    out
}

/// Expand a descent-step sequence into the (left, right) terminal strings
/// surrounding the hole: descending into the left child appends the
/// sibling's shortest word on the right, and vice versa.
fn expand_steps(
    cnf: &Cnf,
    analysis: &CfgAnalysis,
    steps: &[Step],
) -> (Vec<Terminal>, Vec<Terminal>) {
    if steps.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let (v_in, x_in) = expand_steps(cnf, analysis, &steps[1..]);
    let sibling_word = analysis
        .shortest_word(cnf, steps[0].sibling)
        .expect("useful sibling generates");
    if steps[0].hole_left {
        // A ⇒ HOLE C: sibling to the right, outside the inner part.
        let mut x = x_in;
        x.extend(sibling_word);
        (v_in, x)
    } else {
        // A ⇒ B HOLE: sibling to the left, outside the inner part.
        let mut v = sibling_word;
        v.extend(v_in);
        (v, x_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Alphabet, Cfg};
    use crate::regex::Regex;

    #[test]
    fn regular_pumping_of_tc() {
        let mut alphabet = Alphabet::new();
        let dfa = Dfa::compile(&Regex::parse("E E*").unwrap(), &mut alphabet);
        let p = RegularPumping::from_dfa(&dfa).unwrap();
        assert!(!p.y.is_empty());
        for i in 0..5 {
            assert!(dfa.accepts(&p.pump(i)), "x y^{i} z must be accepted");
        }
    }

    #[test]
    fn regular_pumping_of_ab_star_c() {
        let mut alphabet = Alphabet::new();
        let dfa = Dfa::compile(&Regex::parse("a b* c").unwrap(), &mut alphabet);
        let p = RegularPumping::from_dfa(&dfa).unwrap();
        for i in 0..4 {
            assert!(dfa.accepts(&p.pump(i)));
        }
    }

    #[test]
    fn no_pumping_for_finite_language() {
        let mut alphabet = Alphabet::new();
        let dfa = Dfa::compile(&Regex::parse("a b | c").unwrap(), &mut alphabet);
        assert!(RegularPumping::from_dfa(&dfa).is_none());
    }

    #[test]
    fn cfg_pumping_of_dyck() {
        let cnf = Cnf::from_cfg(&Cfg::dyck1());
        let analysis = CfgAnalysis::new(&cnf);
        let p = CfgPumping::from_cnf(&cnf, &analysis).unwrap();
        assert!(!p.v.is_empty() || !p.x.is_empty());
        for i in 0..5 {
            assert!(
                cnf.accepts(&p.pump(i)),
                "u v^{i} w x^{i} y must be accepted"
            );
        }
    }

    #[test]
    fn cfg_pumping_of_palindromes() {
        let cnf = Cnf::from_cfg(&Cfg::parse("S -> a S a | b").unwrap());
        let analysis = CfgAnalysis::new(&cnf);
        let p = CfgPumping::from_cnf(&cnf, &analysis).unwrap();
        for i in 0..4 {
            assert!(cnf.accepts(&p.pump(i)));
        }
        // Both sides pump for the palindrome grammar.
        assert!(!p.v.is_empty());
        assert!(!p.x.is_empty());
    }

    #[test]
    fn no_cfg_pumping_for_finite_language() {
        let cnf = Cnf::from_cfg(&Cfg::parse("S -> a b | b a").unwrap());
        let analysis = CfgAnalysis::new(&cnf);
        assert!(CfgPumping::from_cnf(&cnf, &analysis).is_none());
    }
}
