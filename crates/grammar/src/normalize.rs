//! Chomsky normal form.
//!
//! The CFL-reachability engine, the finiteness test and the pumping
//! machinery all operate on a CNF presentation: productions `A → a` and
//! `A → B C`, plus an optional `S → ε` when the start symbol is nullable.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::cfg::{Alphabet, Cfg, NonTerminal, Production, Symbol, Terminal};

/// A grammar in Chomsky normal form.
#[derive(Clone, Debug, PartialEq)]
pub struct Cnf {
    /// The start non-terminal.
    pub start: NonTerminal,
    /// Names of all non-terminals (including the ones introduced by the
    /// transformation).
    pub nt_names: Vec<String>,
    /// Terminal alphabet, shared with the source grammar.
    pub alphabet: Alphabet,
    /// Terminal productions `A → a`.
    pub unary: Vec<(NonTerminal, Terminal)>,
    /// Binary productions `A → B C`.
    pub binary: Vec<(NonTerminal, NonTerminal, NonTerminal)>,
    /// Whether `ε ∈ L(G)`.
    pub start_nullable: bool,
}

impl Cnf {
    /// Number of non-terminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nt_names.len()
    }

    /// Name of a non-terminal.
    pub fn nonterminal_name(&self, n: NonTerminal) -> &str {
        &self.nt_names[n as usize]
    }

    /// Convert a CFG to CNF via the standard START/TERM/BIN/DEL/UNIT
    /// pipeline, deduplicating productions.
    pub fn from_cfg(cfg: &Cfg) -> Cnf {
        let mut nt_names: Vec<String> = cfg.nonterminal_names().to_vec();
        let fresh = |names: &mut Vec<String>, base: &str| -> NonTerminal {
            let id = names.len() as NonTerminal;
            names.push(format!("{base}#{id}"));
            id
        };

        // START: fresh start symbol so the old start may appear in bodies.
        let start = fresh(&mut nt_names, "S0");
        let mut prods: Vec<Production> = cfg.productions.clone();
        prods.push(Production {
            head: start,
            body: vec![Symbol::N(cfg.start)],
        });

        // TERM: in bodies of length ≥ 2, replace terminals by wrappers.
        let mut term_wrapper: HashMap<Terminal, NonTerminal> = HashMap::new();
        for p in &mut prods {
            if p.body.len() >= 2 {
                for s in &mut p.body {
                    if let Symbol::T(t) = *s {
                        let w = *term_wrapper.entry(t).or_insert_with(|| {
                            fresh(&mut nt_names, &format!("T_{}", cfg.alphabet.name(t)))
                        });
                        *s = Symbol::N(w);
                    }
                }
            }
        }
        for (&t, &w) in &term_wrapper {
            prods.push(Production {
                head: w,
                body: vec![Symbol::T(t)],
            });
        }

        // BIN: binarize long bodies.
        let mut binarized = Vec::with_capacity(prods.len());
        for p in prods {
            if p.body.len() <= 2 {
                binarized.push(p);
                continue;
            }
            let mut rest = p.body;
            let mut head = p.head;
            while rest.len() > 2 {
                let first = rest.remove(0);
                let cont = fresh(&mut nt_names, "B");
                binarized.push(Production {
                    head,
                    body: vec![first, Symbol::N(cont)],
                });
                head = cont;
            }
            binarized.push(Production { head, body: rest });
        }
        let mut prods = binarized;

        // DEL: eliminate ε-productions (bodies now have length ≤ 2).
        let mut nullable: HashSet<NonTerminal> = HashSet::new();
        loop {
            let before = nullable.len();
            for p in &prods {
                if p.body.iter().all(|s| match s {
                    Symbol::N(n) => nullable.contains(n),
                    Symbol::T(_) => false,
                }) {
                    nullable.insert(p.head);
                }
            }
            if nullable.len() == before {
                break;
            }
        }
        let start_nullable = nullable.contains(&start);
        let mut deleted: BTreeSet<(NonTerminal, Vec<Symbol>)> = BTreeSet::new();
        for p in &prods {
            // Enumerate all sub-bodies obtained by dropping nullable symbols.
            let positions: Vec<usize> = p
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Symbol::N(n) if nullable.contains(n) => Some(i),
                    _ => None,
                })
                .collect();
            for mask in 0..(1u32 << positions.len()) {
                let drop: HashSet<usize> = positions
                    .iter()
                    .enumerate()
                    .filter_map(|(bit, &pos)| (mask >> bit & 1 == 1).then_some(pos))
                    .collect();
                let body: Vec<Symbol> = p
                    .body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| (!drop.contains(&i)).then_some(*s))
                    .collect();
                if !body.is_empty() {
                    deleted.insert((p.head, body));
                }
            }
        }
        prods = deleted
            .into_iter()
            .map(|(head, body)| Production { head, body })
            .collect();

        // UNIT: eliminate unit productions A → B. unit_reach[a] is the set
        // of non-terminals reachable from `a` by unit steps (including `a`).
        let n_nts = nt_names.len();
        let mut unit_edges: Vec<Vec<NonTerminal>> = vec![Vec::new(); n_nts];
        for p in &prods {
            if let [Symbol::N(b)] = p.body[..] {
                unit_edges[p.head as usize].push(b);
            }
        }
        let mut unit_reach: Vec<HashSet<NonTerminal>> = Vec::with_capacity(n_nts);
        for a in 0..n_nts as NonTerminal {
            let mut seen = HashSet::from([a]);
            let mut stack = vec![a];
            while let Some(x) = stack.pop() {
                for &b in &unit_edges[x as usize] {
                    if seen.insert(b) {
                        stack.push(b);
                    }
                }
            }
            unit_reach.push(seen);
        }

        let mut unary: BTreeSet<(NonTerminal, Terminal)> = BTreeSet::new();
        let mut binary: BTreeSet<(NonTerminal, NonTerminal, NonTerminal)> = BTreeSet::new();
        for a in 0..n_nts as NonTerminal {
            for b in unit_reach[a as usize].iter().copied() {
                for p in prods.iter().filter(|p| p.head == b) {
                    match p.body[..] {
                        [Symbol::T(t)] => {
                            unary.insert((a, t));
                        }
                        [s1, s2] => {
                            let n1 = match s1 {
                                Symbol::N(n) => n,
                                Symbol::T(_) => unreachable!("TERM removed terminals"),
                            };
                            let n2 = match s2 {
                                Symbol::N(n) => n,
                                Symbol::T(_) => unreachable!("TERM removed terminals"),
                            };
                            binary.insert((a, n1, n2));
                        }
                        [Symbol::N(_)] => {} // unit production: folded above
                        _ => unreachable!("BIN bounded body length at 2"),
                    }
                }
            }
        }

        Cnf {
            start,
            nt_names,
            alphabet: cfg.alphabet.clone(),
            unary: unary.into_iter().collect(),
            binary: binary.into_iter().collect(),
            start_nullable,
        }
    }

    /// CYK membership test (for cross-validation on small words).
    pub fn accepts(&self, word: &[Terminal]) -> bool {
        if word.is_empty() {
            return self.start_nullable;
        }
        let n = word.len();
        let nts = self.num_nonterminals();
        // table[len-1][i] = set of NTs deriving word[i .. i+len]
        let idx = |len: usize, i: usize| (len - 1) * n + i;
        let mut table = vec![vec![false; nts]; n * n];
        for (i, &t) in word.iter().enumerate() {
            for &(a, u) in &self.unary {
                if u == t {
                    table[idx(1, i)][a as usize] = true;
                }
            }
        }
        for len in 2..=n {
            for i in 0..=(n - len) {
                for split in 1..len {
                    for &(a, b, c) in &self.binary {
                        if table[idx(split, i)][b as usize]
                            && table[idx(len - split, i + split)][c as usize]
                        {
                            table[idx(len, i)][a as usize] = true;
                        }
                    }
                }
            }
        }
        table[idx(n, 0)][self.start as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terminal_ids(cnf: &Cnf, names: &[&str]) -> Vec<Terminal> {
        names
            .iter()
            .map(|n| cnf.alphabet.get(n).expect("terminal"))
            .collect()
    }

    #[test]
    fn cnf_of_tc_accepts_e_plus() {
        let cnf = Cnf::from_cfg(&Cfg::transitive_closure());
        assert!(!cnf.start_nullable);
        for k in 1..6 {
            let word = vec![cnf.alphabet.get("E").unwrap(); k];
            assert!(cnf.accepts(&word), "E^{k} should be accepted");
        }
        assert!(!cnf.accepts(&[]));
    }

    #[test]
    fn cnf_of_dyck_accepts_balanced_only() {
        let cnf = Cnf::from_cfg(&Cfg::dyck1());
        let w = |s: &str| -> Vec<Terminal> {
            s.chars()
                .map(|c| cnf.alphabet.get(if c == '(' { "L" } else { "R" }).unwrap())
                .collect()
        };
        assert!(cnf.accepts(&w("()")));
        assert!(cnf.accepts(&w("(())")));
        assert!(cnf.accepts(&w("()()")));
        assert!(cnf.accepts(&w("(()())")));
        assert!(!cnf.accepts(&w("(")));
        assert!(!cnf.accepts(&w(")(")));
        assert!(!cnf.accepts(&w("(()")));
        assert!(!cnf.accepts(&[]));
    }

    #[test]
    fn nullable_start_detected() {
        let cnf = Cnf::from_cfg(&Cfg::parse("S -> a S b | eps").unwrap());
        assert!(cnf.start_nullable);
        let ab = terminal_ids(&cnf, &["a", "b"]);
        assert!(cnf.accepts(&[]));
        assert!(cnf.accepts(&[ab[0], ab[1]]));
        assert!(cnf.accepts(&[ab[0], ab[0], ab[1], ab[1]]));
        assert!(!cnf.accepts(&[ab[0]]));
        assert!(!cnf.accepts(&[ab[1], ab[0]]));
    }

    #[test]
    fn unit_chains_are_folded() {
        let cnf = Cnf::from_cfg(&Cfg::parse("S -> A\nA -> B\nB -> b").unwrap());
        let b = cnf.alphabet.get("b").unwrap();
        assert!(cnf.accepts(&[b]));
        assert!(!cnf.accepts(&[b, b]));
    }

    #[test]
    fn long_bodies_are_binarized() {
        let cnf = Cnf::from_cfg(&Cfg::parse("S -> a b c d").unwrap());
        let w = terminal_ids(&cnf, &["a", "b", "c", "d"]);
        assert!(cnf.accepts(&w));
        assert!(!cnf.accepts(&w[..3]));
        // All binary productions have exactly two non-terminals by type.
        assert!(cnf.binary.iter().all(|&(a, b, c)| {
            (a as usize) < cnf.num_nonterminals()
                && (b as usize) < cnf.num_nonterminals()
                && (c as usize) < cnf.num_nonterminals()
        }));
    }
}
