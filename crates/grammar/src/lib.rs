//! Formal-language substrate for basic chain Datalog (paper §5).
//!
//! A basic chain Datalog program corresponds to a context-free grammar: IDBs
//! are non-terminals, EDBs are terminals, rules are productions, and the
//! program computes context-free reachability (Definition 5.1,
//! Proposition 5.2). The paper's dichotomies for this fragment hinge on
//! language-theoretic questions that this crate decides:
//!
//! * **finiteness** of a CFG / regular language — equivalent to boundedness
//!   of the chain program over every absorptive semiring (Proposition 5.5)
//!   and hence to the Θ(log n) vs Θ(log² n) circuit-depth dichotomy
//!   (Theorems 5.3, 5.4, 5.9);
//! * **pumping decompositions** for infinite languages — the gadget behind
//!   the depth-preserving lower-bound reductions (Theorems 5.9 and 5.11);
//! * **DFA machinery** (regex → NFA → DFA → minimal DFA) for Regular Path
//!   Queries and the product-graph reduction of Theorem 5.9;
//! * **CFL reachability** (Yannakakis-style worklist over a Chomsky normal
//!   form) producing grounded derivations, the input of the paper's circuit
//!   constructions for chain programs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cfg;
pub mod cflreach;
pub mod dfa;
pub mod nfa;
pub mod normalize;
pub mod pumping;
pub mod regex;
pub mod regular;

pub use provcirc_error::Error;

pub use analysis::{CfgAnalysis, LanguageSize};
pub use cfg::{Alphabet, Cfg, NonTerminal, Production, Symbol, Terminal};
pub use cflreach::{CflDerivation, CflDerivationBody, CflFact, CflOptions, CflResult};
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use normalize::Cnf;
pub use pumping::{CfgPumping, RegularPumping};
pub use regex::Regex;
pub use regular::{left_linear_dfa, left_linear_nfa};
