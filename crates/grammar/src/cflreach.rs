//! Context-free reachability over labeled graphs (Definition 5.1).
//!
//! Given a CNF grammar and an edge-labeled digraph, the worklist algorithm
//! computes every fact `A(u, v)` ("some `u → v` path spells a word derivable
//! from `A`") together with — optionally — **every grounded derivation**
//! `A(u,v) :- B(u,w), C(w,v)` or `A(u,v) :- edge e`. The derivation list is
//! precisely the grounded program the paper's circuit constructions consume
//! (Theorems 3.1, 4.3, 6.2): it is the chain-Datalog specialization of
//! `datalog::ground`, and integration tests check the two agree.

use std::collections::HashMap;

use crate::cfg::{NonTerminal, Terminal};
use crate::normalize::Cnf;

/// A graph node.
pub type Node = u32;

/// A derived fact `nt(src, dst)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CflFact {
    /// The non-terminal (IDB predicate).
    pub nt: NonTerminal,
    /// Path source.
    pub src: Node,
    /// Path target.
    pub dst: Node,
}

/// The body of one grounded derivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CflDerivationBody {
    /// `A(u,v) :- a(u,v)` for input edge with this index.
    Edge(usize),
    /// `A(u,v) :- B(u,w), C(w,v)` with fact indices of B and C.
    Pair(usize, usize),
}

/// One grounded derivation of `facts[head]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CflDerivation {
    /// Index of the derived fact.
    pub head: usize,
    /// The body.
    pub body: CflDerivationBody,
}

/// Options for the solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct CflOptions {
    /// Record every grounded derivation (needed for provenance circuits;
    /// costs O(#derivations) memory).
    pub collect_derivations: bool,
}

/// Result of CFL reachability.
#[derive(Clone, Debug, Default)]
pub struct CflResult {
    /// All derived facts, in discovery order.
    pub facts: Vec<CflFact>,
    /// Index from fact to its position in `facts`.
    pub fact_index: HashMap<(NonTerminal, Node, Node), usize>,
    /// Grounded derivations (empty unless requested).
    pub derivations: Vec<CflDerivation>,
}

impl CflResult {
    /// Whether `nt(src, dst)` was derived.
    pub fn holds(&self, nt: NonTerminal, src: Node, dst: Node) -> bool {
        self.fact_index.contains_key(&(nt, src, dst))
    }

    /// The fact index of `nt(src, dst)`, if derived.
    pub fn fact(&self, nt: NonTerminal, src: Node, dst: Node) -> Option<usize> {
        self.fact_index.get(&(nt, src, dst)).copied()
    }

    /// All `(src, dst)` pairs derived for `nt`.
    pub fn pairs_of(&self, nt: NonTerminal) -> Vec<(Node, Node)> {
        self.facts
            .iter()
            .filter(|f| f.nt == nt)
            .map(|f| (f.src, f.dst))
            .collect()
    }
}

/// Solve context-free reachability.
///
/// `edges` are `(src, dst, label)` with nodes in `0..num_nodes`.
pub fn solve(
    cnf: &Cnf,
    num_nodes: usize,
    edges: &[(Node, Node, Terminal)],
    opts: CflOptions,
) -> CflResult {
    let mut res = CflResult::default();
    // Rules indexed for the two join directions.
    // by_first[B] = [(A, C)], by_second[C] = [(A, B)]
    let nts = cnf.num_nonterminals();
    let mut by_first: Vec<Vec<(NonTerminal, NonTerminal)>> = vec![Vec::new(); nts];
    let mut by_second: Vec<Vec<(NonTerminal, NonTerminal)>> = vec![Vec::new(); nts];
    for &(a, b, c) in &cnf.binary {
        by_first[b as usize].push((a, c));
        by_second[c as usize].push((a, b));
    }
    // Popped facts indexed by (nt, endpoint).
    let mut popped_by_src: HashMap<(NonTerminal, Node), Vec<usize>> = HashMap::new();
    let mut popped_by_dst: HashMap<(NonTerminal, Node), Vec<usize>> = HashMap::new();

    let mut worklist: Vec<usize> = Vec::new();
    let mut pending: Vec<(usize, CflDerivationBody)> = Vec::new();

    let add_fact = |res: &mut CflResult, worklist: &mut Vec<usize>, fact: CflFact| -> usize {
        match res.fact_index.get(&(fact.nt, fact.src, fact.dst)) {
            Some(&i) => i,
            None => {
                let i = res.facts.len();
                res.facts.push(fact);
                res.fact_index.insert((fact.nt, fact.src, fact.dst), i);
                worklist.push(i);
                i
            }
        }
    };

    // Seed with unary productions over edges.
    for (ei, &(u, v, t)) in edges.iter().enumerate() {
        debug_assert!((u as usize) < num_nodes && (v as usize) < num_nodes);
        for &(a, ut) in &cnf.unary {
            if ut == t {
                let fi = add_fact(
                    &mut res,
                    &mut worklist,
                    CflFact {
                        nt: a,
                        src: u,
                        dst: v,
                    },
                );
                if opts.collect_derivations {
                    pending.push((fi, CflDerivationBody::Edge(ei)));
                }
            }
        }
    }
    res.derivations.extend(
        pending
            .drain(..)
            .map(|(head, body)| CflDerivation { head, body }),
    );

    // Worklist: each popped fact joins with previously popped facts, so every
    // unordered combination is enumerated exactly once.
    while let Some(fi) = worklist.pop() {
        let f = res.facts[fi];
        let mut new_facts: Vec<(CflFact, CflDerivationBody)> = Vec::new();

        // f as the first body atom: A(u,v) :- f=B(u,w), C(w,v).
        for &(a, c) in &by_first[f.nt as usize] {
            if let Some(partners) = popped_by_src.get(&(c, f.dst)) {
                for &ci in partners {
                    let g = res.facts[ci];
                    new_facts.push((
                        CflFact {
                            nt: a,
                            src: f.src,
                            dst: g.dst,
                        },
                        CflDerivationBody::Pair(fi, ci),
                    ));
                }
            }
            // Self-join (f plays both roles) when endpoints line up.
            if f.nt == c && f.dst == f.src {
                new_facts.push((
                    CflFact {
                        nt: a,
                        src: f.src,
                        dst: f.dst,
                    },
                    CflDerivationBody::Pair(fi, fi),
                ));
            }
        }
        // f as the second body atom: A(u,v) :- B(u,w), f=C(w,v).
        for &(a, b) in &by_second[f.nt as usize] {
            if let Some(partners) = popped_by_dst.get(&(b, f.src)) {
                for &bi in partners {
                    let g = res.facts[bi];
                    new_facts.push((
                        CflFact {
                            nt: a,
                            src: g.src,
                            dst: f.dst,
                        },
                        CflDerivationBody::Pair(bi, fi),
                    ));
                }
            }
        }

        // Mark f popped *after* joining, so self-pairs aren't double counted.
        popped_by_src.entry((f.nt, f.src)).or_default().push(fi);
        popped_by_dst.entry((f.nt, f.dst)).or_default().push(fi);

        for (fact, body) in new_facts {
            let hi = add_fact(&mut res, &mut worklist, fact);
            if opts.collect_derivations {
                res.derivations.push(CflDerivation { head: hi, body });
            }
        }
    }

    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::normalize::Cnf;

    fn tc_setup() -> (Cnf, NonTerminal) {
        let cfg = Cfg::transitive_closure();
        let start_name = cfg.nonterminal_name(cfg.start).to_owned();
        let cnf = Cnf::from_cfg(&cfg);
        // The CNF start wraps the original; reachability facts use original T
        // via the start symbol of the CNF.
        let _ = start_name;
        (cnf.clone(), cnf.start)
    }

    #[test]
    fn tc_on_a_path() {
        let (cnf, start) = tc_setup();
        let e = cnf.alphabet.get("E").unwrap();
        let edges: Vec<(Node, Node, Terminal)> = (0..4).map(|i| (i, i + 1, e)).collect();
        let res = solve(&cnf, 5, &edges, CflOptions::default());
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(res.holds(start, i, j), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn tc_on_a_cycle_reaches_everything() {
        let (cnf, start) = tc_setup();
        let e = cnf.alphabet.get("E").unwrap();
        let edges: Vec<(Node, Node, Terminal)> = (0..4u32).map(|i| (i, (i + 1) % 4, e)).collect();
        let res = solve(&cnf, 4, &edges, CflOptions::default());
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert!(res.holds(start, i, j));
            }
        }
    }

    #[test]
    fn dyck_reachability() {
        let cnf = Cnf::from_cfg(&Cfg::dyck1());
        let l = cnf.alphabet.get("L").unwrap();
        let r = cnf.alphabet.get("R").unwrap();
        // Path spelling L L R R L R
        let labels = [l, l, r, r, l, r];
        let edges: Vec<(Node, Node, Terminal)> = labels
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as Node, i as Node + 1, t))
            .collect();
        let res = solve(&cnf, 7, &edges, CflOptions::default());
        let s = cnf.start;
        // Balanced substrings: LR at (1,3), LLRR at (0,4), LR at (4,6),
        // LLRRLR at (0,6).
        assert!(res.holds(s, 1, 3));
        assert!(res.holds(s, 0, 4));
        assert!(res.holds(s, 4, 6));
        assert!(res.holds(s, 0, 6));
        // Unbalanced spans are not derived.
        assert!(!res.holds(s, 0, 1));
        assert!(!res.holds(s, 0, 3));
        assert!(!res.holds(s, 2, 5));
    }

    #[test]
    fn derivations_cover_all_groundings_on_small_path() {
        let (cnf, start) = tc_setup();
        let e = cnf.alphabet.get("E").unwrap();
        let edges: Vec<(Node, Node, Terminal)> = (0..2).map(|i| (i, i + 1, e)).collect();
        let res = solve(
            &cnf,
            3,
            &edges,
            CflOptions {
                collect_derivations: true,
            },
        );
        // T(0,2) must have at least one Pair derivation.
        let t02 = res.fact(start, 0, 2).unwrap();
        assert!(res
            .derivations
            .iter()
            .any(|d| d.head == t02 && matches!(d.body, CflDerivationBody::Pair(_, _))));
        // Every fact has at least one derivation.
        for (i, _) in res.facts.iter().enumerate() {
            assert!(
                res.derivations.iter().any(|d| d.head == i),
                "fact {i} underivable?"
            );
        }
        // Derivation bodies refer to existing facts/edges.
        for d in &res.derivations {
            match d.body {
                CflDerivationBody::Edge(ei) => assert!(ei < edges.len()),
                CflDerivationBody::Pair(b, c) => {
                    assert!(b < res.facts.len() && c < res.facts.len());
                }
            }
        }
    }

    #[test]
    fn parallel_edges_yield_multiple_edge_derivations() {
        let (cnf, start) = tc_setup();
        let e = cnf.alphabet.get("E").unwrap();
        let edges = vec![(0, 1, e), (0, 1, e)];
        let res = solve(
            &cnf,
            2,
            &edges,
            CflOptions {
                collect_derivations: true,
            },
        );
        let t01 = res.fact(start, 0, 1).unwrap();
        let edge_derivs = res
            .derivations
            .iter()
            .filter(|d| d.head == t01 && matches!(d.body, CflDerivationBody::Edge(_)))
            .count();
        assert_eq!(edge_derivs, 2);
    }

    #[test]
    fn membership_via_word_path_matches_cyk() {
        // Reachability on a path spelling w from 0 to n iff w ∈ L — for a
        // spread of words and grammars.
        for (text, words) in [
            (
                "S -> a S b | a b",
                vec!["ab", "aabb", "ba", "abab", "aaabbb"],
            ),
            ("S -> S S | a", vec!["a", "aa", "aaa", ""]),
        ] {
            let cnf = Cnf::from_cfg(&Cfg::parse(text).unwrap());
            for w in words {
                let ts: Option<Vec<Terminal>> = w
                    .chars()
                    .map(|c| cnf.alphabet.get(&c.to_string()))
                    .collect();
                let Some(ts) = ts else { continue };
                let edges: Vec<(Node, Node, Terminal)> = ts
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (i as Node, i as Node + 1, t))
                    .collect();
                let res = solve(&cnf, ts.len() + 1, &edges, CflOptions::default());
                assert_eq!(
                    res.holds(cnf.start, 0, ts.len() as Node),
                    cnf.accepts(&ts),
                    "{text} on {w:?}"
                );
            }
        }
    }
}
