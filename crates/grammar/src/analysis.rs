//! Decision procedures on CNF grammars: emptiness, finiteness, shortest
//! witness words, and bounded word enumeration.
//!
//! Finiteness is the load-bearing procedure: by Proposition 5.5 of the paper
//! it decides boundedness of the corresponding basic chain Datalog program
//! over **every** absorptive semiring, and with it the whole Table-1 / Thm
//! 5.3 / Thm 5.4 dichotomy. It runs in polynomial time, as the paper notes.

use std::collections::BTreeSet;

use crate::cfg::{NonTerminal, Terminal};
use crate::normalize::Cnf;

/// How large a language is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LanguageSize {
    /// No word is accepted.
    Empty,
    /// Finitely many words; boundedness holds (Prop 5.5) and the chain
    /// program gets Θ(log n)-depth circuits (Thm 5.3).
    Finite,
    /// Infinitely many words; the program is unbounded and circuits require
    /// Θ(log² n) depth (Thms 5.3, 5.9, 5.11).
    Infinite,
}

/// Precomputed analysis of a CNF grammar.
#[derive(Clone, Debug)]
pub struct CfgAnalysis {
    /// `generating[A]`: A derives at least one terminal word.
    pub generating: Vec<bool>,
    /// `reachable[A]`: A occurs in some sentential form from the start.
    pub reachable: Vec<bool>,
    /// `useful[A] = generating[A] && reachable[A]`.
    pub useful: Vec<bool>,
    /// Minimal terminal-word length derivable from each NT (`None` if not
    /// generating).
    pub min_len: Vec<Option<u64>>,
    size: LanguageSize,
}

impl CfgAnalysis {
    /// Analyze a CNF grammar.
    pub fn new(cnf: &Cnf) -> Self {
        let n = cnf.num_nonterminals();

        // Generating: least fixpoint.
        let mut generating = vec![false; n];
        for &(a, _) in &cnf.unary {
            generating[a as usize] = true;
        }
        loop {
            let mut changed = false;
            for &(a, b, c) in &cnf.binary {
                if !generating[a as usize] && generating[b as usize] && generating[c as usize] {
                    generating[a as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Reachable: BFS from the start over binary productions restricted
        // to generating children (a non-generating sibling kills the rule).
        let mut reachable = vec![false; n];
        let mut stack = vec![cnf.start];
        reachable[cnf.start as usize] = true;
        while let Some(x) = stack.pop() {
            for &(a, b, c) in &cnf.binary {
                if a == x && generating[b as usize] && generating[c as usize] {
                    for child in [b, c] {
                        if !reachable[child as usize] {
                            reachable[child as usize] = true;
                            stack.push(child);
                        }
                    }
                }
            }
        }

        let useful: Vec<bool> = (0..n).map(|i| generating[i] && reachable[i]).collect();

        // Minimal word lengths (Knuth-style relaxation; lengths are small,
        // plain fixpoint iteration suffices).
        let mut min_len: Vec<Option<u64>> = vec![None; n];
        for &(a, _) in &cnf.unary {
            min_len[a as usize] = Some(1);
        }
        loop {
            let mut changed = false;
            for &(a, b, c) in &cnf.binary {
                if let (Some(lb), Some(lc)) = (min_len[b as usize], min_len[c as usize]) {
                    let cand = lb + lc;
                    if min_len[a as usize].is_none_or(|cur| cand < cur) {
                        min_len[a as usize] = Some(cand);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Language size. Infinite iff a cycle exists among useful NTs in the
        // graph with edges A→B and A→C for each useful binary production
        // A→BC: in CNF every useful NT derives a nonempty word, so a cycle
        // pumps (|vx| ≥ 1).
        let size = if !generating[cnf.start as usize] {
            if cnf.start_nullable {
                LanguageSize::Finite // L = {ε}
            } else {
                LanguageSize::Empty
            }
        } else {
            let mut edges: Vec<Vec<NonTerminal>> = vec![Vec::new(); n];
            for &(a, b, c) in &cnf.binary {
                if useful[a as usize] && useful[b as usize] && useful[c as usize] {
                    edges[a as usize].push(b);
                    edges[a as usize].push(c);
                }
            }
            if has_cycle(&edges, &useful) {
                LanguageSize::Infinite
            } else {
                LanguageSize::Finite
            }
        };

        CfgAnalysis {
            generating,
            reachable,
            useful,
            min_len,
            size,
        }
    }

    /// The language size classification.
    pub fn language_size(&self) -> &LanguageSize {
        &self.size
    }

    /// Whether `L(G) = ∅`.
    pub fn is_empty_language(&self) -> bool {
        self.size == LanguageSize::Empty
    }

    /// Whether `L(G)` is finite (including empty).
    ///
    /// Equivalently (paper Prop 5.5): the corresponding basic chain Datalog
    /// program is bounded over every absorptive semiring.
    pub fn is_finite_language(&self) -> bool {
        self.size != LanguageSize::Infinite
    }

    /// A shortest terminal word derivable from `nt`, or `None` if `nt` is
    /// not generating.
    pub fn shortest_word(&self, cnf: &Cnf, nt: NonTerminal) -> Option<Vec<Terminal>> {
        self.min_len[nt as usize]?;
        let mut out = Vec::new();
        self.expand_shortest(cnf, nt, &mut out);
        Some(out)
    }

    fn expand_shortest(&self, cnf: &Cnf, nt: NonTerminal, out: &mut Vec<Terminal>) {
        let target = self.min_len[nt as usize].expect("generating");
        if target == 1 {
            if let Some(&(_, t)) = cnf.unary.iter().find(|&&(a, _)| a == nt) {
                out.push(t);
                return;
            }
        }
        for &(a, b, c) in &cnf.binary {
            if a != nt {
                continue;
            }
            if let (Some(lb), Some(lc)) = (self.min_len[b as usize], self.min_len[c as usize]) {
                if lb + lc == target {
                    self.expand_shortest(cnf, b, out);
                    self.expand_shortest(cnf, c, out);
                    return;
                }
            }
        }
        unreachable!("min_len fixpoint must be witnessed by some production");
    }
}

impl CfgAnalysis {
    /// The length of a longest word in `L(G)`, or `None` if the language is
    /// infinite or empty. For a finite language this bounds the number of
    /// naive-evaluation iterations of the corresponding chain program
    /// (Prop 5.5) and the layer count of the Theorem 5.8 circuit.
    pub fn longest_word_len(&self, cnf: &Cnf) -> Option<u64> {
        if self.size != LanguageSize::Finite {
            return None;
        }
        // DP over the acyclic useful part: max_len[A] = longest terminal
        // word derivable from A (memoized recursion; no cycles by
        // finiteness).
        let n = cnf.num_nonterminals();
        let mut memo: Vec<Option<u64>> = vec![None; n];
        let mut visiting = vec![false; n];
        fn rec(
            cnf: &Cnf,
            an: &CfgAnalysis,
            a: NonTerminal,
            memo: &mut Vec<Option<u64>>,
            visiting: &mut Vec<bool>,
        ) -> u64 {
            if let Some(v) = memo[a as usize] {
                return v;
            }
            assert!(!visiting[a as usize], "cycle in finite-language grammar");
            visiting[a as usize] = true;
            let mut best = 0;
            if cnf.unary.iter().any(|&(h, _)| h == a) {
                best = 1;
            }
            for &(h, b, c) in &cnf.binary {
                if h == a && an.generating[b as usize] && an.generating[c as usize] {
                    let v = rec(cnf, an, b, memo, visiting) + rec(cnf, an, c, memo, visiting);
                    best = best.max(v);
                }
            }
            visiting[a as usize] = false;
            memo[a as usize] = Some(best);
            best
        }
        if !self.useful[cnf.start as usize] {
            return cnf.start_nullable.then_some(0);
        }
        Some(rec(cnf, self, cnf.start, &mut memo, &mut visiting))
    }
}

fn has_cycle(edges: &[Vec<NonTerminal>], useful: &[bool]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = edges.len();
    let mut mark = vec![Mark::White; n];
    // Iterative DFS with an explicit stack of (node, next-child-index).
    for root in 0..n {
        if !useful[root] || mark[root] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        mark[root] = Mark::Grey;
        while let Some(&(node, next)) = stack.last() {
            if next < edges[node].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let child = edges[node][next] as usize;
                if !useful[child] {
                    continue;
                }
                match mark[child] {
                    Mark::Grey => return true,
                    Mark::White => {
                        mark[child] = Mark::Grey;
                        stack.push((child, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                mark[node] = Mark::Black;
                stack.pop();
            }
        }
    }
    false
}

/// Enumerate all words of `L(G)` of length at most `max_len`, stopping after
/// `max_count` words. Used as a brute-force cross-check of the finiteness
/// procedure and of CFL-reachability.
pub fn words_up_to(cnf: &Cnf, max_len: usize, max_count: usize) -> Vec<Vec<Terminal>> {
    let n = cnf.num_nonterminals();
    // words[A] = set of derivable words of length ≤ max_len.
    let mut words: Vec<BTreeSet<Vec<Terminal>>> = vec![BTreeSet::new(); n];
    for &(a, t) in &cnf.unary {
        if max_len >= 1 {
            words[a as usize].insert(vec![t]);
        }
    }
    loop {
        let mut changed = false;
        for &(a, b, c) in &cnf.binary {
            let mut new_words = Vec::new();
            for wb in &words[b as usize] {
                for wc in &words[c as usize] {
                    if wb.len() + wc.len() <= max_len {
                        let mut w = wb.clone();
                        w.extend_from_slice(wc);
                        new_words.push(w);
                    }
                }
            }
            for w in new_words {
                if words[a as usize].insert(w) {
                    changed = true;
                }
            }
            if words[a as usize].len() > max_count.saturating_mul(4) {
                // Safety valve; callers use generous limits.
                break;
            }
        }
        if !changed {
            break;
        }
    }
    let mut out: Vec<Vec<Terminal>> = Vec::new();
    if cnf.start_nullable {
        out.push(Vec::new());
    }
    out.extend(words[cnf.start as usize].iter().cloned());
    out.sort_by_key(|w| (w.len(), w.clone()));
    out.truncate(max_count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    fn analyze(text: &str) -> (Cnf, CfgAnalysis) {
        let cnf = Cnf::from_cfg(&Cfg::parse(text).unwrap());
        let an = CfgAnalysis::new(&cnf);
        (cnf, an)
    }

    #[test]
    fn tc_is_infinite() {
        let (_, an) = analyze("T -> T E | E");
        assert_eq!(*an.language_size(), LanguageSize::Infinite);
    }

    #[test]
    fn dyck_is_infinite() {
        let (_, an) = analyze("S -> L R | L S R | S S");
        assert_eq!(*an.language_size(), LanguageSize::Infinite);
    }

    #[test]
    fn bounded_path_query_is_finite() {
        // E·E·E — the language {eee}.
        let (cnf, an) = analyze("S -> e e e");
        assert_eq!(*an.language_size(), LanguageSize::Finite);
        let words = words_up_to(&cnf, 10, 100);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0].len(), 3);
    }

    #[test]
    fn union_of_fixed_paths_is_finite() {
        let (cnf, an) = analyze("S -> a b | a | b a a");
        assert_eq!(*an.language_size(), LanguageSize::Finite);
        assert_eq!(words_up_to(&cnf, 10, 100).len(), 3);
    }

    #[test]
    fn non_generating_start_is_empty() {
        // A never terminates.
        let (_, an) = analyze("S -> a A\nA -> b A");
        assert_eq!(*an.language_size(), LanguageSize::Empty);
    }

    #[test]
    fn useless_cycle_does_not_make_language_infinite() {
        // B is on a cycle but non-generating: L = {a}.
        let (cnf, an) = analyze("S -> a\nB -> b B");
        assert_eq!(*an.language_size(), LanguageSize::Finite);
        assert_eq!(words_up_to(&cnf, 10, 100).len(), 1);
    }

    #[test]
    fn unreachable_cycle_does_not_make_language_infinite() {
        // C -> c C | c is productive and cyclic but unreachable from S.
        let (_, an) = analyze("S -> a\nC -> c C | c");
        assert_eq!(*an.language_size(), LanguageSize::Finite);
    }

    #[test]
    fn shortest_word_of_dyck_is_lr() {
        let (cnf, an) = analyze("S -> L R | L S R | S S");
        let w = an.shortest_word(&cnf, cnf.start).unwrap();
        let names: Vec<&str> = w.iter().map(|&t| cnf.alphabet.name(t)).collect();
        assert_eq!(names, vec!["L", "R"]);
    }

    #[test]
    fn finiteness_agrees_with_enumeration_on_small_grammars() {
        for (text, expect_finite) in [
            ("S -> a S | a", false),
            ("S -> a | b | a b", true),
            ("S -> A A\nA -> a", true),
            ("S -> A S A | a\nA -> b", false),
            ("S -> a b c d e", true),
        ] {
            let (cnf, an) = analyze(text);
            // Brute force: if finite, enumeration saturates below the cap
            // and words longer than the longest finite word never appear.
            let words = words_up_to(&cnf, 12, 10_000);
            if expect_finite {
                assert!(an.is_finite_language(), "{text}");
                // Enumeration found everything; a second pass with a larger
                // length bound finds nothing new.
                let more = words_up_to(&cnf, 16, 10_000);
                assert_eq!(words.len(), more.len(), "{text}");
            } else {
                assert!(!an.is_finite_language(), "{text}");
                assert!(
                    words.iter().any(|w| w.len() > 6),
                    "{text}: infinite language should have long words"
                );
            }
        }
    }

    #[test]
    fn longest_word_len_of_finite_languages() {
        for (text, expect) in [
            ("S -> a b | a | b a a", Some(3)),
            ("S -> A A\nA -> a b", Some(4)),
            ("S -> a S | a", None), // infinite
        ] {
            let (cnf, an) = analyze(text);
            assert_eq!(an.longest_word_len(&cnf), expect.map(|x: u64| x), "{text}");
        }
    }

    #[test]
    fn min_len_matches_enumeration() {
        let (cnf, an) = analyze("S -> L R | L S R | S S");
        let words = words_up_to(&cnf, 8, 1000);
        let min_enum = words.iter().map(Vec::len).min().unwrap() as u64;
        assert_eq!(an.min_len[cnf.start as usize], Some(min_enum));
    }
}
