//! Context-free grammars with interned symbol tables.

use std::collections::HashMap;
use std::fmt;

/// A non-terminal symbol, indexing into [`Cfg::nonterminal_names`].
pub type NonTerminal = u32;

/// A terminal symbol (edge label), indexing into an [`Alphabet`].
pub type Terminal = u32;

/// An interner for terminal labels, shared between grammars, automata and
/// labeled graphs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Terminal>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Intern a label, returning its id.
    pub fn intern(&mut self, name: &str) -> Terminal {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as Terminal;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up a label id by name.
    pub fn get(&self, name: &str) -> Option<Terminal> {
        self.index.get(name).copied()
    }

    /// The label name for an id.
    pub fn name(&self, t: Terminal) -> &str {
        &self.names[t as usize]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All label ids.
    pub fn terminals(&self) -> impl Iterator<Item = Terminal> {
        0..self.names.len() as Terminal
    }
}

/// A grammar symbol: terminal or non-terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// A terminal (edge label).
    T(Terminal),
    /// A non-terminal (IDB predicate).
    N(NonTerminal),
}

/// A production `head → body`; an empty body is the ε-production.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Production {
    /// The head non-terminal.
    pub head: NonTerminal,
    /// The body; empty means ε.
    pub body: Vec<Symbol>,
}

/// A context-free grammar.
///
/// For a basic chain Datalog program, non-terminals are the IDB predicates,
/// terminals the EDB predicates, and the start symbol the target IDB
/// (paper §5, Proposition 5.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Cfg {
    nt_names: Vec<String>,
    nt_index: HashMap<String, NonTerminal>,
    /// Terminal alphabet.
    pub alphabet: Alphabet,
    /// The start non-terminal.
    pub start: NonTerminal,
    /// All productions.
    pub productions: Vec<Production>,
}

impl Cfg {
    /// A grammar with a single start non-terminal and no productions.
    pub fn new(start_name: &str) -> Self {
        let mut cfg = Cfg {
            nt_names: Vec::new(),
            nt_index: HashMap::new(),
            alphabet: Alphabet::new(),
            start: 0,
            productions: Vec::new(),
        };
        cfg.start = cfg.nonterminal(start_name);
        cfg
    }

    /// Intern a non-terminal by name.
    pub fn nonterminal(&mut self, name: &str) -> NonTerminal {
        if let Some(&id) = self.nt_index.get(name) {
            return id;
        }
        let id = self.nt_names.len() as NonTerminal;
        self.nt_names.push(name.to_owned());
        self.nt_index.insert(name.to_owned(), id);
        id
    }

    /// Intern a terminal by name.
    pub fn terminal(&mut self, name: &str) -> Terminal {
        self.alphabet.intern(name)
    }

    /// Add a production.
    pub fn add_production(&mut self, head: NonTerminal, body: Vec<Symbol>) {
        self.productions.push(Production { head, body });
    }

    /// Number of non-terminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nt_names.len()
    }

    /// Name of a non-terminal.
    pub fn nonterminal_name(&self, n: NonTerminal) -> &str {
        &self.nt_names[n as usize]
    }

    /// All non-terminal names.
    pub fn nonterminal_names(&self) -> &[String] {
        &self.nt_names
    }

    /// Look up a non-terminal id by name.
    pub fn get_nonterminal(&self, name: &str) -> Option<NonTerminal> {
        self.nt_index.get(name).copied()
    }

    /// Productions with the given head.
    pub fn productions_of(&self, head: NonTerminal) -> impl Iterator<Item = &Production> {
        self.productions.iter().filter(move |p| p.head == head)
    }

    /// Whether every production is *left-linear* (`A → B w` or `A → w` with
    /// `w` terminal-only), i.e. the grammar denotes a regular language and
    /// the chain program is an RPQ (paper §5, Proposition 5.2).
    pub fn is_left_linear(&self) -> bool {
        self.productions.iter().all(|p| {
            p.body.iter().enumerate().all(|(i, s)| match s {
                Symbol::T(_) => true,
                Symbol::N(_) => i == 0,
            })
        })
    }

    /// Whether every production is *right-linear* (`A → w B` or `A → w`).
    pub fn is_right_linear(&self) -> bool {
        self.productions.iter().all(|p| {
            let k = p.body.len();
            p.body
                .iter()
                .take(k.saturating_sub(1))
                .all(|s| matches!(s, Symbol::T(_)))
        })
    }

    /// Whether the grammar is regular in either the left- or right-linear
    /// presentation.
    pub fn is_regular(&self) -> bool {
        self.is_left_linear() || self.is_right_linear()
    }

    /// Parse a grammar from a simple textual notation, one rule per line:
    ///
    /// ```text
    /// S -> L R | L S R | S S
    /// ```
    ///
    /// The head of the first rule is the start symbol. A token is a
    /// non-terminal iff it appears as the head of some rule; everything else
    /// is a terminal. `eps` denotes the empty body.
    pub fn parse(text: &str) -> Result<Cfg, provcirc_error::Error> {
        use provcirc_error::Error;
        let mut lines = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (head, rhs) = line
                .split_once("->")
                .ok_or_else(|| Error::parse_at("grammar", lineno + 1, "missing '->'"))?;
            let head = head.trim();
            if head.is_empty() || head.contains(char::is_whitespace) {
                return Err(Error::parse_at(
                    "grammar",
                    lineno + 1,
                    format!("bad head '{head}'"),
                ));
            }
            lines.push((head.to_owned(), rhs.to_owned()));
        }
        if lines.is_empty() {
            return Err(Error::parse("grammar", "empty grammar"));
        }
        let heads: std::collections::HashSet<&str> =
            lines.iter().map(|(h, _)| h.as_str()).collect();
        let mut cfg = Cfg::new(&lines[0].0);
        for (head, rhs) in &lines {
            let head_id = cfg.nonterminal(head);
            for alt in rhs.split('|') {
                let mut body = Vec::new();
                for tok in alt.split_whitespace() {
                    if tok == "eps" || tok == "ε" {
                        continue;
                    }
                    if heads.contains(tok) {
                        let n = cfg.nonterminal(tok);
                        body.push(Symbol::N(n));
                    } else {
                        let t = cfg.terminal(tok);
                        body.push(Symbol::T(t));
                    }
                }
                cfg.add_production(head_id, body);
            }
        }
        Ok(cfg)
    }

    /// The transitive-closure grammar `T → T E | E` over one label `E`
    /// (paper §5: the canonical infinite regular language `E⁺`).
    pub fn transitive_closure() -> Cfg {
        Cfg::parse("T -> T E | E").expect("static grammar")
    }

    /// The Dyck-1 grammar `S → L R | L S R | S S` (paper Example 6.4).
    pub fn dyck1() -> Cfg {
        Cfg::parse("S -> L R | L S R | S S").expect("static grammar")
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.productions {
            write!(f, "{} ->", self.nonterminal_name(p.head))?;
            if p.body.is_empty() {
                write!(f, " eps")?;
            }
            for s in &p.body {
                match s {
                    Symbol::T(t) => write!(f, " {}", self.alphabet.name(*t))?,
                    Symbol::N(n) => write!(f, " {}", self.nonterminal_name(*n))?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let cfg = Cfg::parse("S -> a S b | eps").unwrap();
        assert_eq!(cfg.num_nonterminals(), 1);
        assert_eq!(cfg.alphabet.len(), 2);
        assert_eq!(cfg.productions.len(), 2);
        assert!(cfg.productions[1].body.is_empty());
    }

    #[test]
    fn head_tokens_are_nonterminals() {
        let cfg = Cfg::parse("S -> A b\nA -> a").unwrap();
        assert_eq!(cfg.num_nonterminals(), 2);
        assert_eq!(cfg.alphabet.len(), 2);
        assert_eq!(cfg.productions[0].body, vec![Symbol::N(1), Symbol::T(0)]);
    }

    #[test]
    fn tc_is_left_linear_but_dyck_is_not() {
        assert!(Cfg::transitive_closure().is_left_linear());
        assert!(Cfg::transitive_closure().is_regular());
        assert!(!Cfg::dyck1().is_regular());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Cfg::parse("no arrow here").is_err());
        assert!(Cfg::parse("").is_err());
    }

    #[test]
    fn display_mentions_all_rules() {
        let cfg = Cfg::parse("S -> a S | eps").unwrap();
        let shown = cfg.to_string();
        assert!(shown.contains("S -> a S"));
        assert!(shown.contains("S -> eps"));
    }

    #[test]
    fn alphabet_interning_is_stable() {
        let mut a = Alphabet::new();
        let x = a.intern("edge");
        assert_eq!(a.intern("edge"), x);
        assert_eq!(a.name(x), "edge");
        assert_eq!(a.get("edge"), Some(x));
        assert_eq!(a.get("missing"), None);
    }
}
