//! Thompson construction: regex → NFA with ε-transitions.

use std::collections::BTreeSet;

use crate::cfg::{Alphabet, Terminal};
use crate::regex::Regex;

/// A nondeterministic finite automaton with ε-transitions and a single
/// accept state (Thompson normal form).
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Number of states.
    pub num_states: usize,
    /// Start state.
    pub start: usize,
    /// Accept state.
    pub accept: usize,
    /// Transitions `(from, label, to)`; `None` is ε.
    pub transitions: Vec<(usize, Option<Terminal>, usize)>,
}

impl Nfa {
    /// Compile a regex, interning its labels into `alphabet`.
    pub fn thompson(re: &Regex, alphabet: &mut Alphabet) -> Nfa {
        let mut nfa = Nfa {
            num_states: 0,
            start: 0,
            accept: 0,
            transitions: Vec::new(),
        };
        let (s, a) = nfa.build(re, alphabet);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    fn fresh(&mut self) -> usize {
        let s = self.num_states;
        self.num_states += 1;
        s
    }

    fn build(&mut self, re: &Regex, alphabet: &mut Alphabet) -> (usize, usize) {
        match re {
            Regex::Empty => {
                let s = self.fresh();
                let a = self.fresh();
                (s, a) // no transition: accepts nothing
            }
            Regex::Epsilon => {
                let s = self.fresh();
                let a = self.fresh();
                self.transitions.push((s, None, a));
                (s, a)
            }
            Regex::Lit(name) => {
                let t = alphabet.intern(name);
                let s = self.fresh();
                let a = self.fresh();
                self.transitions.push((s, Some(t), a));
                (s, a)
            }
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    return self.build(&Regex::Epsilon, alphabet);
                }
                let (s, mut prev_a) = self.build(&parts[0], alphabet);
                for part in &parts[1..] {
                    let (ps, pa) = self.build(part, alphabet);
                    self.transitions.push((prev_a, None, ps));
                    prev_a = pa;
                }
                (s, prev_a)
            }
            Regex::Alt(parts) => {
                let s = self.fresh();
                let a = self.fresh();
                for part in parts {
                    let (ps, pa) = self.build(part, alphabet);
                    self.transitions.push((s, None, ps));
                    self.transitions.push((pa, None, a));
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.fresh();
                let a = self.fresh();
                let (is, ia) = self.build(inner, alphabet);
                self.transitions.push((s, None, is));
                self.transitions.push((ia, None, a));
                self.transitions.push((s, None, a));
                self.transitions.push((ia, None, is));
                (s, a)
            }
            Regex::Plus(inner) => {
                // x+ = x x*
                self.build(
                    &Regex::Concat(vec![(**inner).clone(), Regex::Star(inner.clone())]),
                    alphabet,
                )
            }
            Regex::Opt(inner) => {
                let s = self.fresh();
                let a = self.fresh();
                let (is, ia) = self.build(inner, alphabet);
                self.transitions.push((s, None, is));
                self.transitions.push((ia, None, a));
                self.transitions.push((s, None, a));
                (s, a)
            }
        }
    }

    /// The ε-closure of a set of states.
    pub fn eps_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = states.clone();
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &(from, label, to) in &self.transitions {
                if from == s && label.is_none() && out.insert(to) {
                    stack.push(to);
                }
            }
        }
        out
    }

    /// Whether the NFA accepts a word (via ε-closure simulation; used to
    /// cross-check the DFA).
    pub fn accepts(&self, word: &[Terminal]) -> bool {
        let mut cur = self.eps_closure(&BTreeSet::from([self.start]));
        for &t in word {
            let mut next = BTreeSet::new();
            for &(from, label, to) in &self.transitions {
                if label == Some(t) && cur.contains(&from) {
                    next.insert(to);
                }
            }
            cur = self.eps_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(pattern: &str, word: &[&str]) -> bool {
        let re = Regex::parse(pattern).unwrap();
        let mut alphabet = Alphabet::new();
        let nfa = Nfa::thompson(&re, &mut alphabet);
        let ids: Option<Vec<Terminal>> = word.iter().map(|w| alphabet.get(w)).collect();
        match ids {
            Some(ids) => nfa.accepts(&ids),
            None => false, // word uses a label the pattern never mentions
        }
    }

    #[test]
    fn star_accepts_all_repetitions() {
        assert!(accepts("E*", &[]));
        assert!(accepts("E*", &["E"]));
        assert!(accepts("E*", &["E", "E", "E"]));
    }

    #[test]
    fn plus_requires_one() {
        assert!(!accepts("E+", &[]));
        assert!(accepts("E+", &["E"]));
        assert!(accepts("E+", &["E", "E"]));
    }

    #[test]
    fn concat_and_alt() {
        assert!(accepts("a (b | c) d", &["a", "b", "d"]));
        assert!(accepts("a (b | c) d", &["a", "c", "d"]));
        assert!(!accepts("a (b | c) d", &["a", "d"]));
    }

    #[test]
    fn opt_is_zero_or_one() {
        assert!(accepts("a b?", &["a"]));
        assert!(accepts("a b?", &["a", "b"]));
        assert!(!accepts("a b?", &["a", "b", "b"]));
    }

    #[test]
    fn empty_language_rejects_everything() {
        let mut alphabet = Alphabet::new();
        let nfa = Nfa::thompson(&Regex::Empty, &mut alphabet);
        assert!(!nfa.accepts(&[]));
    }
}
