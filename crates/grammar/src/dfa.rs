//! Deterministic finite automata: subset construction, minimization,
//! finiteness, complement.
//!
//! The DFA is the engine behind the RPQ side of the paper: the
//! product-graph reduction of Theorem 5.9 multiplies the input graph with
//! the DFA of the query language, and the Θ(log n) / Θ(log² n) dichotomy of
//! Theorem 5.3 is decided by [`Dfa::is_finite_language`].

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::cfg::{Alphabet, Terminal};
use crate::nfa::Nfa;
use crate::regex::Regex;

/// A (possibly partial) DFA over terminals `0..num_terminals`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    /// Number of states.
    pub num_states: usize,
    /// Start state.
    pub start: usize,
    /// Accepting-state flags.
    pub accepting: Vec<bool>,
    /// Alphabet size.
    pub num_terminals: usize,
    /// `trans[state * num_terminals + t]`; `None` means no transition.
    trans: Vec<Option<usize>>,
}

impl Dfa {
    /// An explicit DFA from parts.
    pub fn from_parts(
        num_states: usize,
        start: usize,
        accepting: Vec<bool>,
        num_terminals: usize,
        transitions: &[(usize, Terminal, usize)],
    ) -> Dfa {
        let mut trans = vec![None; num_states * num_terminals];
        for &(from, t, to) in transitions {
            trans[from * num_terminals + t as usize] = Some(to);
        }
        Dfa {
            num_states,
            start,
            accepting,
            num_terminals,
            trans,
        }
    }

    /// Subset construction from an NFA. `num_terminals` should be the size
    /// of the (shared) alphabet at compile time.
    pub fn from_nfa(nfa: &Nfa, num_terminals: usize) -> Dfa {
        let start_set = nfa.eps_closure(&BTreeSet::from([nfa.start]));
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        let mut trans_list: Vec<(usize, Terminal, usize)> = Vec::new();
        index.insert(start_set.clone(), 0);
        sets.push(start_set);
        let mut queue = VecDeque::from([0usize]);
        while let Some(si) = queue.pop_front() {
            let cur = sets[si].clone();
            for t in 0..num_terminals as Terminal {
                let mut next = BTreeSet::new();
                for &(from, label, to) in &nfa.transitions {
                    if label == Some(t) && cur.contains(&from) {
                        next.insert(to);
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next = nfa.eps_closure(&next);
                let ni = *index.entry(next.clone()).or_insert_with(|| {
                    sets.push(next);
                    queue.push_back(sets.len() - 1);
                    sets.len() - 1
                });
                trans_list.push((si, t, ni));
            }
        }
        let accepting = sets.iter().map(|s| s.contains(&nfa.accept)).collect();
        Dfa::from_parts(sets.len(), 0, accepting, num_terminals, &trans_list)
    }

    /// Compile a regex into a minimal DFA, interning labels into `alphabet`.
    pub fn compile(re: &Regex, alphabet: &mut Alphabet) -> Dfa {
        let nfa = Nfa::thompson(re, alphabet);
        Dfa::from_nfa(&nfa, alphabet.len()).minimize()
    }

    /// The transition from `state` on terminal `t`.
    pub fn step(&self, state: usize, t: Terminal) -> Option<usize> {
        self.trans[state * self.num_terminals + t as usize]
    }

    /// All transitions `(from, label, to)`.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, Terminal, usize)> + '_ {
        (0..self.num_states).flat_map(move |s| {
            (0..self.num_terminals as Terminal)
                .filter_map(move |t| self.step(s, t).map(|to| (s, t, to)))
        })
    }

    /// Run the DFA on a word.
    pub fn accepts(&self, word: &[Terminal]) -> bool {
        let mut state = self.start;
        for &t in word {
            match self.step(state, t) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.accepting[state]
    }

    /// States reachable from the start.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            for t in 0..self.num_terminals as Terminal {
                if let Some(to) = self.step(s, t) {
                    if !seen[to] {
                        seen[to] = true;
                        stack.push(to);
                    }
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable.
    pub fn co_reachable(&self) -> Vec<bool> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.num_states];
        for (from, _, to) in self.transitions() {
            rev[to].push(from);
        }
        let mut seen = vec![false; self.num_states];
        let mut stack: Vec<usize> = (0..self.num_states)
            .filter(|&s| self.accepting[s])
            .collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Whether `L = ∅`.
    pub fn is_empty_language(&self) -> bool {
        let reach = self.reachable();
        !(0..self.num_states).any(|s| reach[s] && self.accepting[s])
    }

    /// Whether `L` is finite: no cycle through a *useful* state (reachable
    /// from the start and co-reachable to an accepting state).
    ///
    /// Deciding this is deciding the Θ(log n)/Θ(log² n) circuit-depth
    /// dichotomy for the RPQ (paper Theorem 5.3 and the remark after
    /// Theorem 5.9).
    pub fn is_finite_language(&self) -> bool {
        let useful = self.useful_states();
        // DFS cycle detection restricted to useful states.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; self.num_states];
        for root in 0..self.num_states {
            if !useful[root] || mark[root] != Mark::White {
                continue;
            }
            let mut stack = vec![(root, 0 as Terminal)];
            mark[root] = Mark::Grey;
            while let Some(&(node, t)) = stack.last() {
                if (t as usize) < self.num_terminals {
                    stack.last_mut().expect("nonempty").1 += 1;
                    if let Some(child) = self.step(node, t) {
                        if !useful[child] {
                            continue;
                        }
                        match mark[child] {
                            Mark::Grey => return false,
                            Mark::White => {
                                mark[child] = Mark::Grey;
                                stack.push((child, 0));
                            }
                            Mark::Black => {}
                        }
                    }
                } else {
                    mark[node] = Mark::Black;
                    stack.pop();
                }
            }
        }
        true
    }

    fn useful_states(&self) -> Vec<bool> {
        let reach = self.reachable();
        let co = self.co_reachable();
        (0..self.num_states).map(|s| reach[s] && co[s]).collect()
    }

    /// Moore partition-refinement minimization. The result is complete on
    /// useful behavior but keeps partial transitions (the dead state is
    /// dropped).
    pub fn minimize(&self) -> Dfa {
        // Complete with an explicit dead state for refinement.
        let dead = self.num_states;
        let n = self.num_states + 1;
        let step = |s: usize, t: Terminal| -> usize {
            if s == dead {
                dead
            } else {
                self.step(s, t).unwrap_or(dead)
            }
        };
        let mut class: Vec<usize> = (0..n)
            .map(|s| {
                if s < self.num_states && self.accepting[s] {
                    1
                } else {
                    0
                }
            })
            .collect();
        loop {
            let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for s in 0..n {
                let sig: Vec<usize> = (0..self.num_terminals as Terminal)
                    .map(|t| class[step(s, t)])
                    .collect();
                let key = (class[s], sig);
                let next = sig_index.len();
                let id = *sig_index.entry(key).or_insert(next);
                next_class[s] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        // Rebuild, skipping classes only reachable through the dead state.
        let dead_class = class[dead];
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        for (s, &cls) in class.iter().enumerate() {
            if cls != dead_class && !remap.contains_key(&cls) {
                remap.insert(cls, order.len());
                order.push(s);
            }
        }
        if order.is_empty() {
            // Language is empty: single non-accepting start state.
            return Dfa::from_parts(1, 0, vec![false], self.num_terminals, &[]);
        }
        let mut transitions = Vec::new();
        let mut accepting = vec![false; order.len()];
        for (new_id, &rep) in order.iter().enumerate() {
            accepting[new_id] = self.accepting[rep];
            for t in 0..self.num_terminals as Terminal {
                let target = step(rep, t);
                if class[target] != dead_class {
                    transitions.push((new_id, t, remap[&class[target]]));
                }
            }
        }
        let start = if class[self.start] == dead_class {
            // Start behaves like the dead state (empty language) — handled
            // above only if no class survived; otherwise map it in.
            return Dfa::from_parts(1, 0, vec![false], self.num_terminals, &[]);
        } else {
            remap[&class[self.start]]
        };
        Dfa::from_parts(
            order.len(),
            start,
            accepting,
            self.num_terminals,
            &transitions,
        )
    }

    /// The complement DFA over the same alphabet (completes with a dead
    /// state, then flips acceptance). Used for the `accept`/`notaccept`
    /// language pair of §6.2.
    pub fn complement(&self) -> Dfa {
        let dead = self.num_states;
        let n = self.num_states + 1;
        let mut transitions = Vec::new();
        for s in 0..n {
            for t in 0..self.num_terminals as Terminal {
                let target = if s == dead {
                    dead
                } else {
                    self.step(s, t).unwrap_or(dead)
                };
                transitions.push((s, t, target));
            }
        }
        let mut accepting: Vec<bool> = self.accepting.iter().map(|a| !a).collect();
        accepting.push(true);
        Dfa::from_parts(n, self.start, accepting, self.num_terminals, &transitions)
    }

    /// Enumerate accepted words of length ≤ `max_len` (up to `max_count`),
    /// in length-lexicographic order. Brute-force oracle for tests.
    pub fn words_up_to(&self, max_len: usize, max_count: usize) -> Vec<Vec<Terminal>> {
        let mut out = Vec::new();
        let mut queue: VecDeque<(usize, Vec<Terminal>)> =
            VecDeque::from([(self.start, Vec::new())]);
        while let Some((state, word)) = queue.pop_front() {
            if out.len() >= max_count {
                break;
            }
            if self.accepting[state] {
                out.push(word.clone());
            }
            if word.len() == max_len {
                continue;
            }
            for t in 0..self.num_terminals as Terminal {
                if let Some(next) = self.step(state, t) {
                    let mut w = word.clone();
                    w.push(t);
                    queue.push_back((next, w));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(pattern: &str) -> (Dfa, Alphabet) {
        let re = Regex::parse(pattern).unwrap();
        let mut alphabet = Alphabet::new();
        let dfa = Dfa::compile(&re, &mut alphabet);
        (dfa, alphabet)
    }

    fn word(alphabet: &Alphabet, names: &[&str]) -> Vec<Terminal> {
        names.iter().map(|n| alphabet.get(n).unwrap()).collect()
    }

    #[test]
    fn dfa_agrees_with_nfa() {
        for pattern in ["E*", "a (b | c)+ d", "a? b a?", "(a b)* c"] {
            let re = Regex::parse(pattern).unwrap();
            let mut alphabet = Alphabet::new();
            let nfa = Nfa::thompson(&re, &mut alphabet);
            let dfa = Dfa::from_nfa(&nfa, alphabet.len()).minimize();
            // Compare on all words of length ≤ 5.
            let k = alphabet.len() as Terminal;
            let mut words: Vec<Vec<Terminal>> = vec![vec![]];
            let mut frontier: Vec<Vec<Terminal>> = vec![vec![]];
            for _ in 0..5 {
                let mut next = Vec::new();
                for w in &frontier {
                    for t in 0..k {
                        let mut w2 = w.clone();
                        w2.push(t);
                        next.push(w2);
                    }
                }
                words.extend(next.iter().cloned());
                frontier = next;
            }
            for w in &words {
                assert_eq!(nfa.accepts(w), dfa.accepts(w), "{pattern} on {w:?}");
            }
        }
    }

    #[test]
    fn minimal_tc_dfa_has_two_states() {
        // E+ over a single label: start + accept.
        let (dfa, _) = compile("E E*");
        assert_eq!(dfa.num_states, 2);
        assert!(!dfa.is_finite_language());
    }

    #[test]
    fn finite_language_detected() {
        let (dfa, _) = compile("a b | a c");
        assert!(dfa.is_finite_language());
        assert!(!dfa.is_empty_language());
    }

    #[test]
    fn empty_language_detected() {
        let mut alphabet = Alphabet::new();
        alphabet.intern("a");
        let dfa = Dfa::compile(&Regex::Empty, &mut alphabet);
        assert!(dfa.is_empty_language());
        assert!(dfa.is_finite_language());
    }

    #[test]
    fn words_enumeration_matches_acceptance() {
        let (dfa, alphabet) = compile("a b*");
        let words = dfa.words_up_to(4, 100);
        assert!(words.contains(&word(&alphabet, &["a"])));
        assert!(words.contains(&word(&alphabet, &["a", "b", "b", "b"])));
        assert_eq!(words.len(), 4); // a, ab, abb, abbb
    }

    #[test]
    fn complement_flips_membership() {
        let (dfa, alphabet) = compile("a b");
        let comp = dfa.complement();
        let ab = word(&alphabet, &["a", "b"]);
        let a = word(&alphabet, &["a"]);
        assert!(dfa.accepts(&ab) && !comp.accepts(&ab));
        assert!(!dfa.accepts(&a) && comp.accepts(&a));
        assert!(comp.accepts(&[]));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // (a a)* | (a a)* — a redundant alternation: minimal DFA has 2 states.
        let (dfa, _) = compile("(a a)* | (a a)*");
        assert_eq!(dfa.num_states, 2);
    }

    #[test]
    fn useful_cycle_required_for_infiniteness() {
        // A cycle exists in "(a)* b" only before acceptance — still useful,
        // so infinite; but "b (∅ cycle)" has none.
        let (dfa, _) = compile("a* b");
        assert!(!dfa.is_finite_language());
        let (dfa2, _) = compile("b");
        assert!(dfa2.is_finite_language());
    }
}
