//! Left-linear (regular) grammars → automata.
//!
//! A basic chain Datalog program whose rules are all left-linear is exactly
//! an RPQ (paper §5, Proposition 5.2). This module turns the left-linear
//! grammar into an NFA (and on to a minimal DFA), which drives the
//! product-graph constructions of Theorem 5.9.

use crate::cfg::{Cfg, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Build an NFA for a left-linear grammar: rules `A → B w` / `A → w` with
/// `w` terminal-only. Returns `None` if the grammar is not left-linear.
///
/// States: one per non-terminal plus an initial state; a path from the
/// initial state to the state of `A` spells a word derivable from `A`;
/// the accept state is the start symbol's.
pub fn left_linear_nfa(cfg: &Cfg) -> Option<Nfa> {
    if !cfg.is_left_linear() {
        return None;
    }
    let n_nts = cfg.num_nonterminals();
    let init = n_nts; // state ids: 0..n_nts are NTs, then init, then fresh
    let mut num_states = n_nts + 1;
    let mut transitions = Vec::new();
    for p in &cfg.productions {
        let (from, word_start) = match p.body.first() {
            Some(Symbol::N(b)) => (*b as usize, 1),
            _ => (init, 0),
        };
        // Chain of terminal transitions from `from` to the head's state.
        let word: Vec<_> = p.body[word_start..]
            .iter()
            .map(|s| match s {
                Symbol::T(t) => *t,
                Symbol::N(_) => unreachable!("left-linear checked"),
            })
            .collect();
        let to = p.head as usize;
        if word.is_empty() {
            transitions.push((from, None, to)); // unit/ε production
        } else {
            let mut cur = from;
            for (i, &t) in word.iter().enumerate() {
                let next = if i + 1 == word.len() {
                    to
                } else {
                    let s = num_states;
                    num_states += 1;
                    s
                };
                transitions.push((cur, Some(t), next));
                cur = next;
            }
        }
    }
    Some(Nfa {
        num_states,
        start: init,
        accept: cfg.start as usize,
        transitions,
    })
}

/// The minimal DFA of a left-linear grammar (`None` if not left-linear).
pub fn left_linear_dfa(cfg: &Cfg) -> Option<Dfa> {
    let nfa = left_linear_nfa(cfg)?;
    Some(Dfa::from_nfa(&nfa, cfg.alphabet.len()).minimize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{words_up_to, CfgAnalysis};
    use crate::normalize::Cnf;

    fn check_language_agreement(text: &str) {
        let cfg = Cfg::parse(text).unwrap();
        let dfa = left_linear_dfa(&cfg).expect("left-linear");
        let cnf = Cnf::from_cfg(&cfg);
        let _ = CfgAnalysis::new(&cnf);
        // All words up to length 6 agree between CYK and the DFA.
        let accepted = words_up_to(&cnf, 6, 10_000);
        for w in &accepted {
            assert!(dfa.accepts(w), "{text}: CYK accepts {w:?}, DFA rejects");
        }
        // And DFA enumeration is CYK-accepted.
        for w in dfa.words_up_to(6, 10_000) {
            assert!(cnf.accepts(&w), "{text}: DFA accepts {w:?}, CYK rejects");
        }
    }

    #[test]
    fn tc_grammar_language_is_e_plus() {
        check_language_agreement("T -> T E | E");
    }

    #[test]
    fn multi_label_left_linear() {
        check_language_agreement("T -> A\nT -> T B");
        check_language_agreement("S -> S a b | c");
    }

    #[test]
    fn finite_left_linear() {
        check_language_agreement("S -> a b | a | b a a");
    }

    #[test]
    fn non_left_linear_is_rejected() {
        let cfg = Cfg::dyck1();
        assert!(left_linear_nfa(&cfg).is_none());
    }
}
