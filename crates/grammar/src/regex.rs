//! Regular expressions over edge-label alphabets.
//!
//! Regular Path Queries (paper §5) are given by a regular language over the
//! EDB labels; this module provides the surface syntax. Literals are
//! identifiers (`E`, `knows`, `a1`); concatenation is juxtaposition,
//! alternation `|`, and the postfix operators `*`, `+`, `?` apply to the
//! preceding atom. Parentheses group.

use std::fmt;

use provcirc_error::Error;

/// A regular expression AST over named labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty word ε.
    Epsilon,
    /// A single label.
    Lit(String),
    /// Concatenation.
    Concat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One-or-more.
    Plus(Box<Regex>),
    /// Zero-or-one.
    Opt(Box<Regex>),
}

impl Regex {
    /// Parse an expression such as `E*`, `a (b | c)+ d?`, `knows* likes`.
    pub fn parse(input: &str) -> Result<Regex, Error> {
        let tokens = tokenize(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let re = p.alt()?;
        if p.pos != p.tokens.len() {
            return Err(Error::parse(
                "regex",
                format!("unexpected token at position {}", p.pos),
            ));
        }
        Ok(re)
    }

    /// All label names mentioned, in first-occurrence order.
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<String>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Lit(l) => {
                if !out.iter().any(|x| x == l) {
                    out.push(l.clone());
                }
            }
            Regex::Concat(xs) | Regex::Alt(xs) => {
                for x in xs {
                    x.collect_labels(out);
                }
            }
            Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => x.collect_labels(out),
        }
    }

    /// Whether the denoted language is trivially finite by syntax (no `*`
    /// or `+`). This is sufficient but not necessary; the exact test goes
    /// through the DFA ([`crate::Dfa::is_finite_language`]).
    pub fn is_star_free(&self) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Lit(_) => true,
            Regex::Concat(xs) | Regex::Alt(xs) => xs.iter().all(Regex::is_star_free),
            Regex::Opt(x) => x.is_star_free(),
            Regex::Star(_) | Regex::Plus(_) => false,
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Lit(l) => write!(f, "{l}"),
            Regex::Concat(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    if matches!(x, Regex::Alt(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Regex::Alt(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Regex::Star(x) => write_postfix(f, x, '*'),
            Regex::Plus(x) => write_postfix(f, x, '+'),
            Regex::Opt(x) => write_postfix(f, x, '?'),
        }
    }
}

fn write_postfix(f: &mut fmt::Formatter<'_>, x: &Regex, op: char) -> fmt::Result {
    if matches!(x, Regex::Lit(_) | Regex::Epsilon | Regex::Empty) {
        write!(f, "{x}{op}")
    } else {
        write!(f, "({x}){op}")
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Pipe,
    Star,
    Plus,
    Quest,
}

fn tokenize(input: &str) -> Result<Vec<Token>, Error> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '.' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '|' => {
                chars.next();
                out.push(Token::Pipe);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '?' => {
                chars.next();
                out.push(Token::Quest);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(ident));
            }
            other => {
                return Err(Error::parse(
                    "regex",
                    format!("unexpected character '{other}'"),
                ))
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn alt(&mut self) -> Result<Regex, Error> {
        let mut parts = vec![self.concat()?];
        while self.peek() == Some(&Token::Pipe) {
            self.pos += 1;
            parts.push(self.concat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Regex::Alt(parts)
        })
    }

    fn concat(&mut self) -> Result<Regex, Error> {
        let mut parts = Vec::new();
        while matches!(self.peek(), Some(Token::Ident(_)) | Some(Token::LParen)) {
            parts.push(self.postfix()?);
        }
        Ok(match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.pop().expect("one part"),
            _ => Regex::Concat(parts),
        })
    }

    fn postfix(&mut self) -> Result<Regex, Error> {
        let mut re = self.atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    re = Regex::Star(Box::new(re));
                }
                Some(Token::Plus) => {
                    self.pos += 1;
                    re = Regex::Plus(Box::new(re));
                }
                Some(Token::Quest) => {
                    self.pos += 1;
                    re = Regex::Opt(Box::new(re));
                }
                _ => break,
            }
        }
        Ok(re)
    }

    fn atom(&mut self) -> Result<Regex, Error> {
        match self.peek().cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                Ok(Regex::Lit(name))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let re = self.alt()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(Error::parse("regex", "missing ')'"));
                }
                self.pos += 1;
                Ok(re)
            }
            other => Err(Error::parse(
                "regex",
                format!("expected atom, got {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_star() {
        assert_eq!(
            Regex::parse("E*").unwrap(),
            Regex::Star(Box::new(Regex::Lit("E".into())))
        );
    }

    #[test]
    fn parses_concat_and_alt_with_precedence() {
        // a b | c  ≡  (a b) | c
        let re = Regex::parse("a b | c").unwrap();
        assert_eq!(
            re,
            Regex::Alt(vec![
                Regex::Concat(vec![Regex::Lit("a".into()), Regex::Lit("b".into())]),
                Regex::Lit("c".into()),
            ])
        );
    }

    #[test]
    fn parses_grouping_and_postfix() {
        let re = Regex::parse("(a | b)+ c?").unwrap();
        assert_eq!(
            re,
            Regex::Concat(vec![
                Regex::Plus(Box::new(Regex::Alt(vec![
                    Regex::Lit("a".into()),
                    Regex::Lit("b".into())
                ]))),
                Regex::Opt(Box::new(Regex::Lit("c".into()))),
            ])
        );
    }

    #[test]
    fn empty_input_is_epsilon() {
        assert_eq!(Regex::parse("").unwrap(), Regex::Epsilon);
    }

    #[test]
    fn labels_in_order() {
        let re = Regex::parse("b a b c").unwrap();
        assert_eq!(re.labels(), vec!["b", "a", "c"]);
    }

    #[test]
    fn star_free_detection() {
        assert!(Regex::parse("a b? (c | d)").unwrap().is_star_free());
        assert!(!Regex::parse("a b*").unwrap().is_star_free());
        assert!(!Regex::parse("(a b)+").unwrap().is_star_free());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(Regex::parse("(a").is_err());
        assert!(Regex::parse("a)").is_err());
        assert!(Regex::parse("a $ b").is_err());
    }

    #[test]
    fn display_round_trips() {
        for src in ["E*", "a b | c", "(a | b)+ c?", "knows* likes"] {
            let re = Regex::parse(src).unwrap();
            let re2 = Regex::parse(&re.to_string()).unwrap();
            assert_eq!(re, re2, "round-trip of {src}");
        }
    }
}
