//! Property-based tests of the algebraic laws for every concrete semiring.

use proptest::prelude::*;
use semiring::prelude::*;
use semiring::properties;

fn tropical() -> impl Strategy<Value = Tropical> {
    prop_oneof![
        9 => (0u64..1_000).prop_map(Tropical::new),
        1 => Just(Tropical::infinity()),
    ]
}

fn tropical_z() -> impl Strategy<Value = TropicalZ> {
    prop_oneof![
        9 => (-1_000i64..1_000).prop_map(TropicalZ::new),
        1 => Just(TropicalZ::infinity()),
    ]
}

fn counting() -> impl Strategy<Value = Counting> {
    (0u64..1_000).prop_map(Counting::new)
}

fn viterbi() -> impl Strategy<Value = Viterbi> {
    (0u32..=1_000).prop_map(|n| Viterbi::new(n as f64 / 1_000.0))
}

fn fuzzy() -> impl Strategy<Value = Fuzzy> {
    (0u32..=1_000).prop_map(|n| Fuzzy::new(n as f64 / 1_000.0))
}

fn bottleneck() -> impl Strategy<Value = Bottleneck> {
    prop_oneof![
        9 => (0u64..1_000).prop_map(Bottleneck::new),
        1 => Just(Bottleneck::infinity()),
    ]
}

fn tropk() -> impl Strategy<Value = TropK<3>> {
    proptest::collection::vec(0u64..100, 0..5).prop_map(TropK::<3>::from_weights)
}

fn whyprov() -> impl Strategy<Value = WhyProv> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..6, 0..4), 0..4)
        .prop_map(WhyProv::from_witnesses)
}

fn monomial() -> impl Strategy<Value = Monomial> {
    proptest::collection::vec((0u32..5, 1u32..4), 0..4).prop_map(Monomial::from_pairs)
}

fn sorp() -> impl Strategy<Value = Sorp> {
    proptest::collection::vec(monomial(), 0..4).prop_map(Sorp::from_monomials)
}

macro_rules! law_suite {
    ($name:ident, $strat:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn semiring_laws(a in $strat, b in $strat, c in $strat) {
                    properties::check_semiring_laws(&a, &b, &c)
                        .map_err(TestCaseError::fail)?;
                }
            }
        }
    };
}

law_suite!(tropical_laws, tropical());
law_suite!(tropical_z_laws, tropical_z());
law_suite!(counting_laws, counting());
law_suite!(viterbi_laws, viterbi());
law_suite!(fuzzy_laws, fuzzy());
law_suite!(bottleneck_laws, bottleneck());
law_suite!(tropk_laws, tropk());
law_suite!(whyprov_laws, whyprov());
law_suite!(sorp_laws, sorp());

proptest! {
    #[test]
    fn absorptive_semirings_absorb(a in tropical(), f in fuzzy(), w in whyprov(), p in sorp()) {
        properties::check_absorptive(&a).map_err(TestCaseError::fail)?;
        properties::check_absorptive(&f).map_err(TestCaseError::fail)?;
        properties::check_absorptive(&w).map_err(TestCaseError::fail)?;
        properties::check_absorptive(&p).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn chom_semirings_are_mul_idempotent(f in fuzzy(), b in bottleneck(), w in whyprov()) {
        properties::check_mul_idempotent(&f).map_err(TestCaseError::fail)?;
        properties::check_mul_idempotent(&b).map_err(TestCaseError::fail)?;
        properties::check_mul_idempotent(&w).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn tropk_is_k_minus_1_stable(u in tropk()) {
        properties::check_stability_at(&u, <TropK<3> as Stable>::stability_index())
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn sorp_is_an_antichain(p in sorp()) {
        let ms: Vec<_> = p.monomials().iter().cloned().collect();
        for (i, a) in ms.iter().enumerate() {
            for (j, b) in ms.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.divides(b), "antichain violated: {a} divides {b}");
                }
            }
        }
    }

    #[test]
    fn sorp_eval_is_homomorphism_into_tropical(p in sorp(), q in sorp()) {
        let assign = semiring::from_fn(|v: VarId| Tropical::new((v as u64 % 7) + 1));
        prop_assert_eq!(
            p.add(&q).eval(&assign),
            p.eval(&assign).add(&q.eval(&assign))
        );
        prop_assert_eq!(
            p.mul(&q).eval(&assign),
            p.eval(&assign).mul(&q.eval(&assign))
        );
    }

    #[test]
    fn sorp_multilinear_eval_agrees_on_chom(p in sorp()) {
        // Over a ⊗-idempotent semiring, capping exponents changes nothing.
        let assign = semiring::from_fn(|v: VarId| Bottleneck::new((v as u64 % 5) + 1));
        prop_assert_eq!(p.eval(&assign), p.multilinear().eval(&assign));
    }

    #[test]
    fn positive_homomorphism_to_bool(a in tropical(), b in tropical()) {
        // h(a ⊕ b) = h(a) ∨ h(b), h(a ⊗ b) = h(a) ∧ h(b).
        prop_assert_eq!(a.add(&b).to_bool(), a.to_bool().add(&b.to_bool()));
        prop_assert_eq!(a.mul(&b).to_bool(), a.to_bool().mul(&b.to_bool()));
    }

    #[test]
    fn natural_order_compatible_with_add(a in tropical(), b in tropical()) {
        // a ≤ a ⊕ b always holds in a naturally ordered idempotent semiring.
        prop_assert!(a.nat_le(&a.add(&b)));
    }
}
