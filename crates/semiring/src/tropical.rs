//! Tropical (min-plus) semirings.
//!
//! [`Tropical`] is `T = (ℕ ∪ {∞}, min, +, ∞, 0)` — absorptive, the paper's
//! running example of a non-Boolean absorptive semiring (provenance of a TC
//! fact over `T` is the shortest-path weight, §2.4). [`TropicalZ`] is
//! `T⁻ = (ℤ ∪ {∞}, min, +, ∞, 0)` — ⊕-idempotent but *not* absorptive
//! (`min(0, -1) ≠ 0`), the paper's example separating the two classes.

use crate::traits::{Absorptive, AddIdempotent, NaturallyOrdered, Positive, Semiring, Stable};

/// The tropical semiring over natural weights; `u64::MAX` encodes `+∞`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tropical(pub u64);

/// The encoding of `+∞` in [`Tropical`].
pub const TROPICAL_INF: u64 = u64::MAX;

impl Tropical {
    /// A finite weight.
    pub fn new(w: u64) -> Self {
        debug_assert!(w != TROPICAL_INF, "use Tropical::infinity() for ∞");
        Tropical(w)
    }

    /// The additive identity `+∞`.
    pub fn infinity() -> Self {
        Tropical(TROPICAL_INF)
    }

    /// Whether this weight is `+∞`.
    pub fn is_infinite(&self) -> bool {
        self.0 == TROPICAL_INF
    }

    /// The finite weight, if any.
    pub fn finite(&self) -> Option<u64> {
        (!self.is_infinite()).then_some(self.0)
    }
}

impl Semiring for Tropical {
    const NAME: &'static str = "tropical";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Tropical(TROPICAL_INF)
    }

    fn one() -> Self {
        Tropical(0)
    }

    fn add(&self, rhs: &Self) -> Self {
        Tropical(self.0.min(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        // ∞ + x = ∞; saturating_add keeps MAX absorbing.
        Tropical(self.0.saturating_add(rhs.0))
    }

    fn is_zero(&self) -> bool {
        self.is_infinite()
    }

    fn is_one(&self) -> bool {
        self.0 == 0
    }
}

impl AddIdempotent for Tropical {}
impl Absorptive for Tropical {}
impl Positive for Tropical {}

impl NaturallyOrdered for Tropical {
    /// `a ≤_T b ⇔ min(a, b) = b`, i.e. numerically `b ≤ a`: smaller weights
    /// are *larger* in the natural order (closer to `1 = 0`).
    fn nat_le(&self, rhs: &Self) -> bool {
        rhs.0 <= self.0
    }
}

impl Stable for Tropical {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for Tropical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// The tropical semiring over integer weights (`T⁻` in the paper):
/// ⊕-idempotent and naturally ordered, but **not** absorptive, so the
/// paper's circuit constructions do *not* apply to it. `i64::MAX` encodes
/// `+∞`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TropicalZ(pub i64);

/// The encoding of `+∞` in [`TropicalZ`].
pub const TROPICAL_Z_INF: i64 = i64::MAX;

impl TropicalZ {
    /// A finite weight.
    pub fn new(w: i64) -> Self {
        debug_assert!(w != TROPICAL_Z_INF, "use TropicalZ::infinity() for ∞");
        TropicalZ(w)
    }

    /// The additive identity `+∞`.
    pub fn infinity() -> Self {
        TropicalZ(TROPICAL_Z_INF)
    }

    /// Whether this weight is `+∞`.
    pub fn is_infinite(&self) -> bool {
        self.0 == TROPICAL_Z_INF
    }
}

impl Semiring for TropicalZ {
    const NAME: &'static str = "tropical-z";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        TropicalZ(TROPICAL_Z_INF)
    }

    fn one() -> Self {
        TropicalZ(0)
    }

    fn add(&self, rhs: &Self) -> Self {
        TropicalZ(self.0.min(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        if self.is_infinite() || rhs.is_infinite() {
            TropicalZ::infinity()
        } else {
            // Saturate just below ∞ so finite stays finite.
            TropicalZ(self.0.saturating_add(rhs.0).min(TROPICAL_Z_INF - 1))
        }
    }

    fn is_zero(&self) -> bool {
        self.is_infinite()
    }
}

impl AddIdempotent for TropicalZ {}
impl Positive for TropicalZ {}

impl NaturallyOrdered for TropicalZ {
    fn nat_le(&self, rhs: &Self) -> bool {
        rhs.0 <= self.0
    }
}

impl std::fmt::Display for TropicalZ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn tropical_laws() {
        let vals = [
            Tropical::new(0),
            Tropical::new(1),
            Tropical::new(5),
            Tropical::infinity(),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_add_idempotent(a).unwrap();
        }
    }

    #[test]
    fn tropical_models_shortest_path_choice() {
        // ⊕ picks the lighter path, ⊗ concatenates.
        let p1 = Tropical::new(2).mul(&Tropical::new(3)); // weight-5 path
        let p2 = Tropical::new(1).mul(&Tropical::new(7)); // weight-8 path
        assert_eq!(p1.add(&p2), Tropical::new(5));
    }

    #[test]
    fn tropical_z_is_not_absorptive() {
        let x = TropicalZ::new(-3);
        assert_ne!(TropicalZ::one().add(&x), TropicalZ::one());
        // ... but it is ⊕-idempotent.
        properties::check_add_idempotent(&x).unwrap();
    }

    #[test]
    fn infinity_annihilates() {
        assert!(Tropical::infinity().mul(&Tropical::new(4)).is_zero());
        assert!(TropicalZ::infinity().mul(&TropicalZ::new(-4)).is_zero());
    }

    #[test]
    fn natural_order_prefers_light_paths() {
        assert!(Tropical::new(9).nat_le(&Tropical::new(2)));
        assert!(Tropical::zero().nat_le(&Tropical::one()));
        assert!(!Tropical::one().nat_le(&Tropical::zero()));
    }
}
