//! The Łukasiewicz semiring `([0,1], max, ⊗_Ł, 0, 1)` with
//! `a ⊗_Ł b = max(0, a + b − 1)`.
//!
//! A standard many-valued-logic semiring: absorptive (`max(1, x) = 1`) but
//! not ⊗-idempotent, so it sits — like [`crate::Tropical`] and
//! [`crate::Viterbi`] — in the class where the paper's circuit results
//! apply but the `Chom` boundedness characterizations (§4) do not. Along a
//! derivation, every rule application *deducts* missing truth, so
//! provenance over Łukasiewicz measures how much slack the best proof
//! leaves. Exact on the grid `k/1000`, so equality is exact in tests that
//! stick to it; [`Semiring::sr_eq`] still uses a tolerance for safety.

use crate::traits::{Absorptive, AddIdempotent, NaturallyOrdered, Positive, Semiring, Stable};

/// The Łukasiewicz (max, bounded-sum) semiring on `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Lukasiewicz(f64);

/// Tolerance used for semantic equality.
pub const LUKASIEWICZ_EPS: f64 = 1e-9;

impl Lukasiewicz {
    /// Construct from a truth degree, clamped into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "Lukasiewicz value must not be NaN");
        Lukasiewicz(v.clamp(0.0, 1.0))
    }

    /// The underlying truth degree.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Semiring for Lukasiewicz {
    const NAME: &'static str = "lukasiewicz";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Lukasiewicz(0.0)
    }

    fn one() -> Self {
        Lukasiewicz(1.0)
    }

    fn add(&self, rhs: &Self) -> Self {
        Lukasiewicz(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Lukasiewicz((self.0 + rhs.0 - 1.0).max(0.0))
    }

    fn sr_eq(&self, rhs: &Self) -> bool {
        (self.0 - rhs.0).abs() <= LUKASIEWICZ_EPS
    }
}

impl AddIdempotent for Lukasiewicz {}
impl Absorptive for Lukasiewicz {}
impl Positive for Lukasiewicz {}

impl NaturallyOrdered for Lukasiewicz {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0 + LUKASIEWICZ_EPS
    }
}

impl Stable for Lukasiewicz {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for Lukasiewicz {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws() {
        let vals = [
            Lukasiewicz::new(0.0),
            Lukasiewicz::new(0.25),
            Lukasiewicz::new(0.5),
            Lukasiewicz::new(0.75),
            Lukasiewicz::new(1.0),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_add_idempotent(a).unwrap();
        }
    }

    #[test]
    fn zero_annihilates_through_deduction() {
        // 0.3 ⊗ 0.3 = 0 — long weak chains die, unlike in Fuzzy.
        let w = Lukasiewicz::new(0.3);
        assert!(w.mul(&w).is_zero());
    }

    #[test]
    fn not_mul_idempotent() {
        let v = Lukasiewicz::new(0.8);
        assert!(properties::check_mul_idempotent(&v).is_err());
    }

    #[test]
    fn path_slack_semantics() {
        // A proof using edges 0.9 and 0.8 has slack 0.7; an alternative
        // with 0.95 · 0.95 has 0.9; ⊕ picks the stronger proof.
        let p1 = Lukasiewicz::new(0.9).mul(&Lukasiewicz::new(0.8));
        let p2 = Lukasiewicz::new(0.95).mul(&Lukasiewicz::new(0.95));
        assert!(p1.add(&p2).sr_eq(&Lukasiewicz::new(0.9)));
    }
}
