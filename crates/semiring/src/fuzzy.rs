//! The fuzzy semiring `F = ([0,1], max, min, 0, 1)`.
//!
//! A bounded distributive lattice: absorptive **and** ⊗-idempotent, hence in
//! the class `Chom` for which the paper's strongest boundedness
//! characterizations hold (Theorem 4.6, Corollary 4.7, Proposition 4.8,
//! Theorem 6.5). Both operations are exact on floats (no rounding), so
//! equality is exact.

use crate::traits::{
    Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
};

/// The fuzzy (max-min) semiring on `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Fuzzy(f64);

impl Fuzzy {
    /// Construct from a truth degree, clamped into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "Fuzzy value must not be NaN");
        Fuzzy(v.clamp(0.0, 1.0))
    }

    /// The underlying truth degree.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Semiring for Fuzzy {
    const NAME: &'static str = "fuzzy";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Fuzzy(0.0)
    }

    fn one() -> Self {
        Fuzzy(1.0)
    }

    fn add(&self, rhs: &Self) -> Self {
        Fuzzy(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Fuzzy(self.0.min(rhs.0))
    }
}

impl AddIdempotent for Fuzzy {}
impl Absorptive for Fuzzy {}
impl MulIdempotent for Fuzzy {}
impl Positive for Fuzzy {}

impl NaturallyOrdered for Fuzzy {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl Stable for Fuzzy {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for Fuzzy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws_and_chom_membership() {
        let vals = [
            Fuzzy::new(0.0),
            Fuzzy::new(0.3),
            Fuzzy::new(0.7),
            Fuzzy::new(1.0),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_add_idempotent(a).unwrap();
            properties::check_mul_idempotent(a).unwrap();
        }
    }

    #[test]
    fn weakest_link_semantics() {
        // A path's degree is its weakest edge; a fact takes the best path.
        let p1 = Fuzzy::new(0.9).mul(&Fuzzy::new(0.2)); // 0.2
        let p2 = Fuzzy::new(0.5).mul(&Fuzzy::new(0.6)); // 0.5
        assert_eq!(p1.add(&p2), Fuzzy::new(0.5));
    }
}
