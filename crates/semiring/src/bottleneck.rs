//! The bottleneck semiring `(ℕ ∪ {∞}, max, min, 0, ∞)`.
//!
//! Provenance of a TC fact over this semiring is the widest-path capacity.
//! Like [`crate::Fuzzy`] it is a bounded distributive lattice (absorptive and
//! ⊗-idempotent — class `Chom`), but over integer capacities, which makes it
//! convenient for exact cross-semiring agreement tests (Corollary 4.7).

use crate::traits::{
    Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
};

/// The bottleneck (max-min) capacity semiring; `u64::MAX` encodes `∞`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bottleneck(pub u64);

/// The encoding of `∞` (the multiplicative identity) in [`Bottleneck`].
pub const BOTTLENECK_INF: u64 = u64::MAX;

impl Bottleneck {
    /// A finite capacity.
    pub fn new(c: u64) -> Self {
        Bottleneck(c)
    }

    /// The multiplicative identity `∞` (unlimited capacity).
    pub fn infinity() -> Self {
        Bottleneck(BOTTLENECK_INF)
    }
}

impl Semiring for Bottleneck {
    const NAME: &'static str = "bottleneck";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Bottleneck(0)
    }

    fn one() -> Self {
        Bottleneck(BOTTLENECK_INF)
    }

    fn add(&self, rhs: &Self) -> Self {
        Bottleneck(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Bottleneck(self.0.min(rhs.0))
    }
}

impl AddIdempotent for Bottleneck {}
impl Absorptive for Bottleneck {}
impl MulIdempotent for Bottleneck {}
impl Positive for Bottleneck {}

impl NaturallyOrdered for Bottleneck {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl Stable for Bottleneck {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == BOTTLENECK_INF {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws_and_chom_membership() {
        let vals = [
            Bottleneck(0),
            Bottleneck(3),
            Bottleneck(10),
            Bottleneck::infinity(),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_mul_idempotent(a).unwrap();
        }
    }

    #[test]
    fn widest_path_semantics() {
        let p1 = Bottleneck(8).mul(&Bottleneck(2)); // capacity 2
        let p2 = Bottleneck(5).mul(&Bottleneck(4)); // capacity 4
        assert_eq!(p1.add(&p2), Bottleneck(4));
    }
}
