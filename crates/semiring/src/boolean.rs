//! The Boolean semiring `B = ({false, true}, ∨, ∧, false, true)`.

use crate::traits::{
    Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
};

/// The Boolean semiring, the base case of all the paper's dichotomies:
/// lower bounds proven over `B` transfer up to every positive semiring
/// (Proposition 3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bool(pub bool);

impl Bool {
    /// The `true` value.
    pub const TRUE: Bool = Bool(true);
    /// The `false` value.
    pub const FALSE: Bool = Bool(false);
}

impl Semiring for Bool {
    const NAME: &'static str = "boolean";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Bool(false)
    }

    fn one() -> Self {
        Bool(true)
    }

    fn add(&self, rhs: &Self) -> Self {
        Bool(self.0 || rhs.0)
    }

    fn mul(&self, rhs: &Self) -> Self {
        Bool(self.0 && rhs.0)
    }

    fn is_zero(&self) -> bool {
        !self.0
    }

    fn is_one(&self) -> bool {
        self.0
    }
}

impl AddIdempotent for Bool {}
impl Absorptive for Bool {}
impl MulIdempotent for Bool {}
impl Positive for Bool {}

impl NaturallyOrdered for Bool {
    fn nat_le(&self, rhs: &Self) -> bool {
        !self.0 || rhs.0
    }
}

impl Stable for Bool {
    fn stability_index() -> usize {
        0
    }
}

impl From<bool> for Bool {
    fn from(b: bool) -> Self {
        Bool(b)
    }
}

impl std::fmt::Display for Bool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws() {
        let vals = [Bool(false), Bool(true)];
        for a in vals {
            for b in vals {
                for c in vals {
                    properties::check_semiring_laws(&a, &b, &c).unwrap();
                }
                properties::check_add_idempotent(&a).unwrap();
                properties::check_mul_idempotent(&a).unwrap();
            }
            properties::check_absorptive(&a).unwrap();
        }
    }

    #[test]
    fn natural_order_is_implication() {
        assert!(Bool(false).nat_le(&Bool(true)));
        assert!(!Bool(true).nat_le(&Bool(false)));
        assert!(Bool(true).nat_le(&Bool(true)));
    }
}
