//! The Viterbi semiring `V = ([0,1], max, ·, 0, 1)`.
//!
//! Absorptive (`max(1, x) = 1`) but not ⊗-idempotent. The provenance of a TC
//! fact over `V` is the probability of the most likely path. Multiplication
//! of floats is associative only up to rounding, so [`Viterbi`] overrides
//! [`Semiring::sr_eq`] with a small tolerance.

use crate::traits::{Absorptive, AddIdempotent, NaturallyOrdered, Positive, Semiring, Stable};

/// The Viterbi (max-product) semiring on `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Viterbi(f64);

/// Tolerance used for semantic equality of Viterbi values.
pub const VITERBI_EPS: f64 = 1e-9;

impl Viterbi {
    /// Construct from a probability, clamped into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn new(p: f64) -> Self {
        assert!(!p.is_nan(), "Viterbi value must not be NaN");
        Viterbi(p.clamp(0.0, 1.0))
    }

    /// The underlying probability.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Semiring for Viterbi {
    const NAME: &'static str = "viterbi";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        Viterbi(0.0)
    }

    fn one() -> Self {
        Viterbi(1.0)
    }

    fn add(&self, rhs: &Self) -> Self {
        Viterbi(self.0.max(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Viterbi(self.0 * rhs.0)
    }

    fn sr_eq(&self, rhs: &Self) -> bool {
        (self.0 - rhs.0).abs() <= VITERBI_EPS
    }
}

impl AddIdempotent for Viterbi {}
impl Absorptive for Viterbi {}
impl Positive for Viterbi {}

impl NaturallyOrdered for Viterbi {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0 + VITERBI_EPS
    }
}

impl Stable for Viterbi {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for Viterbi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws() {
        let vals = [
            Viterbi::new(0.0),
            Viterbi::new(0.25),
            Viterbi::new(0.5),
            Viterbi::new(1.0),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_add_idempotent(a).unwrap();
        }
    }

    #[test]
    fn picks_most_likely_path() {
        let p1 = Viterbi::new(0.9).mul(&Viterbi::new(0.5)); // 0.45
        let p2 = Viterbi::new(0.6).mul(&Viterbi::new(0.8)); // 0.48
        assert!(p1.add(&p2).sr_eq(&Viterbi::new(0.48)));
    }

    #[test]
    fn clamps_and_rejects_nan() {
        assert_eq!(Viterbi::new(2.0).value(), 1.0);
        assert_eq!(Viterbi::new(-0.5).value(), 0.0);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        let _ = Viterbi::new(f64::NAN);
    }
}
