//! Commutative semirings for Datalog provenance.
//!
//! This crate is the algebraic substrate of the `datalog-circuits` workspace,
//! reproducing the semiring landscape of *Circuits and Formulas for Datalog
//! over Semirings* (Fan, Koutris, Roy — PODS 2025), §2.2–§2.4:
//!
//! * the [`Semiring`] trait plus marker traits for the properties the paper
//!   relies on: [`AddIdempotent`] (⊕-idempotent), [`Absorptive`] (1 ⊕ x = 1,
//!   i.e. 0-stable), [`MulIdempotent`] (⊗-idempotent; together with
//!   absorptive this is the class `Chom` of bounded distributive lattices),
//!   [`NaturallyOrdered`], [`Positive`] and [`Stable`] (p-stability);
//! * concrete semirings: the Boolean semiring [`Bool`], the tropical
//!   semiring [`Tropical`] (ℕ∪{∞}, min, +), the non-absorptive variant
//!   [`TropicalZ`] (ℤ∪{∞}), the counting semiring [`Counting`], the Viterbi
//!   semiring [`Viterbi`], the fuzzy semiring [`Fuzzy`] (min/max on `[0,1]`),
//!   the bottleneck semiring [`Bottleneck`] (max/min), the k-best tropical
//!   semiring [`TropK`], and why-provenance [`WhyProv`];
//! * the universal object for absorptive provenance: generalized absorptive
//!   polynomials [`Sorp`] with monomials normalized to a divisibility
//!   antichain ([`Monomial`]).
//!
//! Evaluating any circuit or Datalog program over [`Sorp`] yields the
//! canonical provenance polynomial of §2.4 of the paper; evaluating over a
//! concrete absorptive semiring factors through it (Proposition 2.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod bottleneck;
pub mod counting;
pub mod fuzzy;
pub mod lukasiewicz;
pub mod polynomial;
pub mod properties;
pub mod traits;
pub mod tropical;
pub mod tropk;
pub mod valuation;
pub mod viterbi;
pub mod whyprov;

pub use boolean::Bool;
pub use bottleneck::Bottleneck;
pub use counting::Counting;
pub use fuzzy::Fuzzy;
pub use lukasiewicz::Lukasiewicz;
pub use polynomial::{Monomial, Sorp, VarId};
pub use traits::{
    Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
};
pub use tropical::{Tropical, TropicalZ};
pub use tropk::TropK;
pub use valuation::{
    from_fn, AllOnes, FnVal, FromEdgeWeights, PerFact, UnitWeights, Valuation, VarTags,
};
pub use viterbi::Viterbi;
pub use whyprov::WhyProv;

/// Convenient glob-import of the trait hierarchy and all concrete semirings.
pub mod prelude {
    pub use crate::boolean::Bool;
    pub use crate::bottleneck::Bottleneck;
    pub use crate::counting::Counting;
    pub use crate::fuzzy::Fuzzy;
    pub use crate::lukasiewicz::Lukasiewicz;
    pub use crate::polynomial::{Monomial, Sorp, VarId};
    pub use crate::traits::{
        Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
    };
    pub use crate::tropical::{Tropical, TropicalZ};
    pub use crate::tropk::TropK;
    pub use crate::valuation::{
        from_fn, AllOnes, FnVal, FromEdgeWeights, PerFact, UnitWeights, Valuation, VarTags,
    };
    pub use crate::viterbi::Viterbi;
    pub use crate::whyprov::WhyProv;
}
