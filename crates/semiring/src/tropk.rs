//! The k-best tropical semiring `Trop_K`: sets of the `K` smallest distinct
//! path weights.
//!
//! For `K = 1` this degenerates to [`crate::Tropical`]. For `K ≥ 2` it is
//! ⊕-idempotent and naturally ordered but **not** absorptive; it *is*
//! `(K-1)`-stable, making it the crate's witness for the paper's p-stable
//! semiring discussion (§2.3, citing Khamis et al.): naive evaluation still
//! converges, just not in the 0-stable regime the circuit constructions need.
//!
//! Elements are strictly increasing vectors of at most `K` finite weights
//! (absent entries are `∞`). We use the *distinct-value* variant so that `⊕`
//! (merge, keep `K` smallest distinct) is idempotent.

use crate::traits::{AddIdempotent, NaturallyOrdered, Positive, Semiring, Stable};

/// The k-best tropical semiring. `K` must be at least 1.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TropK<const K: usize> {
    /// Strictly increasing finite weights, length ≤ K.
    weights: Vec<u64>,
}

impl<const K: usize> TropK<K> {
    /// The element holding exactly the given weights (deduplicated, sorted,
    /// truncated to the `K` smallest).
    pub fn from_weights(mut ws: Vec<u64>) -> Self {
        ws.sort_unstable();
        ws.dedup();
        ws.truncate(K);
        TropK { weights: ws }
    }

    /// A single finite weight (truncated away when `K == 0`, where the
    /// only element is the empty set and the semiring is trivial).
    pub fn single(w: u64) -> Self {
        Self::from_weights(vec![w])
    }

    /// The stored weights (strictly increasing, at most `K`).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The best (smallest) weight, if any.
    pub fn best(&self) -> Option<u64> {
        self.weights.first().copied()
    }
}

impl<const K: usize> Semiring for TropK<K> {
    const NAME: &'static str = "trop-k";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        TropK {
            weights: Vec::new(),
        }
    }

    fn one() -> Self {
        // Through the truncating constructor: `vec![0]` would violate the
        // "at most K weights" invariant when `K == 0` (the trivial
        // one-element semiring, where 1 = 0 = {}).
        Self::from_weights(vec![0])
    }

    fn add(&self, rhs: &Self) -> Self {
        // Merge two sorted distinct lists, keep the K smallest distinct.
        let mut out = Vec::with_capacity(K.min(self.weights.len() + rhs.weights.len()));
        let (mut i, mut j) = (0, 0);
        while out.len() < K && (i < self.weights.len() || j < rhs.weights.len()) {
            let next = match (self.weights.get(i), rhs.weights.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a <= b {
                        i += 1;
                        if a == b {
                            j += 1;
                        }
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            out.push(next);
        }
        TropK { weights: out }
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut sums: Vec<u64> = Vec::with_capacity(self.weights.len() * rhs.weights.len());
        for &a in &self.weights {
            for &b in &rhs.weights {
                sums.push(a.saturating_add(b));
            }
        }
        Self::from_weights(sums)
    }

    fn is_zero(&self) -> bool {
        self.weights.is_empty()
    }
}

impl<const K: usize> AddIdempotent for TropK<K> {}
impl<const K: usize> Positive for TropK<K> {}

impl<const K: usize> NaturallyOrdered for TropK<K> {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.add(rhs) == *rhs
    }
}

impl<const K: usize> Stable for TropK<K> {
    /// `Trop_K` with distinct weights is `(K-1)`-stable: once the star has
    /// accumulated `K` candidate weights built from at most `K-1` factors,
    /// any longer product is dominated. Verified empirically in tests.
    fn stability_index() -> usize {
        K.saturating_sub(1)
    }
}

impl<const K: usize> std::fmt::Display for TropK<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (idx, w) in self.weights.iter().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    type T3 = TropK<3>;

    #[test]
    fn laws() {
        let vals = [
            T3::zero(),
            T3::one(),
            T3::single(2),
            T3::from_weights(vec![1, 4]),
            T3::from_weights(vec![0, 2, 5]),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_add_idempotent(a).unwrap();
        }
    }

    #[test]
    fn not_absorptive_for_k_at_least_2() {
        let x = T3::single(5);
        assert_ne!(T3::one().add(&x), T3::one());
    }

    #[test]
    fn k1_is_absorptive_like_tropical() {
        type T1 = TropK<1>;
        let x = T1::single(5);
        assert_eq!(T1::one().add(&x), T1::one());
    }

    #[test]
    fn keeps_k_smallest() {
        let a = T3::from_weights(vec![1, 3, 9]);
        let b = T3::from_weights(vec![2, 3, 4]);
        assert_eq!(a.add(&b), T3::from_weights(vec![1, 2, 3]));
    }

    #[test]
    fn stability_index_holds_empirically() {
        // star(u) computed with p = K-1 terms must equal the star with one
        // extra term, for a spread of elements.
        let elems = [
            T3::single(0),
            T3::single(3),
            T3::from_weights(vec![0, 3]),
            T3::from_weights(vec![2, 5, 11]),
            T3::from_weights(vec![1, 2, 3]),
        ];
        for u in &elems {
            let p = <T3 as Stable>::stability_index() as u32;
            let mut star_p = T3::one();
            let mut pw = T3::one();
            for _ in 0..p {
                pw = pw.mul(u);
                star_p = star_p.add(&pw);
            }
            let star_p1 = star_p.add(&pw.mul(u));
            assert_eq!(star_p, star_p1, "u = {u:?}");
        }
    }

    #[test]
    fn k0_is_the_trivial_one_element_semiring() {
        // Regression: `one()` and `single()` used to build `vec![w]`
        // without truncation, violating the "at most K weights" invariant
        // at K = 0. Every constructor must yield the empty set, 1 = 0, and
        // all operations must stay closed on it.
        type T0 = TropK<0>;
        assert!(T0::one().weights().is_empty());
        assert!(T0::single(7).weights().is_empty());
        assert!(T0::from_weights(vec![1, 2, 3]).weights().is_empty());
        assert_eq!(T0::one(), T0::zero());
        assert!(T0::one().is_zero());
        let vals = [T0::zero(), T0::one(), T0::single(5)];
        for a in &vals {
            for b in &vals {
                assert!(a.add(b).weights().is_empty());
                assert!(a.mul(b).weights().is_empty());
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_add_idempotent(a).unwrap();
        }
    }

    #[test]
    fn tracks_k_shortest_path_weights() {
        // Diamond: two parallel 2-edge paths of weights 3 and 5.
        let path1 = T3::single(1).mul(&T3::single(2));
        let path2 = T3::single(4).mul(&T3::single(1));
        assert_eq!(path1.add(&path2), T3::from_weights(vec![3, 5]));
    }
}
