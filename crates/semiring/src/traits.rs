//! The semiring trait hierarchy.
//!
//! A *(commutative) semiring* `S = (D, ⊕, ⊗, 0, 1)` satisfies (paper §2.2):
//! `(D, ⊕, 0)` and `(D, ⊗, 1)` are commutative monoids, `⊗` distributes over
//! `⊕`, and `0` annihilates `⊗`. Marker traits refine the hierarchy with the
//! properties the paper's results are conditioned on.

use crate::boolean::Bool;

/// A commutative semiring.
///
/// Implementations must satisfy, for all `a, b, c`:
///
/// * `a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c`, `a ⊕ b = b ⊕ a`, `a ⊕ 0 = a`
/// * `a ⊗ (b ⊗ c) = (a ⊗ b) ⊗ c`, `a ⊗ b = b ⊗ a`, `a ⊗ 1 = a`
/// * `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)`
/// * `a ⊗ 0 = 0`
///
/// Equality of semiring values is [`Semiring::sr_eq`]; the default is
/// `PartialEq`, but floating-point semirings override it with a tolerance
/// because `⊗` is only associative up to rounding there.
pub trait Semiring: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Human-readable name used in experiment reports.
    const NAME: &'static str;

    /// Whether `⊕` is idempotent (`x ⊕ x = x`) for every element.
    ///
    /// This is a compile-time capability flag mirroring the
    /// [`AddIdempotent`] marker trait: it must be `true` exactly for the
    /// types that implement the marker (each semiring's unit tests assert
    /// the law itself via [`crate::properties::check_add_idempotent`]).
    ///
    /// Generic code that cannot name the marker trait — most importantly
    /// delta-driven *semi-naive* Datalog evaluation, which accumulates rule
    /// contributions with `⊕` instead of recomputing full sums and is only
    /// sound when stale contributions collapse (`x ⊕ y = y` whenever
    /// `x ≤ y`) — branches on this constant and falls back to naive
    /// evaluation when it is `false` (e.g. for [`crate::Counting`]).
    const ADD_IDEMPOTENT: bool = false;

    /// The additive identity `0` (annihilator of `⊗`).
    fn zero() -> Self;

    /// The multiplicative identity `1`.
    fn one() -> Self;

    /// Semiring addition `⊕`.
    fn add(&self, rhs: &Self) -> Self;

    /// Semiring multiplication `⊗`.
    fn mul(&self, rhs: &Self) -> Self;

    /// Whether this value is the additive identity.
    fn is_zero(&self) -> bool {
        self.sr_eq(&Self::zero())
    }

    /// Whether this value is the multiplicative identity.
    fn is_one(&self) -> bool {
        self.sr_eq(&Self::one())
    }

    /// Semantic equality (defaults to `==`; floating-point semirings use a
    /// tolerance so that re-associated products still compare equal).
    fn sr_eq(&self, rhs: &Self) -> bool {
        self == rhs
    }

    /// In-place `⊕`.
    fn add_assign(&mut self, rhs: &Self) {
        *self = self.add(rhs);
    }

    /// In-place `⊗`.
    fn mul_assign(&mut self, rhs: &Self) {
        *self = self.mul(rhs);
    }

    /// `⊕`-sum of an iterator (`0` when empty).
    fn sum<'a, I>(iter: I) -> Self
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut acc = Self::zero();
        for x in iter {
            acc.add_assign(x);
        }
        acc
    }

    /// `⊗`-product of an iterator (`1` when empty).
    fn product<'a, I>(iter: I) -> Self
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut acc = Self::one();
        for x in iter {
            acc.mul_assign(x);
        }
        acc
    }

    /// `x^n` by repeated squaring (`x^0 = 1`).
    fn pow(&self, mut n: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while n > 0 {
            if n & 1 == 1 {
                acc.mul_assign(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }
}

/// `⊕`-idempotent semirings: `x ⊕ x = x`.
///
/// Every absorptive semiring is ⊕-idempotent (paper §2.2) but not vice versa
/// (e.g. [`crate::TropicalZ`]).
pub trait AddIdempotent: Semiring {
    /// The canonical partial order of an idempotent semiring:
    /// `a ≤ b  ⇔  a ⊕ b = b`.
    fn idem_le(&self, rhs: &Self) -> bool {
        self.add(rhs).sr_eq(rhs)
    }
}

/// Absorptive (= 0-stable) semirings: `1 ⊕ x = 1` for all `x`.
///
/// These are exactly the semirings for which the paper's circuit
/// constructions apply: infinite proof-tree sums collapse onto the finitely
/// many tight proof trees (Proposition 2.4), and polynomial-size circuits
/// always exist (Theorem 3.1).
pub trait Absorptive: AddIdempotent {}

/// `⊗`-idempotent semirings: `x ⊗ x = x`.
///
/// Absorptive + ⊗-idempotent is the class `Chom` of bounded distributive
/// lattices (paper §4, citing Kostylev et al. and Naaf); boundedness over any
/// such semiring coincides with Boolean boundedness (Corollary 4.7).
pub trait MulIdempotent: Semiring {}

/// Naturally ordered semirings: `a ≤ b ⇔ ∃c. a ⊕ c = b` is a partial order.
///
/// All semirings in this crate are naturally ordered; each implements the
/// order test directly (for ⊕-idempotent semirings it coincides with
/// [`AddIdempotent::idem_le`]).
pub trait NaturallyOrdered: Semiring {
    /// The natural order `a ≤_S b`.
    fn nat_le(&self, rhs: &Self) -> bool;

    /// Strict natural order.
    fn nat_lt(&self, rhs: &Self) -> bool {
        self.nat_le(rhs) && !rhs.nat_le(self)
    }
}

/// Positive semirings: `h(x) = (x ≠ 0)` is a homomorphism onto [`Bool`].
///
/// Positivity is what lets the paper "transfer up" Boolean circuit lower
/// bounds to arbitrary semirings (Proposition 3.6). Equivalently: `a ⊕ b = 0`
/// implies `a = b = 0`, and `a ⊗ b = 0` implies `a = 0` or `b = 0`.
pub trait Positive: Semiring {
    /// The canonical homomorphism to the Boolean semiring.
    fn to_bool(&self) -> Bool {
        Bool(!self.is_zero())
    }
}

/// `p`-stable semirings: `1 ⊕ u ⊕ … ⊕ u^p = 1 ⊕ u ⊕ … ⊕ u^{p+1}` for all `u`.
///
/// Naive Datalog evaluation converges on any p-stable semiring (paper §2.3,
/// citing Khamis et al.). Absorptive semirings are exactly the 0-stable ones.
pub trait Stable: Semiring {
    /// The stability index `p` of the semiring.
    fn stability_index() -> usize;

    /// The truncated star `1 ⊕ u ⊕ … ⊕ u^p`, which equals the full star
    /// `⊕_{i≥0} u^i` by p-stability.
    fn star(&self) -> Self {
        let p = Self::stability_index() as u32;
        let mut acc = Self::one();
        let mut pw = Self::one();
        for _ in 0..p {
            pw.mul_assign(self);
            acc.add_assign(&pw);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tropical::Tropical;

    #[test]
    fn pow_matches_repeated_mul() {
        let x = Tropical::new(3);
        let mut acc = Tropical::one();
        for n in 0..8u32 {
            assert_eq!(x.pow(n), acc);
            acc = acc.mul(&x);
        }
    }

    #[test]
    fn sum_and_product_of_empty() {
        assert_eq!(Tropical::sum([].iter()), Tropical::zero());
        assert_eq!(Tropical::product([].iter()), Tropical::one());
    }

    #[test]
    fn absorptive_star_is_one() {
        // Absorptive semirings are 0-stable: star(u) = 1.
        assert_eq!(Tropical::new(7).star(), Tropical::one());
    }
}
