//! The counting semiring `C = (ℕ, +, ·, 0, 1)`.
//!
//! `C` is positive and naturally ordered but **not** idempotent and not
//! p-stable for any p: naive Datalog evaluation need not converge over it
//! (paper §1 uses it as the canonical example of a semiring where the
//! infinite proof-tree sum is ill-defined). The engine's divergence
//! detection is exercised with this semiring.

use crate::traits::{NaturallyOrdered, Positive, Semiring};

/// The counting semiring with saturating arithmetic (`u64::MAX` acts as an
/// overflow sentinel; tests keep values far below it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Counting(pub u64);

impl Counting {
    /// Wrap a count.
    pub fn new(n: u64) -> Self {
        Counting(n)
    }
}

impl Semiring for Counting {
    const NAME: &'static str = "counting";

    fn zero() -> Self {
        Counting(0)
    }

    fn one() -> Self {
        Counting(1)
    }

    fn add(&self, rhs: &Self) -> Self {
        Counting(self.0.saturating_add(rhs.0))
    }

    fn mul(&self, rhs: &Self) -> Self {
        Counting(self.0.saturating_mul(rhs.0))
    }

    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn is_one(&self) -> bool {
        self.0 == 1
    }
}

impl Positive for Counting {}

impl NaturallyOrdered for Counting {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.0 <= rhs.0
    }
}

impl std::fmt::Display for Counting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws() {
        let vals = [Counting(0), Counting(1), Counting(2), Counting(7)];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn not_idempotent() {
        let two = Counting(2);
        assert_ne!(two.add(&two), two);
    }

    #[test]
    fn counts_derivations() {
        // Two proof trees of the same fact: 1 + 1 = 2.
        assert_eq!(Counting::one().add(&Counting::one()), Counting(2));
    }
}
