//! Why-provenance: antichains of minimal witness sets.
//!
//! An element is a set of *witnesses*; each witness is a set of EDB fact ids
//! sufficient to derive the annotated fact. The absorption law keeps only
//! ⊆-minimal witnesses, which makes this the free absorptive ⊗-idempotent
//! semiring on its generators — the universal object of the class `Chom`
//! (paper §4). It is the set-valued analogue of [`crate::Sorp`] with all
//! exponents capped at 1.

use std::collections::BTreeSet;

use crate::traits::{
    Absorptive, AddIdempotent, MulIdempotent, NaturallyOrdered, Positive, Semiring, Stable,
};

/// A witness: a set of EDB fact ids.
pub type Witness = BTreeSet<u32>;

/// Why-provenance values: antichains (under ⊆) of witness sets.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WhyProv {
    witnesses: BTreeSet<Witness>,
}

impl WhyProv {
    /// The annotation of a single EDB fact.
    pub fn fact(id: u32) -> Self {
        let mut w = Witness::new();
        w.insert(id);
        let mut s = BTreeSet::new();
        s.insert(w);
        WhyProv { witnesses: s }
    }

    /// Build from explicit witness sets (normalized to ⊆-minimal ones).
    pub fn from_witnesses<I>(iter: I) -> Self
    where
        I: IntoIterator<Item = Witness>,
    {
        let mut out = WhyProv::default();
        for w in iter {
            out.insert_minimal(w);
        }
        out
    }

    /// The ⊆-minimal witnesses.
    pub fn witnesses(&self) -> &BTreeSet<Witness> {
        &self.witnesses
    }

    /// Number of minimal witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there is no witness (the value is `0`).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    fn insert_minimal(&mut self, w: Witness) {
        if self.witnesses.iter().any(|e| e.is_subset(&w)) {
            return;
        }
        self.witnesses.retain(|e| !w.is_subset(e));
        self.witnesses.insert(w);
    }
}

impl Semiring for WhyProv {
    const NAME: &'static str = "why-provenance";
    const ADD_IDEMPOTENT: bool = true;

    fn zero() -> Self {
        WhyProv::default()
    }

    fn one() -> Self {
        let mut s = BTreeSet::new();
        s.insert(Witness::new());
        WhyProv { witnesses: s }
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.clone();
        for w in &rhs.witnesses {
            out.insert_minimal(w.clone());
        }
        out
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = WhyProv::default();
        for a in &self.witnesses {
            for b in &rhs.witnesses {
                out.insert_minimal(a.union(b).copied().collect());
            }
        }
        out
    }

    fn is_zero(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl AddIdempotent for WhyProv {}
impl Absorptive for WhyProv {}
impl MulIdempotent for WhyProv {}
impl Positive for WhyProv {}

impl NaturallyOrdered for WhyProv {
    fn nat_le(&self, rhs: &Self) -> bool {
        self.add(rhs) == *rhs
    }
}

impl Stable for WhyProv {
    fn stability_index() -> usize {
        0
    }
}

impl std::fmt::Display for WhyProv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, id) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "x{id}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn laws_and_chom_membership() {
        let vals = [
            WhyProv::zero(),
            WhyProv::one(),
            WhyProv::fact(1),
            WhyProv::fact(1).mul(&WhyProv::fact(2)),
            WhyProv::fact(1).add(&WhyProv::fact(2)),
        ];
        for a in &vals {
            for b in &vals {
                for c in &vals {
                    properties::check_semiring_laws(a, b, c).unwrap();
                }
            }
            properties::check_absorptive(a).unwrap();
            properties::check_mul_idempotent(a).unwrap();
        }
    }

    #[test]
    fn absorption_keeps_minimal_witnesses() {
        // {1} absorbs {1,2}: a derivation needing a superset is redundant.
        let small = WhyProv::fact(1);
        let large = WhyProv::fact(1).mul(&WhyProv::fact(2));
        let sum = small.add(&large);
        assert_eq!(sum, small);
    }

    #[test]
    fn distinct_minimal_witnesses_coexist() {
        let a = WhyProv::fact(1).mul(&WhyProv::fact(2));
        let b = WhyProv::fact(3);
        assert_eq!(a.add(&b).len(), 2);
    }
}
