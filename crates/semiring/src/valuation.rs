//! Valuations: typed assignments of semiring values to provenance
//! variables (paper §2.4's `ν : X → S`, with `FactId = VarId`).
//!
//! A [`Valuation`] replaces the bare `&dyn Fn(VarId) -> S` plumbing that
//! used to thread through evaluation, circuits, and verification. Named
//! valuations make the common interpretations first-class and inferrable:
//!
//! * [`AllOnes`] — every fact ↦ `1` (Boolean derivability, iteration
//!   probes);
//! * [`UnitWeights`] — every fact ↦ one fixed value (e.g.
//!   `Tropical::new(1)` for hop counting);
//! * [`FromEdgeWeights`] — graph workloads: the i-th edge fact ↦ its
//!   weight;
//! * [`PerFact`] — an explicit per-fact map with a default;
//! * [`VarTags`] — every fact ↦ its own [`Sorp`] variable (the §2.4
//!   provenance-polynomial tagging);
//! * [`from_fn`] — wrap an arbitrary closure.
//!
//! The same interpretation question — "what is this fact worth?" — takes
//! a different valuation per workload, with the semiring inferred from
//! the value type:
//!
//! ```
//! use semiring::valuation::{from_fn, AllOnes, UnitWeights, Valuation};
//! use semiring::{Bool, Semiring, Sorp, Tropical, VarTags};
//!
//! // Boolean derivability: every fact is free.
//! let derivable: Bool = AllOnes.value(7);
//! assert_eq!(derivable, Bool(true));
//!
//! // Hop counting: every fact costs one step.
//! let hops = UnitWeights::new(Tropical::new(1));
//! assert_eq!(hops.value(7), Tropical::new(1));
//!
//! // Weighted edges: derive the cost from the fact id.
//! let weighted = from_fn(|fact| Tropical::new(fact as u64 % 4));
//! assert_eq!(weighted.value(7), Tropical::new(3));
//!
//! // Provenance: every fact is its own indeterminate x_7.
//! let tagged: Sorp = VarTags.value(7);
//! assert_eq!(tagged, Sorp::var(7));
//! ```

use std::collections::HashMap;

use crate::polynomial::{Sorp, VarId};
use crate::traits::Semiring;

/// An assignment of semiring values to provenance variables.
pub trait Valuation<S: Semiring> {
    /// The value of variable (fact) `var`.
    fn value(&self, var: VarId) -> S;
}

impl<S: Semiring, V: Valuation<S> + ?Sized> Valuation<S> for &V {
    fn value(&self, var: VarId) -> S {
        (**self).value(var)
    }
}

/// Every fact gets the multiplicative identity `1`.
///
/// Over [`crate::Bool`] this is plain derivability; over any semiring it is
/// the "all facts free" interpretation used by the boundedness probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllOnes;

impl<S: Semiring> Valuation<S> for AllOnes {
    fn value(&self, _: VarId) -> S {
        S::one()
    }
}

/// Every fact gets the same fixed value — the "unit weight" interpretation
/// (e.g. `UnitWeights::new(Tropical::new(1))` makes tropical evaluation
/// count hops).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitWeights<S> {
    unit: S,
}

impl<S: Semiring> UnitWeights<S> {
    /// The valuation mapping every fact to `unit`.
    pub fn new(unit: S) -> Self {
        UnitWeights { unit }
    }
}

impl<S: Semiring> Valuation<S> for UnitWeights<S> {
    fn value(&self, _: VarId) -> S {
        self.unit.clone()
    }
}

/// Weights aligned with a graph's edge list: `edge_facts[i] ↦ weights[i]`.
///
/// Facts outside the edge list (seeded unary facts, for instance) evaluate
/// to the default, which is `1` unless overridden — so they do not disturb
/// products.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FromEdgeWeights<S> {
    by_var: HashMap<VarId, S>,
    default: S,
}

impl<S: Semiring> FromEdgeWeights<S> {
    /// Pair the i-th edge fact with the i-th weight (the slices must be
    /// aligned, as produced by `Database::from_graph`).
    pub fn new(edge_facts: &[VarId], weights: &[S]) -> Self {
        assert_eq!(
            edge_facts.len(),
            weights.len(),
            "edge fact ids and weights must align"
        );
        FromEdgeWeights {
            by_var: edge_facts
                .iter()
                .copied()
                .zip(weights.iter().cloned())
                .collect(),
            default: S::one(),
        }
    }

    /// Derive weights from edge indices: `edge_facts[i] ↦ f(i)`.
    pub fn from_fn(edge_facts: &[VarId], f: impl Fn(usize) -> S) -> Self {
        let weights: Vec<S> = (0..edge_facts.len()).map(f).collect();
        Self::new(edge_facts, &weights)
    }

    /// Override the value of facts outside the edge list.
    pub fn with_default(mut self, default: S) -> Self {
        self.default = default;
        self
    }
}

impl<S: Semiring> Valuation<S> for FromEdgeWeights<S> {
    fn value(&self, var: VarId) -> S {
        self.by_var.get(&var).unwrap_or(&self.default).clone()
    }
}

/// An explicit per-fact map with a default for unmapped facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerFact<S> {
    map: HashMap<VarId, S>,
    default: S,
}

impl<S: Semiring> PerFact<S> {
    /// An empty map defaulting unmapped facts to `1`.
    pub fn new() -> Self {
        Self::with_default(S::one())
    }

    /// An empty map with the given default.
    pub fn with_default(default: S) -> Self {
        PerFact {
            map: HashMap::new(),
            default,
        }
    }

    /// Set the value of one fact (builder style).
    pub fn set(mut self, var: VarId, value: S) -> Self {
        self.map.insert(var, value);
        self
    }

    /// Set the value of one fact in place.
    pub fn insert(&mut self, var: VarId, value: S) {
        self.map.insert(var, value);
    }
}

impl<S: Semiring> Default for PerFact<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Semiring> Valuation<S> for PerFact<S> {
    fn value(&self, var: VarId) -> S {
        self.map.get(&var).unwrap_or(&self.default).clone()
    }
}

/// Every fact tagged by its own polynomial variable — evaluation under
/// `VarTags` yields the canonical provenance polynomial of §2.4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VarTags;

impl Valuation<Sorp> for VarTags {
    fn value(&self, var: VarId) -> Sorp {
        Sorp::var(var)
    }
}

/// A closure as a valuation (see [`from_fn`]).
#[derive(Clone, Copy, Debug)]
pub struct FnVal<F>(pub F);

impl<S: Semiring, F: Fn(VarId) -> S> Valuation<S> for FnVal<F> {
    fn value(&self, var: VarId) -> S {
        (self.0)(var)
    }
}

/// Wrap an arbitrary `Fn(VarId) -> S` as a [`Valuation`].
pub fn from_fn<S: Semiring, F: Fn(VarId) -> S>(f: F) -> FnVal<F> {
    FnVal(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tropical::Tropical;
    use crate::Semiring;

    #[test]
    fn named_valuations_behave() {
        let ones: Tropical = AllOnes.value(3);
        assert_eq!(ones, Tropical::one());
        assert_eq!(
            UnitWeights::new(Tropical::new(2)).value(9),
            Tropical::new(2)
        );
        let w = FromEdgeWeights::new(&[4, 7], &[Tropical::new(10), Tropical::new(20)]);
        assert_eq!(w.value(7), Tropical::new(20));
        assert_eq!(w.value(0), Tropical::one());
        let p = PerFact::with_default(Tropical::zero()).set(1, Tropical::new(5));
        assert_eq!(p.value(1), Tropical::new(5));
        assert_eq!(p.value(2), Tropical::zero());
        assert_eq!(VarTags.value(6), Sorp::var(6));
        assert_eq!(
            from_fn(|v| Tropical::new(v as u64)).value(8),
            Tropical::new(8)
        );
    }

    #[test]
    fn references_are_valuations_too() {
        fn total<V: Valuation<Tropical>>(v: &V) -> Tropical {
            v.value(0).mul(&v.value(1))
        }
        assert_eq!(total(&UnitWeights::new(Tropical::new(3))), Tropical::new(6));
    }
}
