//! Runtime checkers for the algebraic laws, shared by unit tests and
//! proptest suites across the workspace.
//!
//! Each checker returns `Err` with a human-readable description of the first
//! violated law, so property-test failures point directly at the broken
//! axiom.

use crate::traits::{AddIdempotent, Semiring};

/// Check all commutative-semiring laws on a triple of values.
pub fn check_semiring_laws<S: Semiring>(a: &S, b: &S, c: &S) -> Result<(), String> {
    let zero = S::zero();
    let one = S::one();

    let chk = |cond: bool, law: &str| -> Result<(), String> {
        if cond {
            Ok(())
        } else {
            Err(format!("{} violated: a={a:?}, b={b:?}, c={c:?}", law))
        }
    };

    chk(a.add(&b.add(c)).sr_eq(&a.add(b).add(c)), "⊕-associativity")?;
    chk(a.add(b).sr_eq(&b.add(a)), "⊕-commutativity")?;
    chk(a.add(&zero).sr_eq(a), "⊕-identity")?;
    chk(a.mul(&b.mul(c)).sr_eq(&a.mul(b).mul(c)), "⊗-associativity")?;
    chk(a.mul(b).sr_eq(&b.mul(a)), "⊗-commutativity")?;
    chk(a.mul(&one).sr_eq(a), "⊗-identity")?;
    chk(
        a.mul(&b.add(c)).sr_eq(&a.mul(b).add(&a.mul(c))),
        "distributivity",
    )?;
    chk(a.mul(&zero).sr_eq(&zero), "0-annihilation")?;
    Ok(())
}

/// Check `x ⊕ x = x`.
pub fn check_add_idempotent<S: Semiring>(x: &S) -> Result<(), String> {
    if x.add(x).sr_eq(x) {
        Ok(())
    } else {
        Err(format!("⊕-idempotence violated: x={x:?}"))
    }
}

/// Check `1 ⊕ x = 1` (absorption / 0-stability).
pub fn check_absorptive<S: Semiring>(x: &S) -> Result<(), String> {
    if S::one().add(x).sr_eq(&S::one()) {
        Ok(())
    } else {
        Err(format!("absorption violated: 1 ⊕ {x:?} ≠ 1"))
    }
}

/// Check `x ⊗ x = x`.
pub fn check_mul_idempotent<S: Semiring>(x: &S) -> Result<(), String> {
    if x.mul(x).sr_eq(x) {
        Ok(())
    } else {
        Err(format!("⊗-idempotence violated: x={x:?}"))
    }
}

/// Check the p-stability identity at index `p`:
/// `1 ⊕ u ⊕ … ⊕ u^p = 1 ⊕ u ⊕ … ⊕ u^{p+1}`.
pub fn check_stability_at<S: Semiring>(u: &S, p: usize) -> Result<(), String> {
    let mut star_p = S::one();
    let mut pw = S::one();
    for _ in 0..p {
        pw.mul_assign(u);
        star_p.add_assign(&pw);
    }
    let star_p1 = star_p.add(&pw.mul(u));
    if star_p.sr_eq(&star_p1) {
        Ok(())
    } else {
        Err(format!("{p}-stability violated: u={u:?}"))
    }
}

/// Check that the idempotent order `a ≤ b ⇔ a ⊕ b = b` is a partial order on
/// the given sample (reflexive, antisymmetric up to `sr_eq`, transitive).
pub fn check_idem_partial_order<S: AddIdempotent>(sample: &[S]) -> Result<(), String> {
    for a in sample {
        if !a.idem_le(a) {
            return Err(format!("reflexivity violated: {a:?}"));
        }
    }
    for a in sample {
        for b in sample {
            if a.idem_le(b) && b.idem_le(a) && !a.sr_eq(b) {
                return Err(format!("antisymmetry violated: {a:?}, {b:?}"));
            }
            for c in sample {
                if a.idem_le(b) && b.idem_le(c) && !a.idem_le(c) {
                    return Err(format!("transitivity violated: {a:?}, {b:?}, {c:?}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn detects_broken_absorption() {
        assert!(check_absorptive(&TropicalZ::new(-1)).is_err());
        assert!(check_absorptive(&Tropical::new(1)).is_ok());
    }

    #[test]
    fn detects_broken_idempotence() {
        assert!(check_add_idempotent(&Counting(2)).is_err());
        assert!(check_mul_idempotent(&Tropical::new(2)).is_err());
    }

    #[test]
    fn stability_of_absorptive_is_zero() {
        assert!(check_stability_at(&Tropical::new(9), 0).is_ok());
        // Counting is not p-stable for small p with u=2.
        assert!(check_stability_at(&Counting(2), 3).is_err());
    }

    #[test]
    fn add_idempotent_flag_mirrors_marker_trait() {
        // `Semiring::ADD_IDEMPOTENT` is the const mirror of the
        // `AddIdempotent` marker (semi-naive evaluation branches on it);
        // keep the two in sync for every semiring in the crate.
        fn marker_flag<S: AddIdempotent>() -> bool {
            S::ADD_IDEMPOTENT
        }
        assert!(marker_flag::<Bool>());
        assert!(marker_flag::<Tropical>());
        assert!(marker_flag::<TropicalZ>());
        assert!(marker_flag::<TropK<3>>());
        assert!(marker_flag::<Fuzzy>());
        assert!(marker_flag::<Bottleneck>());
        assert!(marker_flag::<Lukasiewicz>());
        assert!(marker_flag::<Viterbi>());
        assert!(marker_flag::<WhyProv>());
        assert!(marker_flag::<Sorp>());
        // The one non-idempotent semiring must keep the default (the
        // whole point is asserting the constant, hence the allow).
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(!Counting::ADD_IDEMPOTENT);
        }
    }

    #[test]
    fn idem_order_on_tropical_sample() {
        let sample = [
            Tropical::zero(),
            Tropical::one(),
            Tropical::new(3),
            Tropical::new(9),
        ];
        check_idem_partial_order(&sample).unwrap();
    }
}
