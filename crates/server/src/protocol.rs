//! The line-oriented wire protocol: request parsing and reply framing.
//!
//! # Grammar
//!
//! Requests are single UTF-8 lines (LF- or CRLF-terminated, at most
//! [`MAX_LINE`] bytes), tokenized on ASCII whitespace:
//!
//! ```text
//! SESSION OPEN                      → OK SESSION <id>
//! SESSION ATTACH <id>               → OK SESSION <id>
//! SESSION CLOSE                     → OK CLOSED <id>
//! LOAD PROGRAM                      → (lines of Datalog text …) END → OK PROGRAM <rules>
//! LOAD FACTS                        → (lines `Pred c1 c2 …` …) END → OK FACTS <n>
//! INSERT <pred> <c…>                → OK INSERTED <n> EPOCH <e>   (incremental write path)
//! RETRACT <pred> <c…>               → OK RETRACTED <n> EPOCH <e>  (incremental write path)
//! QUERY <pred> <c…> SEMIRING <name> [VALUATION <spec>] [PIPELINE <name>]
//!                                   → OK VALUE <rendered>
//! BATCH                             → (QUERY-shaped lines …) END
//!                                   → OK BATCH <n>, then n lines `<i> OK <v>` | `<i> ERR <code> <msg>`
//! METRICS                           → OK METRICS <n>, then n lines of pipeline_metrics_v1 JSON
//! PING                              → OK PONG
//! SHUTDOWN                          → OK SHUTDOWN, server drains and exits
//! QUIT                              → OK BYE, connection closes
//! ```
//!
//! Every failure is a single `ERR <CODE> <message>` line; the connection
//! always survives a protocol error (the acceptance bar for the serving
//! layer). Multi-line replies are count-prefixed so clients never sniff.
//! The one exception is admission: when the server's bounded pending
//! queue is full, a *new* connection is answered with a single
//! `ERR BUSY <retry-hint>` frame and closed before any command is read —
//! established connections are unaffected.
//!
//! Semiring names: `bool`, `tropical`, `counting`, `fuzzy`, `bottleneck`.
//! Valuation specs: `ones` (the default; every fact ↦ 1), `unit:<w>`
//! (every fact ↦ the same weight `w`; rejected for `bool`, whose only
//! usable unit is its 1), and `perfact` — individual fact weights follow
//! as `WEIGHT <pred> <c…> <w>` lines, terminated by `END` for a bare
//! `QUERY` or attached to the preceding item inside a `BATCH` block;
//! unlisted facts default to the semiring's 1.
//!
//! The optional `PIPELINE` clause picks the grounding/evaluation route
//! per query: `materialized` (the default — the session's cached full
//! grounding), `fused` (streaming ground+eval, nothing materialized or
//! cached), or `magic` (demand-driven point query; goals the magic
//! rewrite does not cover fall back to `materialized` transparently).
//! All three return bit-identical values.
//!
//! `INSERT`/`RETRACT` are the incremental write path: unlike `LOAD FACTS`
//! (which rebuilds the engine and re-grounds), they maintain the session's
//! cached grounding in place via `Engine::insert_facts` /
//! `Engine::retract_facts` and atomically swap in the next snapshot —
//! concurrent readers keep the old one. `<n>` is the number of facts
//! actually changed (0 for a duplicate insert), `<e>` the session's write
//! epoch after the command.

use std::fmt;

use provcirc::Pipeline;

/// Maximum accepted request-line length in bytes. Longer lines are
/// discarded up to the next newline and answered with `ERR TOOLONG` —
/// the connection survives.
pub const MAX_LINE: usize = 64 * 1024;

/// Machine-readable error codes carried on `ERR` lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The verb is not part of the protocol.
    UnknownCommand,
    /// The command needs an open session and none is attached.
    NoSession,
    /// `SESSION ATTACH` named a session that does not exist (or was closed).
    BadSession,
    /// A request line exceeded [`MAX_LINE`] bytes.
    TooLong,
    /// The session has no program loaded yet.
    NoProgram,
    /// Program text or fact lines failed to parse / build.
    Parse,
    /// Unknown semiring name.
    Semiring,
    /// Malformed or unsupported valuation spec.
    Valuation,
    /// The query itself is malformed (unknown predicate, arity, syntax).
    Query,
    /// Evaluation failed (e.g. divergence within the session budget).
    Eval,
    /// Unexpected end of a payload block (connection closed before `END`).
    Payload,
    /// The server's pending-connection queue is full; the connection was
    /// rejected with a single frame before any command was read. Clients
    /// should back off and retry.
    Busy,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::UnknownCommand => "UNKNOWN-COMMAND",
            ErrCode::NoSession => "NO-SESSION",
            ErrCode::BadSession => "BAD-SESSION",
            ErrCode::TooLong => "TOOLONG",
            ErrCode::NoProgram => "NO-PROGRAM",
            ErrCode::Parse => "PARSE",
            ErrCode::Semiring => "SEMIRING",
            ErrCode::Valuation => "VALUATION",
            ErrCode::Query => "QUERY",
            ErrCode::Eval => "EVAL",
            ErrCode::Payload => "PAYLOAD",
            ErrCode::Busy => "BUSY",
        }
    }
}

/// A protocol-level failure: code + single-line human message, rendered
/// as `ERR <CODE> <message>`.
#[derive(Clone, Debug)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrCode,
    /// One-line diagnostic (newlines are squashed at render time).
    pub message: String,
}

impl WireError {
    /// Build an error reply.
    pub fn new(code: ErrCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Render the `ERR` line (without trailing newline). Embedded
    /// newlines are flattened so the reply stays a single frame.
    pub fn render(&self) -> String {
        let msg = self.message.replace(['\n', '\r'], " ");
        format!("ERR {} {}", self.code.as_str(), msg.trim())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The semirings the wire protocol can evaluate over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireSemiring {
    /// `bool` — derivability.
    Bool,
    /// `tropical` — min-plus shortest proofs.
    Tropical,
    /// `counting` — derivation counting (naive fallback; may diverge).
    Counting,
    /// `fuzzy` — max-min truth degrees on `[0, 1]`.
    Fuzzy,
    /// `bottleneck` — max-min capacities.
    Bottleneck,
}

impl WireSemiring {
    /// Resolve a wire name (case-insensitive).
    pub fn parse(name: &str) -> Result<Self, WireError> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Ok(WireSemiring::Bool),
            "tropical" | "trop" => Ok(WireSemiring::Tropical),
            "counting" | "count" => Ok(WireSemiring::Counting),
            "fuzzy" => Ok(WireSemiring::Fuzzy),
            "bottleneck" => Ok(WireSemiring::Bottleneck),
            other => Err(WireError::new(
                ErrCode::Semiring,
                format!("unknown semiring {other:?} (bool|tropical|counting|fuzzy|bottleneck)"),
            )),
        }
    }

    /// The canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            WireSemiring::Bool => "bool",
            WireSemiring::Tropical => "tropical",
            WireSemiring::Counting => "counting",
            WireSemiring::Fuzzy => "fuzzy",
            WireSemiring::Bottleneck => "bottleneck",
        }
    }
}

/// One `WEIGHT` line: an EDB fact and its weight.
#[derive(Clone, Debug, PartialEq)]
pub struct WireWeight {
    /// Fact predicate name.
    pub pred: String,
    /// Fact constants.
    pub args: Vec<String>,
    /// The weight, interpreted per semiring at evaluation time.
    pub weight: f64,
}

/// Parse one `WEIGHT <pred> <c…> <w>` payload line (the `WEIGHT` keyword
/// already stripped or still leading — both accepted).
pub fn parse_weight_line(line: &str) -> Result<WireWeight, WireError> {
    let mut toks: Vec<&str> = line.split_ascii_whitespace().collect();
    if toks
        .first()
        .is_some_and(|t| t.eq_ignore_ascii_case("WEIGHT"))
    {
        toks.remove(0);
    }
    if toks.len() < 3 {
        return Err(WireError::new(
            ErrCode::Valuation,
            "usage: WEIGHT <pred> <c…> <w>",
        ));
    }
    let w_tok = toks.pop().expect("len checked");
    let weight: f64 = w_tok.parse().map_err(|_| {
        WireError::new(
            ErrCode::Valuation,
            format!("bad weight {w_tok:?} (expected a number)"),
        )
    })?;
    if !weight.is_finite() || weight < 0.0 {
        return Err(WireError::new(
            ErrCode::Valuation,
            "fact weight must be finite and non-negative",
        ));
    }
    Ok(WireWeight {
        pred: toks[0].to_owned(),
        args: toks[1..].iter().map(|s| (*s).to_owned()).collect(),
        weight,
    })
}

/// A parsed valuation spec: `ones`, `unit:<weight>`, or `perfact`.
#[derive(Clone, Debug, PartialEq)]
pub enum WireValuation {
    /// Every fact ↦ the semiring's 1 (the default).
    Ones,
    /// Every fact ↦ the same weight, parsed per semiring.
    Unit(f64),
    /// Listed facts ↦ their own weight, unlisted facts ↦ the semiring's 1.
    /// Parsed empty from the `perfact` token; the `WEIGHT` lines that
    /// follow the command fill it in.
    PerFact(Vec<WireWeight>),
}

impl WireValuation {
    /// Parse a `VALUATION` spec token.
    pub fn parse(spec: &str) -> Result<Self, WireError> {
        let lower = spec.to_ascii_lowercase();
        if lower == "ones" {
            return Ok(WireValuation::Ones);
        }
        if lower == "perfact" {
            return Ok(WireValuation::PerFact(Vec::new()));
        }
        if let Some(w) = lower.strip_prefix("unit:") {
            let v: f64 = w.parse().map_err(|_| {
                WireError::new(
                    ErrCode::Valuation,
                    format!("bad unit weight {w:?} (expected a number)"),
                )
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(WireError::new(
                    ErrCode::Valuation,
                    "unit weight must be finite and non-negative",
                ));
            }
            return Ok(WireValuation::Unit(v));
        }
        Err(WireError::new(
            ErrCode::Valuation,
            format!("unknown valuation {spec:?} (ones | unit:<w> | perfact)"),
        ))
    }
}

/// One `(goal, semiring, valuation, pipeline)` tuple — a `QUERY` line's
/// payload, also the element type of a `BATCH`.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Goal predicate name.
    pub pred: String,
    /// Goal constants.
    pub args: Vec<String>,
    /// Semiring to evaluate over.
    pub semiring: WireSemiring,
    /// Valuation assigning fact weights.
    pub valuation: WireValuation,
    /// Grounding/evaluation pipeline to route through
    /// (`materialized` — the default — | `fused` | `magic`).
    pub pipeline: Pipeline,
}

impl QuerySpec {
    /// Parse the tokens after the `QUERY` verb:
    /// `<pred> <c…> SEMIRING <name> [VALUATION <spec>] [PIPELINE <name>]`
    /// (the optional clauses may appear in either order, each at most
    /// once).
    pub fn parse(tokens: &[&str]) -> Result<Self, WireError> {
        let sem_pos = tokens
            .iter()
            .position(|t| t.eq_ignore_ascii_case("SEMIRING"))
            .ok_or_else(|| WireError::new(ErrCode::Query, "missing SEMIRING clause in query"))?;
        if sem_pos == 0 {
            return Err(WireError::new(ErrCode::Query, "missing goal predicate"));
        }
        let pred = tokens[0].to_owned();
        let args: Vec<String> = tokens[1..sem_pos].iter().map(|s| (*s).to_owned()).collect();
        let rest = &tokens[sem_pos + 1..];
        let Some((sem_name, mut rest)) = rest.split_first() else {
            return Err(WireError::new(ErrCode::Query, "SEMIRING needs a name"));
        };
        let semiring = WireSemiring::parse(sem_name)?;
        let mut valuation: Option<WireValuation> = None;
        let mut pipeline: Option<Pipeline> = None;
        while let Some((kw, tail)) = rest.split_first() {
            let Some((spec, tail)) = tail.split_first() else {
                return Err(WireError::new(
                    ErrCode::Query,
                    format!("{} needs a value", kw.to_ascii_uppercase()),
                ));
            };
            if kw.eq_ignore_ascii_case("VALUATION") {
                if valuation.is_some() {
                    return Err(WireError::new(ErrCode::Query, "duplicate VALUATION clause"));
                }
                valuation = Some(WireValuation::parse(spec)?);
            } else if kw.eq_ignore_ascii_case("PIPELINE") {
                if pipeline.is_some() {
                    return Err(WireError::new(ErrCode::Query, "duplicate PIPELINE clause"));
                }
                pipeline = Some(Pipeline::parse(spec).ok_or_else(|| {
                    WireError::new(
                        ErrCode::Query,
                        format!("unknown pipeline {spec:?} (materialized | fused | magic)"),
                    )
                })?);
            } else {
                return Err(WireError::new(
                    ErrCode::Query,
                    "trailing tokens (expected VALUATION <spec> or PIPELINE <name>)",
                ));
            }
            rest = tail;
        }
        let valuation = valuation.unwrap_or(WireValuation::Ones);
        if matches!(semiring, WireSemiring::Bool) && !matches!(valuation, WireValuation::Ones) {
            return Err(WireError::new(
                ErrCode::Valuation,
                "bool only supports the ones valuation",
            ));
        }
        Ok(QuerySpec {
            pred,
            args,
            semiring,
            valuation,
            pipeline: pipeline.unwrap_or_default(),
        })
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Command {
    /// `SESSION OPEN`
    SessionOpen,
    /// `SESSION ATTACH <id>`
    SessionAttach(u64),
    /// `SESSION CLOSE`
    SessionClose,
    /// `LOAD PROGRAM` — payload lines follow until `END`.
    LoadProgram,
    /// `LOAD FACTS` — payload lines follow until `END`.
    LoadFacts,
    /// `INSERT <pred> <c…>` — incremental single-fact insert.
    Insert(String, Vec<String>),
    /// `RETRACT <pred> <c…>` — incremental single-fact retraction.
    Retract(String, Vec<String>),
    /// `QUERY …`
    Query(QuerySpec),
    /// `BATCH` — QUERY-shaped payload lines follow until `END`.
    Batch,
    /// `METRICS`
    Metrics,
    /// `PING`
    Ping,
    /// `SHUTDOWN`
    Shutdown,
    /// `QUIT`
    Quit,
}

/// Parse one request line (already stripped of the newline).
pub fn parse_command(line: &str) -> Result<Command, WireError> {
    let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err(WireError::new(ErrCode::UnknownCommand, "empty command"));
    };
    match verb.to_ascii_uppercase().as_str() {
        "SESSION" => match rest {
            [sub] if sub.eq_ignore_ascii_case("OPEN") => Ok(Command::SessionOpen),
            [sub] if sub.eq_ignore_ascii_case("CLOSE") => Ok(Command::SessionClose),
            [sub, id] if sub.eq_ignore_ascii_case("ATTACH") => id
                .parse::<u64>()
                .map(Command::SessionAttach)
                .map_err(|_| WireError::new(ErrCode::BadSession, format!("bad session id {id:?}"))),
            _ => Err(WireError::new(
                ErrCode::UnknownCommand,
                "usage: SESSION OPEN | SESSION ATTACH <id> | SESSION CLOSE",
            )),
        },
        "LOAD" => match rest {
            [sub] if sub.eq_ignore_ascii_case("PROGRAM") => Ok(Command::LoadProgram),
            [sub] if sub.eq_ignore_ascii_case("FACTS") => Ok(Command::LoadFacts),
            _ => Err(WireError::new(
                ErrCode::UnknownCommand,
                "usage: LOAD PROGRAM | LOAD FACTS",
            )),
        },
        "INSERT" | "RETRACT" => {
            let Some((pred, args)) = rest.split_first() else {
                return Err(WireError::new(
                    ErrCode::Query,
                    format!("usage: {} <pred> <c…>", verb.to_ascii_uppercase()),
                ));
            };
            if args.is_empty() {
                return Err(WireError::new(
                    ErrCode::Query,
                    format!("fact {pred:?} has no constants"),
                ));
            }
            let pred = (*pred).to_owned();
            let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
            if verb.eq_ignore_ascii_case("INSERT") {
                Ok(Command::Insert(pred, args))
            } else {
                Ok(Command::Retract(pred, args))
            }
        }
        "QUERY" => QuerySpec::parse(rest).map(Command::Query),
        "BATCH" if rest.is_empty() => Ok(Command::Batch),
        "METRICS" if rest.is_empty() => Ok(Command::Metrics),
        "PING" if rest.is_empty() => Ok(Command::Ping),
        "SHUTDOWN" if rest.is_empty() => Ok(Command::Shutdown),
        "QUIT" if rest.is_empty() => Ok(Command::Quit),
        other => Err(WireError::new(
            ErrCode::UnknownCommand,
            format!("unknown command {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_command_set() {
        assert!(matches!(
            parse_command("SESSION OPEN"),
            Ok(Command::SessionOpen)
        ));
        assert!(matches!(
            parse_command("session attach 42"),
            Ok(Command::SessionAttach(42))
        ));
        assert!(matches!(
            parse_command("SESSION CLOSE"),
            Ok(Command::SessionClose)
        ));
        assert!(matches!(
            parse_command("LOAD PROGRAM"),
            Ok(Command::LoadProgram)
        ));
        assert!(matches!(
            parse_command("LOAD FACTS"),
            Ok(Command::LoadFacts)
        ));
        assert!(matches!(parse_command("BATCH"), Ok(Command::Batch)));
        assert!(matches!(parse_command("METRICS"), Ok(Command::Metrics)));
        assert!(matches!(parse_command("PING"), Ok(Command::Ping)));
        assert!(matches!(parse_command("SHUTDOWN"), Ok(Command::Shutdown)));
        assert!(matches!(parse_command("QUIT"), Ok(Command::Quit)));
    }

    #[test]
    fn parses_query_with_and_without_valuation() {
        let q = match parse_command("QUERY T v0 v4 SEMIRING tropical VALUATION unit:1") {
            Ok(Command::Query(q)) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.pred, "T");
        assert_eq!(q.args, vec!["v0", "v4"]);
        assert_eq!(q.semiring, WireSemiring::Tropical);
        assert_eq!(q.valuation, WireValuation::Unit(1.0));

        let q = match parse_command("QUERY T v0 v4 SEMIRING bool") {
            Ok(Command::Query(q)) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.valuation, WireValuation::Ones);
    }

    #[test]
    fn rejects_malformed_queries_with_codes() {
        let err = |s: &str| parse_command(s).unwrap_err().code;
        assert_eq!(err("QUERY T v0 v4"), ErrCode::Query);
        assert_eq!(err("QUERY SEMIRING bool"), ErrCode::Query);
        assert_eq!(err("QUERY T v0 SEMIRING madeup"), ErrCode::Semiring);
        assert_eq!(
            err("QUERY T v0 SEMIRING bool VALUATION unit:2"),
            ErrCode::Valuation
        );
        assert_eq!(
            err("QUERY T v0 SEMIRING tropical VALUATION unit:NaN"),
            ErrCode::Valuation
        );
        assert_eq!(err("FROBNICATE"), ErrCode::UnknownCommand);
        assert_eq!(err(""), ErrCode::UnknownCommand);
        assert_eq!(err("SESSION ATTACH xyz"), ErrCode::BadSession);
    }

    #[test]
    fn parses_incremental_write_verbs() {
        match parse_command("INSERT E v0 v1") {
            Ok(Command::Insert(pred, args)) => {
                assert_eq!(pred, "E");
                assert_eq!(args, vec!["v0", "v1"]);
            }
            other => panic!("{other:?}"),
        }
        match parse_command("retract E v0 v1") {
            Ok(Command::Retract(pred, args)) => {
                assert_eq!(pred, "E");
                assert_eq!(args, vec!["v0", "v1"]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_command("INSERT").unwrap_err().code, ErrCode::Query);
        assert_eq!(parse_command("RETRACT E").unwrap_err().code, ErrCode::Query);
    }

    #[test]
    fn parses_perfact_valuation_and_weight_lines() {
        let q = match parse_command("QUERY T v0 v4 SEMIRING tropical VALUATION perfact") {
            Ok(Command::Query(q)) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.valuation, WireValuation::PerFact(Vec::new()));
        // Bool still only supports ones.
        assert_eq!(
            parse_command("QUERY T v0 SEMIRING bool VALUATION perfact")
                .unwrap_err()
                .code,
            ErrCode::Valuation
        );

        let w = parse_weight_line("WEIGHT E v0 v1 3").unwrap();
        assert_eq!(w.pred, "E");
        assert_eq!(w.args, vec!["v0", "v1"]);
        assert_eq!(w.weight, 3.0);
        // The keyword is optional (items inside parsed blocks).
        assert_eq!(parse_weight_line("E v0 v1 0.5").unwrap().weight, 0.5);
        assert_eq!(
            parse_weight_line("WEIGHT E v0").unwrap_err().code,
            ErrCode::Valuation
        );
        assert_eq!(
            parse_weight_line("WEIGHT E v0 v1 nope").unwrap_err().code,
            ErrCode::Valuation
        );
        assert_eq!(
            parse_weight_line("WEIGHT E v0 v1 -1").unwrap_err().code,
            ErrCode::Valuation
        );
    }

    #[test]
    fn parses_pipeline_clause_in_either_order() {
        let q = |s: &str| match parse_command(s) {
            Ok(Command::Query(q)) => q,
            other => panic!("{other:?}"),
        };
        // Default is materialized when the clause is absent.
        assert_eq!(
            q("QUERY T v0 v4 SEMIRING bool").pipeline,
            provcirc::Pipeline::Materialized
        );
        assert_eq!(
            q("QUERY T v0 v4 SEMIRING bool PIPELINE fused").pipeline,
            provcirc::Pipeline::Fused
        );
        // VALUATION and PIPELINE commute.
        let a = q("QUERY T v0 v4 SEMIRING tropical VALUATION unit:2 PIPELINE magic");
        let b = q("QUERY T v0 v4 SEMIRING tropical PIPELINE magic VALUATION unit:2");
        assert_eq!(a.pipeline, provcirc::Pipeline::Magic);
        assert_eq!(a.valuation, b.valuation);
        assert_eq!(a.pipeline, b.pipeline);
    }

    #[test]
    fn rejects_bad_pipeline_clauses() {
        let err = |s: &str| parse_command(s).unwrap_err().code;
        assert_eq!(
            err("QUERY T v0 SEMIRING bool PIPELINE warp"),
            ErrCode::Query
        );
        assert_eq!(err("QUERY T v0 SEMIRING bool PIPELINE"), ErrCode::Query);
        assert_eq!(
            err("QUERY T v0 SEMIRING bool PIPELINE fused PIPELINE magic"),
            ErrCode::Query
        );
        assert_eq!(
            err("QUERY T v0 SEMIRING tropical VALUATION unit:1 VALUATION unit:2"),
            ErrCode::Query
        );
    }

    #[test]
    fn err_lines_are_single_frame() {
        let e = WireError::new(ErrCode::Parse, "line 1\nline 2");
        let r = e.render();
        assert!(r.starts_with("ERR PARSE "));
        assert!(!r.contains('\n'));
    }
}
