//! A small blocking client for the wire protocol — the backing of
//! `dlc client`, the integration tests, and the serving benchmark.
//!
//! The protocol's framing makes the client a two-state machine: every
//! request gets exactly one reply line, and the two count-prefixed replies
//! (`OK BATCH <n>`, `OK METRICS <n>`) are followed by exactly `n` more
//! lines. [`Client::run_line`] implements that rule once; everything else
//! is sugar.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One reply: the status line plus any count-prefixed body lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// The first (status) line: `OK …` or `ERR <code> <msg>`.
    pub status: String,
    /// Body lines of a count-prefixed reply (batch rows, metrics JSON).
    pub body: Vec<String>,
}

impl Reply {
    /// Whether the status line starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }
}

impl Client {
    /// Connect, with a 30-second default read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Change the read timeout (`None` = wait forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one raw line (newline appended).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one reply line (newline stripped). Errors with
    /// `UnexpectedEof` when the server closed the connection.
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read one full reply, consuming the body of count-prefixed frames.
    pub fn read_reply(&mut self) -> std::io::Result<Reply> {
        let status = self.read_line()?;
        let body_lines = count_prefixed(&status);
        let mut body = Vec::with_capacity(body_lines);
        for _ in 0..body_lines {
            body.push(self.read_line()?);
        }
        Ok(Reply { status, body })
    }

    /// Send one command line and read its full reply.
    pub fn run_line(&mut self, line: &str) -> std::io::Result<Reply> {
        self.send_line(line)?;
        self.read_reply()
    }

    /// Send one command line and return just the status line — for the
    /// single-frame commands.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        Ok(self.run_line(line)?.status)
    }

    /// Send an opener (`LOAD PROGRAM`, `LOAD FACTS`, `BATCH`), its payload
    /// lines, and the closing `END`, then read the full reply.
    pub fn send_block(&mut self, opener: &str, payload: &[&str]) -> std::io::Result<Reply> {
        self.send_line(opener)?;
        for line in payload {
            self.send_line(line)?;
        }
        self.send_line("END")?;
        self.read_reply()
    }

    /// Drive a whole script of protocol lines (comments `#…` and blank
    /// lines skipped), reading one reply per *command* — payload lines
    /// between a block opener and `END` get no replies of their own.
    /// Returns the replies in command order.
    pub fn run_script(&mut self, script: &str) -> std::io::Result<Vec<Reply>> {
        let mut replies = Vec::new();
        let mut in_block = false;
        let mut pending_block = false;
        for raw in script.lines() {
            let line = raw.trim_end();
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            self.send_line(line)?;
            if in_block {
                if trimmed.eq_ignore_ascii_case("END") {
                    in_block = false;
                    replies.push(self.read_reply()?);
                }
                continue;
            }
            if is_block_opener(trimmed) {
                in_block = true;
                pending_block = true;
                continue;
            }
            replies.push(self.read_reply()?);
        }
        if in_block && pending_block {
            // Script ended mid-block: close it so the server replies.
            self.send_line("END")?;
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }
}

/// Lines opening a payload block (terminated by `END`, one reply total).
/// A `QUERY … VALUATION perfact` counts: its `WEIGHT` lines are a block.
fn is_block_opener(line: &str) -> bool {
    let upper = line.to_ascii_uppercase();
    if upper == "BATCH" || upper == "LOAD PROGRAM" || upper == "LOAD FACTS" {
        return true;
    }
    let toks: Vec<&str> = upper.split_ascii_whitespace().collect();
    toks.first() == Some(&"QUERY") && toks.windows(2).any(|w| w == ["VALUATION", "PERFACT"])
}

/// Body-line count of a count-prefixed status (`OK BATCH <n>`,
/// `OK METRICS <n>`); 0 for single-frame replies.
fn count_prefixed(status: &str) -> usize {
    let mut toks = status.split_ascii_whitespace();
    match (toks.next(), toks.next(), toks.next()) {
        (Some("OK"), Some("BATCH" | "METRICS"), Some(n)) => n.parse().unwrap_or(0),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_prefix_detection() {
        assert_eq!(count_prefixed("OK BATCH 3"), 3);
        assert_eq!(count_prefixed("OK METRICS 12"), 12);
        assert_eq!(count_prefixed("OK VALUE 4"), 0);
        assert_eq!(count_prefixed("ERR QUERY nope"), 0);
        assert_eq!(count_prefixed("OK PONG"), 0);
    }

    #[test]
    fn block_opener_detection() {
        assert!(is_block_opener("BATCH"));
        assert!(is_block_opener("load program"));
        assert!(is_block_opener("LOAD FACTS"));
        assert!(is_block_opener(
            "QUERY T v0 v1 SEMIRING tropical VALUATION perfact"
        ));
        assert!(!is_block_opener("QUERY T v0 SEMIRING bool"));
        assert!(!is_block_opener("END"));
    }
}
