//! Per-connection protocol loop: bounded line reading, command dispatch,
//! and the never-panic error path.
//!
//! Each worker thread runs [`serve_connection`] for one accepted socket at
//! a time. The loop is defensive by construction:
//!
//! - lines are read through a **bounded** reader — a line longer than
//!   [`MAX_LINE`] is drained to its newline, answered with `ERR TOOLONG`,
//!   and the connection continues;
//! - every command handler returns `Result<_, WireError>`; failures render
//!   as a single `ERR <code> <msg>` frame and never tear the connection;
//! - the worker wraps the whole loop in `catch_unwind` (see `lib.rs`), so
//!   even a bug that panics mid-command kills one connection, not the
//!   server.

use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::protocol::{
    parse_command, parse_weight_line, Command, ErrCode, WireError, WireValuation, MAX_LINE,
};
use crate::session::{Registry, Session};

/// What one poll of the line reader produced.
enum Poll {
    /// A complete line (newline and trailing `\r` stripped).
    Line(String),
    /// The peer closed the connection cleanly.
    Eof,
    /// The line (or its parse) was bad; the stream is re-framed at the
    /// next newline and the connection continues.
    Bad(WireError),
    /// The read timed out with no (or partial) data — the caller decides
    /// whether to keep waiting (checking the shutdown flag) or hang up.
    /// Partial bytes stay buffered in the reader.
    Pending,
}

/// A bounded, resumable line reader.
///
/// Reads byte-at-a-time through a `BufReader` (so the syscall count stays
/// sane) into an internal buffer that **survives read timeouts**: the
/// socket carries a short poll timeout so the worker can notice the
/// server-wide shutdown flag between bytes, and a half-received line is
/// simply resumed by the next [`poll`](LineReader::poll) call. Lines
/// longer than [`MAX_LINE`] are drained to their newline and reported as
/// [`Poll::Bad`] without unbounded buffering.
struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    overflow: bool,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            overflow: false,
        }
    }

    fn poll(&mut self) -> std::io::Result<Poll> {
        let mut byte = [0u8; 1];
        loop {
            match self.inner.read(&mut byte) {
                Ok(0) => {
                    if self.buf.is_empty() && !self.overflow {
                        return Ok(Poll::Eof);
                    }
                    // EOF mid-line: treat what we have as the final line.
                    return Ok(self.take_line());
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        return Ok(self.take_line());
                    }
                    if self.buf.len() >= MAX_LINE {
                        self.overflow = true;
                        // Keep draining to the newline; drop the excess.
                        continue;
                    }
                    self.buf.push(byte[0]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(Poll::Pending);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn take_line(&mut self) -> Poll {
        let overflow = std::mem::take(&mut self.overflow);
        let mut buf = std::mem::take(&mut self.buf);
        if overflow {
            return Poll::Bad(WireError::new(
                ErrCode::TooLong,
                format!("line exceeds {MAX_LINE} bytes"),
            ));
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        match String::from_utf8(buf) {
            Ok(s) => Poll::Line(s),
            Err(_) => Poll::Bad(WireError::new(ErrCode::UnknownCommand, "non-UTF-8 line")),
        }
    }
}

/// How often a worker wakes from a blocked read to check the shutdown
/// flag and the idle deadline. This is the socket-level timeout; the
/// user-visible idle timeout is `ServerConfig::read_timeout`.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Outcome of waiting for one line with shutdown/idle supervision.
enum NextLine {
    Line(String),
    Eof,
    Bad(WireError),
    /// The server-wide shutdown flag was set while we were idle.
    ShuttingDown,
    /// The connection sat idle past the configured read timeout.
    IdleTimeout,
}

/// Wait for the next line, waking every [`POLL_INTERVAL`] to notice a
/// server shutdown or an expired idle deadline. The deadline is per line:
/// a client must complete each line within `read_timeout` of starting to
/// wait for it.
fn next_line<R: Read>(
    reader: &mut LineReader<R>,
    shutdown: &AtomicBool,
    read_timeout: Option<Duration>,
) -> std::io::Result<NextLine> {
    let started = Instant::now();
    loop {
        match reader.poll()? {
            Poll::Line(line) => return Ok(NextLine::Line(line)),
            Poll::Eof => return Ok(NextLine::Eof),
            Poll::Bad(wire) => return Ok(NextLine::Bad(wire)),
            Poll::Pending => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(NextLine::ShuttingDown);
                }
                if let Some(limit) = read_timeout {
                    if started.elapsed() >= limit {
                        return Ok(NextLine::IdleTimeout);
                    }
                }
            }
        }
    }
}

/// Result of reading a payload block.
enum BlockRead {
    /// The payload lines (without the terminating `END`).
    Lines(Vec<String>),
    /// The block was corrupt (oversized/non-UTF-8 line, EOF before `END`):
    /// answer with this error and keep the connection.
    Wire(WireError),
    /// Shutdown or idle timeout interrupted the block: hang up.
    Close,
}

/// Read payload lines until a bare `END`. Oversized or non-UTF-8 payload
/// lines abort the block with their error (the block's data would be
/// corrupt); EOF before `END` is a `PAYLOAD` error.
fn read_block<R: Read>(
    reader: &mut LineReader<R>,
    shutdown: &AtomicBool,
    read_timeout: Option<Duration>,
) -> std::io::Result<BlockRead> {
    let mut lines = Vec::new();
    loop {
        match next_line(reader, shutdown, read_timeout)? {
            NextLine::Line(line) => {
                if line.trim().eq_ignore_ascii_case("END") {
                    return Ok(BlockRead::Lines(lines));
                }
                lines.push(line);
            }
            NextLine::Eof => {
                return Ok(BlockRead::Wire(WireError::new(
                    ErrCode::Payload,
                    "connection closed before END",
                )))
            }
            NextLine::Bad(wire) => return Ok(BlockRead::Wire(wire)),
            NextLine::ShuttingDown | NextLine::IdleTimeout => return Ok(BlockRead::Close),
        }
    }
}

/// Parse a `LOAD FACTS` payload line: `Pred c1 c2 …`.
fn parse_fact_line(line: &str) -> Result<(String, Vec<String>), WireError> {
    let mut toks = line.split_ascii_whitespace();
    let pred = toks
        .next()
        .ok_or_else(|| WireError::new(ErrCode::Parse, "empty fact line"))?;
    let args: Vec<String> = toks.map(str::to_owned).collect();
    if args.is_empty() {
        return Err(WireError::new(
            ErrCode::Parse,
            format!("fact {pred:?} has no constants"),
        ));
    }
    Ok((pred.to_owned(), args))
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Drive one accepted connection until EOF, `QUIT`, `SHUTDOWN`, a read
/// timeout, or an I/O error. Returns `Ok(true)` when the client asked the
/// whole server to shut down.
pub(crate) fn serve_connection(
    stream: TcpStream,
    registry: &Registry,
    shutdown: &Arc<AtomicBool>,
    read_timeout: Option<std::time::Duration>,
) -> std::io::Result<bool> {
    // The socket timeout is the supervision poll, NOT the user-facing idle
    // timeout: `next_line` wakes every POLL_INTERVAL to check the shutdown
    // flag, and enforces `read_timeout` as an idle deadline itself.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader::new(BufReader::new(stream));
    let mut session: Option<Arc<Session>> = None;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Graceful drain: finish nothing new once shutdown is flagged.
            return Ok(false);
        }
        let line = match next_line(&mut reader, shutdown, read_timeout)? {
            NextLine::Line(line) => line,
            NextLine::Eof | NextLine::ShuttingDown | NextLine::IdleTimeout => return Ok(false),
            NextLine::Bad(wire) => {
                write_line(&mut writer, &wire.render())?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let command = match parse_command(&line) {
            Ok(c) => c,
            Err(wire) => {
                write_line(&mut writer, &wire.render())?;
                continue;
            }
        };
        match command {
            Command::Ping => write_line(&mut writer, "OK PONG")?,
            Command::Quit => {
                write_line(&mut writer, "OK BYE")?;
                return Ok(false);
            }
            Command::Shutdown => {
                // Flag BEFORE the reply: a client that reads `OK SHUTDOWN`
                // must be able to observe the server as shutting down.
                shutdown.store(true, Ordering::SeqCst);
                write_line(&mut writer, "OK SHUTDOWN")?;
                return Ok(true);
            }
            Command::SessionOpen => {
                let s = registry.open();
                let id = s.id();
                session = Some(s);
                write_line(&mut writer, &format!("OK SESSION {id}"))?;
            }
            Command::SessionAttach(id) => match registry.attach(id) {
                Ok(s) => {
                    session = Some(s);
                    write_line(&mut writer, &format!("OK SESSION {id}"))?;
                }
                Err(wire) => write_line(&mut writer, &wire.render())?,
            },
            Command::SessionClose => match session.take() {
                Some(s) => {
                    let id = s.id();
                    match registry.close(id) {
                        Ok(()) => write_line(&mut writer, &format!("OK CLOSED {id}"))?,
                        Err(wire) => write_line(&mut writer, &wire.render())?,
                    }
                }
                None => write_line(
                    &mut writer,
                    &WireError::new(ErrCode::NoSession, "no session attached").render(),
                )?,
            },
            Command::LoadProgram => {
                let block = match read_block(&mut reader, shutdown, read_timeout)? {
                    BlockRead::Lines(lines) => lines,
                    BlockRead::Wire(wire) => {
                        write_line(&mut writer, &wire.render())?;
                        continue;
                    }
                    BlockRead::Close => return Ok(false),
                };
                match require(&session) {
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                    Ok(s) => match s.load_program(&block.join("\n")) {
                        Ok(rules) => write_line(&mut writer, &format!("OK PROGRAM {rules}"))?,
                        Err(wire) => write_line(&mut writer, &wire.render())?,
                    },
                }
            }
            Command::LoadFacts => {
                let block = match read_block(&mut reader, shutdown, read_timeout)? {
                    BlockRead::Lines(lines) => lines,
                    BlockRead::Wire(wire) => {
                        write_line(&mut writer, &wire.render())?;
                        continue;
                    }
                    BlockRead::Close => return Ok(false),
                };
                let reply = require(&session).and_then(|s| {
                    let facts = block
                        .iter()
                        .filter(|l| !l.trim().is_empty())
                        .map(|l| parse_fact_line(l))
                        .collect::<Result<Vec<_>, WireError>>()?;
                    s.load_facts(facts)
                });
                match reply {
                    Ok(n) => write_line(&mut writer, &format!("OK FACTS {n}"))?,
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                }
            }
            Command::Insert(pred, args) => {
                let reply = require(&session).and_then(|s| s.insert(&pred, &args));
                match reply {
                    Ok((n, e)) => write_line(&mut writer, &format!("OK INSERTED {n} EPOCH {e}"))?,
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                }
            }
            Command::Retract(pred, args) => {
                let reply = require(&session).and_then(|s| s.retract(&pred, &args));
                match reply {
                    Ok((n, e)) => write_line(&mut writer, &format!("OK RETRACTED {n} EPOCH {e}"))?,
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                }
            }
            Command::Query(mut spec) => {
                // `VALUATION perfact` carries its weights as a payload
                // block of `WEIGHT <pred> <c…> <w>` lines ending in `END`.
                if matches!(spec.valuation, WireValuation::PerFact(_)) {
                    let block = match read_block(&mut reader, shutdown, read_timeout)? {
                        BlockRead::Lines(lines) => lines,
                        BlockRead::Wire(wire) => {
                            write_line(&mut writer, &wire.render())?;
                            continue;
                        }
                        BlockRead::Close => return Ok(false),
                    };
                    match block
                        .iter()
                        .filter(|l| !l.trim().is_empty())
                        .map(|l| parse_weight_line(l))
                        .collect::<Result<Vec<_>, WireError>>()
                    {
                        Ok(weights) => spec.valuation = WireValuation::PerFact(weights),
                        Err(wire) => {
                            write_line(&mut writer, &wire.render())?;
                            continue;
                        }
                    }
                }
                let reply = require(&session).and_then(|s| s.query(&spec));
                match reply {
                    Ok(v) => write_line(&mut writer, &format!("OK VALUE {v}"))?,
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                }
            }
            Command::Batch => {
                let block = match read_block(&mut reader, shutdown, read_timeout)? {
                    BlockRead::Lines(lines) => lines,
                    BlockRead::Wire(wire) => {
                        write_line(&mut writer, &wire.render())?;
                        continue;
                    }
                    BlockRead::Close => return Ok(false),
                };
                // Parse every item; item-level parse failures become
                // item-level ERR rows, not a batch failure — the other
                // items still evaluate (mid-batch error acceptance case).
                let reply = require(&session).map(|s| {
                    let mut parsed: Vec<Result<crate::protocol::QuerySpec, WireError>> = Vec::new();
                    for item in block.iter().filter(|l| !l.trim().is_empty()) {
                        let toks: Vec<&str> = item.split_ascii_whitespace().collect();
                        // `WEIGHT` lines are not items: they attach to the
                        // preceding `VALUATION perfact` query.
                        if toks
                            .first()
                            .is_some_and(|t| t.eq_ignore_ascii_case("WEIGHT"))
                        {
                            let attach =
                                parse_weight_line(item).and_then(|w| match parsed.last_mut() {
                                    Some(Ok(q)) => {
                                        if let WireValuation::PerFact(ws) = &mut q.valuation {
                                            ws.push(w);
                                            return Ok(());
                                        }
                                        Err(WireError::new(
                                            ErrCode::Valuation,
                                            "WEIGHT after a non-perfact query",
                                        ))
                                    }
                                    _ => Err(WireError::new(
                                        ErrCode::Valuation,
                                        "WEIGHT line without a preceding perfact query",
                                    )),
                                });
                            if let Err(wire) = attach {
                                // Poison the item the weight belonged to
                                // (or report a stray line as its own row).
                                match parsed.last_mut() {
                                    Some(item @ Ok(_)) => *item = Err(wire),
                                    _ => parsed.push(Err(wire)),
                                }
                            }
                            continue;
                        }
                        let toks = if toks
                            .first()
                            .is_some_and(|t| t.eq_ignore_ascii_case("QUERY"))
                        {
                            &toks[1..]
                        } else {
                            &toks[..]
                        };
                        parsed.push(crate::protocol::QuerySpec::parse(toks));
                    }
                    (s, parsed)
                });
                match reply {
                    Err(wire) => write_line(&mut writer, &wire.render())?,
                    Ok((s, parsed)) => {
                        let good: Vec<crate::protocol::QuerySpec> = parsed
                            .iter()
                            .filter_map(|r| r.as_ref().ok().cloned())
                            .collect();
                        match s.batch(&good) {
                            Err(wire) => write_line(&mut writer, &wire.render())?,
                            Ok(mut results) => {
                                write_line(&mut writer, &format!("OK BATCH {}", parsed.len()))?;
                                let mut next = results.drain(..);
                                for (i, item) in parsed.iter().enumerate() {
                                    let row = match item {
                                        Err(wire) => format!("{i} {}", wire.render()),
                                        Ok(_) => match next.next() {
                                            Some(Ok(v)) => format!("{i} OK {v}"),
                                            Some(Err(wire)) => format!("{i} {}", wire.render()),
                                            None => format!(
                                                "{i} {}",
                                                WireError::new(
                                                    ErrCode::Eval,
                                                    "internal: missing batch result"
                                                )
                                                .render()
                                            ),
                                        },
                                    };
                                    write_line(&mut writer, &row)?;
                                }
                            }
                        }
                    }
                }
            }
            Command::Metrics => match require(&session) {
                Err(wire) => write_line(&mut writer, &wire.render())?,
                Ok(s) => {
                    s.touch();
                    // Admission rejects happen before any session exists,
                    // so the counter lives on the registry — fold it into
                    // the session's report at read time.
                    let mut report = s.metrics().report();
                    if let Some(slot) = report
                        .counters
                        .iter_mut()
                        .find(|(c, _)| *c == telemetry::Counter::OverloadRejections)
                    {
                        slot.1 += registry.overload_rejections();
                    }
                    let json = report.to_json();
                    let lines: Vec<&str> = json.lines().collect();
                    write_line(&mut writer, &format!("OK METRICS {}", lines.len()))?;
                    for l in lines {
                        write_line(&mut writer, l)?;
                    }
                }
            },
        }
    }
}

/// The attached session, or a `NO-SESSION` error.
fn require(session: &Option<Arc<Session>>) -> Result<Arc<Session>, WireError> {
    session
        .as_ref()
        .cloned()
        .ok_or_else(|| WireError::new(ErrCode::NoSession, "open or attach a session first"))
}
