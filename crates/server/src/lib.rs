//! Engine-as-a-service: a concurrent session server over the `provcirc`
//! pipeline.
//!
//! The paper's pitch — ground a Datalog program's provenance once, then
//! evaluate it over any semiring by swapping the valuation — only pays off
//! when the engine outlives a single process. This crate keeps
//! [`Engine`](provcirc::Engine) sessions resident behind a line-oriented
//! TCP protocol:
//!
//! - **Sessions** ([`session::Registry`]) own program text, facts, and an
//!   `Arc<EngineSnapshot>` — an immutable freeze of the cached grounding
//!   and classification. Readers clone the `Arc` and evaluate lock-free;
//!   `LOAD FACTS` rebuilds and atomically swaps it (snapshot isolation).
//! - **The wire protocol** ([`protocol`]) is plain text, one command per
//!   line, every failure a single `ERR <code> <msg>` frame that never
//!   drops the connection. `BATCH` amortizes one grounding (and one
//!   fixpoint per distinct semiring/valuation pair) across N queries.
//! - **The server** ([`Server`]) is a `std::net::TcpListener` accept loop
//!   feeding a fixed pool of `std::thread` workers — no async runtime, no
//!   dependencies. `SHUTDOWN` drains gracefully: the listener stops
//!   accepting, in-flight connections finish their current command.
//! - **Telemetry**: each session carries an always-on
//!   [`PipelineMetrics`](telemetry::PipelineMetrics) stream that survives
//!   snapshot rebuilds; `METRICS` returns the `pipeline_metrics_v1` JSON,
//!   including the serve-side counters (`sessions_opened`,
//!   `queries_served`, `batches_served`, `batch_queries`) and the
//!   [`Stage::Serve`](telemetry::Stage::Serve) span.
//!
//! ```no_run
//! use server::{Server, ServerConfig};
//! use server::client::Client;
//!
//! let handle = Server::bind(ServerConfig::default().addr("127.0.0.1:0")).unwrap();
//! let mut c = Client::connect(handle.addr()).unwrap();
//! c.roundtrip("SESSION OPEN").unwrap();
//! c.send_block("LOAD PROGRAM", &["T(X,Y) :- E(X,Y).", "T(X,Y) :- T(X,Z), E(Z,Y)."]).unwrap();
//! c.send_block("LOAD FACTS", &["E v0 v1", "E v1 v2"]).unwrap();
//! let reply = c.roundtrip("QUERY T v0 v2 SEMIRING tropical VALUATION unit:1").unwrap();
//! assert_eq!(reply, "OK VALUE 2");
//! handle.shutdown();
//! handle.wait().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod protocol;
pub mod session;

use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::session::Registry;

/// Server configuration. Start from [`ServerConfig::default`] and chain
/// setters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    addr: String,
    workers: usize,
    eval_threads: usize,
    read_timeout: Option<Duration>,
    session_ttl: Option<Duration>,
    pending_limit: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, 1 eval thread per query,
    /// 30-second idle timeout, no session eviction, 64 pending connections.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            eval_threads: 1,
            read_timeout: Some(Duration::from_secs(30)),
            session_ttl: None,
            pending_limit: 64,
        }
    }
}

impl ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (`:0` = ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker threads handling connections (the serving concurrency).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Threads each *single* fixpoint evaluation shards across (the
    /// engine's `parallelism` knob). Serving layers usually keep this at 1
    /// and scale by `workers` instead: concurrent queries already use the
    /// cores, and 1 is the exact sequential code path. See
    /// `docs/ARCHITECTURE.md` for the sizing discussion.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads.max(1);
        self
    }

    /// Per-connection idle read timeout (`None` = wait forever).
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Evict sessions idle for longer than `ttl` (`None`, the default,
    /// keeps sessions forever). Swept by the accept loop; every command a
    /// connection runs against a session counts as use. Evictions bump the
    /// `sessions_evicted` counter on the evicted session's `METRICS`
    /// stream. Wire flag: `dlc serve --session-ttl <secs>`.
    pub fn session_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Backpressure: how many accepted-but-unserved connections may wait
    /// for a worker before the accept loop starts *rejecting* new ones
    /// with a single `ERR BUSY <retry-hint>` frame instead of queueing
    /// without bound. Rejects bump the `overload_rejections` counter
    /// surfaced by `METRICS`. Minimum 1.
    pub fn pending_limit(mut self, limit: usize) -> Self {
        self.pending_limit = limit.max(1);
        self
    }
}

/// The serving subsystem: bind with [`Server::bind`], which returns a
/// [`ServerHandle`] — the server itself runs on background threads.
pub struct Server;

impl Server {
    /// Bind the listener, spawn the accept loop and the worker pool, and
    /// return a handle. The listener is non-blocking so shutdown can be
    /// observed; accepted sockets are handed to workers over a channel.
    pub fn bind(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new(config.eval_threads));
        // Bounded pending queue: accepted sockets wait here for a worker.
        // When it is full the accept loop rejects instead of queueing —
        // overload turns into fast, explicit `ERR BUSY` feedback rather
        // than unbounded memory growth and silent latency.
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(config.pending_limit);
        let rx = Arc::new(Mutex::new(rx));

        let workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let shutdown = Arc::clone(&shutdown);
                let read_timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("dlc-serve-worker-{w}"))
                    .spawn(move || loop {
                        let next = {
                            let rx = rx.lock().expect("worker receiver poisoned");
                            rx.recv_timeout(Duration::from_millis(50))
                        };
                        match next {
                            Ok(stream) => {
                                // A panicking connection handler must not
                                // take the worker (or the server) down:
                                // log-free, drop the socket, move on.
                                let registry = &registry;
                                let shutdown = &shutdown;
                                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    let _ = conn::serve_connection(
                                        stream,
                                        registry,
                                        shutdown,
                                        read_timeout,
                                    );
                                }));
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if shutdown.load(Ordering::SeqCst) {
                                    return;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            let session_ttl = config.session_ttl;
            std::thread::Builder::new()
                .name("dlc-serve-accept".to_owned())
                .spawn(move || {
                    // Sweep idle sessions at a fraction of the TTL (at
                    // least every 50ms for the short TTLs tests use).
                    let mut last_sweep = std::time::Instant::now();
                    let sweep_every =
                        session_ttl.map(|ttl| (ttl / 4).max(Duration::from_millis(50)));
                    loop {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let (Some(ttl), Some(every)) = (session_ttl, sweep_every) {
                            if last_sweep.elapsed() >= every {
                                registry.evict_idle(ttl);
                                last_sweep = std::time::Instant::now();
                            }
                        }
                        match listener.accept() {
                            Ok((stream, _peer)) => match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(mut stream)) => {
                                    // Single-frame reject, then drop the
                                    // socket: the client gets an explicit
                                    // retry signal instead of an unbounded
                                    // queue wait.
                                    registry.note_overload_rejection();
                                    let _ = stream.write_all(
                                        protocol::WireError::new(
                                            protocol::ErrCode::Busy,
                                            "pending queue full; retry after backoff",
                                        )
                                        .render()
                                        .as_bytes(),
                                    );
                                    let _ = stream.write_all(b"\n");
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            },
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            // Transient accept errors (e.g. aborted
                            // handshake) must not kill the loop.
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                    // Dropping `tx` disconnects the channel; workers drain
                    // queued sockets, then exit.
                })
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            accept: Some(accept),
            workers,
        })
    }
}

/// Handle to a running server: address, programmatic shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session registry (useful for introspection in tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Request shutdown: stop accepting, let workers drain. Equivalent to
    /// a client sending `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by handle or by wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the accept loop and every worker have exited. Call
    /// [`shutdown`](ServerHandle::shutdown) first (or send `SHUTDOWN` over
    /// the wire), otherwise this waits forever.
    pub fn wait(mut self) -> std::thread::Result<()> {
        if let Some(accept) = self.accept.take() {
            accept.join()?;
        }
        for w in self.workers.drain(..) {
            w.join()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_resolves_ephemeral_port_and_shuts_down() {
        let handle = Server::bind(ServerConfig::default().workers(2)).unwrap();
        assert_ne!(handle.addr().port(), 0);
        assert!(!handle.is_shutting_down());
        handle.shutdown();
        assert!(handle.is_shutting_down());
        handle.wait().unwrap();
    }
}
