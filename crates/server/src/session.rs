//! Server sessions: engine state, snapshot lifecycle, and query/batch
//! evaluation against frozen snapshots.
//!
//! A [`Session`] owns the mutable serving state — program text, the
//! accumulated fact list, and the current [`EngineSnapshot`] — behind one
//! mutex that is held only for *state transitions* (load, swap, handle
//! clone), never across an evaluation. Readers clone the `Arc` out and
//! evaluate lock-free; `LOAD FACTS` rebuilds a fresh engine, pre-forces
//! its caches via [`Engine::snapshot`], and swaps the `Arc` in place,
//! leaving in-flight queries on the old snapshot (they finish against a
//! consistent view and simply miss the new facts — snapshot isolation).
//!
//! The grounds-once discipline the acceptance test pins down: `LOAD
//! PROGRAM` only validates and stores text (no grounding), `LOAD FACTS`
//! grounds exactly once while building the swap-in snapshot, and every
//! subsequent `QUERY`/`BATCH` — whatever mix of semirings — reuses that
//! frozen grounding. The session's [`PipelineMetrics`] stream survives
//! rebuilds (it is handed to each new engine via
//! [`EngineBuilder::metrics_collector`]), so `METRICS` reports cumulative
//! grounding counts a client can assert on.
//!
//! [`EngineBuilder::metrics_collector`]: provcirc::EngineBuilder::metrics_collector

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use datalog::GroundedProgram;
use incremental::MaintainedFixpoint;
use provcirc::{Engine, EngineSnapshot, Pipeline};
use provcirc_error::Error;
use semiring::valuation::{AllOnes, PerFact, UnitWeights, Valuation};
use semiring::{Bool, Bottleneck, Counting, Fuzzy, Semiring, Tropical};
use telemetry::{Counter, PipelineMetrics, Recorder, Stage};

use crate::protocol::{ErrCode, QuerySpec, WireError, WireSemiring, WireValuation, WireWeight};

/// Map an engine [`Error`] onto a wire error with the right code.
fn engine_err(e: &Error) -> WireError {
    let code = match e {
        Error::UnknownPredicate(_) | Error::BadQuery(_) => ErrCode::Query,
        Error::Diverged { .. } => ErrCode::Eval,
        _ => ErrCode::Parse,
    };
    WireError::new(code, e.to_string())
}

/// One open serving session. Cheap to share (`Arc`); all mutation goes
/// through the internal state mutex, all evaluation through snapshots.
pub struct Session {
    id: u64,
    metrics: Arc<PipelineMetrics>,
    eval_threads: usize,
    last_used: Mutex<Instant>,
    state: Mutex<SessionState>,
    fix_cache: FixCache,
}

/// Cache key for one `(semiring, valuation)` fixpoint group: the wire
/// semiring plus the unit weight's bits (`None` = the `ones` valuation).
/// `perfact` valuations are never cached — their weight tables are
/// per-request.
type FixKey = (WireSemiring, Option<u64>);

/// The cacheable key of a group, or `None` when the valuation shape is
/// uncacheable (`perfact`).
fn fix_key(sem: WireSemiring, val: &WireValuation) -> Option<FixKey> {
    match val {
        WireValuation::Ones => Some((sem, None)),
        WireValuation::Unit(w) => Some((sem, Some(w.to_bits()))),
        WireValuation::PerFact(_) => None,
    }
}

/// A cached fixpoint behind type erasure: the concrete semiring/valuation
/// pair lives inside ([`TypedEntry`]); the write path repairs entries
/// through this object-safe surface without knowing their types.
trait AnyEntry: Send {
    /// Repair after an incremental insert (`extend_grounding` appended
    /// rules `base_rules..`). Returns whether the ⊕-idempotent worklist
    /// path applied (false = exact naive fallback ran instead).
    fn repair_insert(
        &mut self,
        gp: &GroundedProgram,
        base_rules: usize,
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool;
    /// Repair after an incremental retract (`roots` are the removed
    /// rules' heads). Exact on every semiring.
    fn repair_retract(
        &mut self,
        gp: &GroundedProgram,
        roots: &[usize],
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool;
    /// Whether the entry's values are a converged fixpoint.
    fn converged(&self) -> bool;
    /// The write epoch the values correspond to.
    fn epoch(&self) -> u64;
    fn set_epoch(&mut self, epoch: u64);
    fn as_any(&self) -> &dyn Any;
}

struct TypedEntry<S: Semiring, V> {
    fix: MaintainedFixpoint<S>,
    assign: V,
    epoch: u64,
}

impl<S, V> AnyEntry for TypedEntry<S, V>
where
    S: Semiring,
    V: Valuation<S> + Send + Sync + 'static,
{
    fn repair_insert(
        &mut self,
        gp: &GroundedProgram,
        base_rules: usize,
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool {
        self.fix
            .apply_insert(gp, &self.assign, base_rules, budget, rec)
    }

    fn repair_retract(
        &mut self,
        gp: &GroundedProgram,
        roots: &[usize],
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool {
        self.fix.apply_retract(gp, &self.assign, roots, budget, rec)
    }

    fn converged(&self) -> bool {
        self.fix.converged()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The session's per-`(semiring, valuation)` fixpoint cache. `QUERY` and
/// `BATCH` groups populate it (one [`MaintainedFixpoint`] per cacheable
/// group); `INSERT`/`RETRACT` **repair** every entry in place via the
/// incremental maintenance subsystem instead of invalidating it, so a
/// write-heavy session keeps answering reads without re-running full
/// fixpoints. Entries are dropped only when a repair fails to converge,
/// when the write path itself fell back to re-grounding, or when the
/// program/fact base is reloaded wholesale.
#[derive(Default)]
struct FixCache {
    entries: Mutex<HashMap<FixKey, Box<dyn AnyEntry>>>,
}

impl FixCache {
    /// The cached converged values for `key` at exactly `epoch`, if the
    /// stored entry's concrete types match `(S, V)`.
    fn lookup<S, V>(&self, key: FixKey, epoch: u64) -> Option<Vec<S>>
    where
        S: Semiring,
        V: Valuation<S> + Send + Sync + 'static,
    {
        let entries = self.entries.lock().expect("fix cache poisoned");
        let e = entries.get(&key)?;
        if e.epoch() != epoch || !e.converged() {
            return None;
        }
        let t = e.as_any().downcast_ref::<TypedEntry<S, V>>()?;
        Some(t.fix.values().to_vec())
    }

    /// Store a freshly converged fixpoint for `key` at `epoch`, unless a
    /// newer-epoch entry is already present (an in-flight reader on an
    /// old snapshot must not clobber a repaired entry).
    fn store<S, V>(&self, key: FixKey, epoch: u64, values: Vec<S>, assign: V)
    where
        S: Semiring,
        V: Valuation<S> + Send + Sync + 'static,
    {
        let mut entries = self.entries.lock().expect("fix cache poisoned");
        if let Some(e) = entries.get(&key) {
            if e.epoch() > epoch {
                return;
            }
        }
        entries.insert(
            key,
            Box::new(TypedEntry {
                fix: MaintainedFixpoint::from_values(values, true),
                assign,
                epoch,
            }),
        );
    }

    /// Repair every cached fixpoint after an incremental write that
    /// maintained the grounding in place. Entries whose epoch is not the
    /// pre-write epoch were created against a different grounding
    /// generation and are dropped (repairing them would be unsound), as
    /// are entries whose repair fails to converge. Each in-place repair
    /// bumps `incremental_applied`; the exact-but-not-incremental insert
    /// fallback (non-⊕-idempotent semirings) bumps
    /// `incremental_fallbacks` but keeps the entry — its values are
    /// exact either way.
    #[allow(clippy::too_many_arguments)]
    fn repair(
        &self,
        gp: &GroundedProgram,
        insert: bool,
        base_rules: usize,
        roots: &[usize],
        pre_epoch: u64,
        new_epoch: u64,
        budget: usize,
        metrics: &PipelineMetrics,
    ) {
        let mut entries = self.entries.lock().expect("fix cache poisoned");
        entries.retain(|_, e| {
            if e.epoch() != pre_epoch {
                return false;
            }
            let incremental = if insert {
                e.repair_insert(gp, base_rules, budget, metrics)
            } else {
                e.repair_retract(gp, roots, budget, metrics)
            };
            if !e.converged() {
                metrics.counter(Counter::IncrementalFallbacks, 1);
                return false;
            }
            e.set_epoch(new_epoch);
            if incremental {
                metrics.counter(Counter::IncrementalApplied, 1);
            } else {
                metrics.counter(Counter::IncrementalFallbacks, 1);
            }
            true
        });
    }

    /// Drop every entry (program or fact base replaced wholesale, or the
    /// write path fell back to re-grounding).
    fn clear(&self) {
        self.entries.lock().expect("fix cache poisoned").clear();
    }
}

/// What [`eval_group`] threads down to the materialized route: the
/// session's cache, the group's key, and the snapshot's write epoch.
type FixCtx<'a> = Option<(&'a FixCache, FixKey, u64)>;

struct SessionState {
    program: Option<String>,
    facts: Vec<(String, Vec<String>)>,
    /// The live engine behind the current snapshot. Kept resident so
    /// `INSERT`/`RETRACT` can take the incremental write path
    /// ([`Engine::insert_facts`]/[`Engine::retract_facts`]) instead of
    /// rebuilding; dropped when the *program* changes.
    engine: Option<Engine>,
    snapshot: Option<Arc<EngineSnapshot>>,
}

impl Session {
    fn new(id: u64, eval_threads: usize) -> Self {
        Session {
            id,
            // Always-on telemetry: METRICS is part of the protocol, so a
            // session collects spans/counters unconditionally.
            metrics: Arc::new(PipelineMetrics::new(true)),
            eval_threads,
            last_used: Mutex::new(Instant::now()),
            state: Mutex::new(SessionState {
                program: None,
                facts: Vec::new(),
                engine: None,
                snapshot: None,
            }),
            fix_cache: FixCache::default(),
        }
    }

    /// The session id handed to the client.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mark the session as used now (for TTL-based eviction).
    pub fn touch(&self) {
        *self.last_used.lock().expect("last_used poisoned") = Instant::now();
    }

    /// How long since the session was last touched.
    pub fn idle_for(&self) -> Duration {
        self.last_used.lock().expect("last_used poisoned").elapsed()
    }

    /// The session's cumulative telemetry stream (survives snapshot
    /// rebuilds).
    pub fn metrics(&self) -> &Arc<PipelineMetrics> {
        &self.metrics
    }

    /// Store (and validate) program text. No grounding happens here — the
    /// first `LOAD FACTS` or query builds the snapshot. Returns the rule
    /// count. Invalidates any existing snapshot: the program changed.
    pub fn load_program(&self, text: &str) -> Result<usize, WireError> {
        self.touch();
        let program = datalog::parse_program(text)
            .map_err(|e| WireError::new(ErrCode::Parse, e.to_string()))?;
        let rules = program.rules.len();
        let mut st = self.state.lock().expect("session state poisoned");
        st.program = Some(text.to_owned());
        st.engine = None;
        st.snapshot = None;
        // A fresh engine restarts its epoch clock — cached fixpoints from
        // the old one must not survive into the new numbering.
        self.fix_cache.clear();
        Ok(rules)
    }

    /// Append facts (`(pred, constants)` tuples), rebuild the engine, and
    /// atomically swap in the fresh snapshot. This is the bulk write path:
    /// it grounds exactly once per call; concurrent readers keep the old
    /// snapshot until they next ask for one. (For single-fact maintenance
    /// without re-grounding, see [`insert`](Session::insert) /
    /// [`retract`](Session::retract).)
    pub fn load_facts(&self, facts: Vec<(String, Vec<String>)>) -> Result<usize, WireError> {
        self.touch();
        let added = facts.len();
        let mut st = self.state.lock().expect("session state poisoned");
        if st.program.is_none() {
            return Err(WireError::new(
                ErrCode::NoProgram,
                "LOAD PROGRAM before LOAD FACTS",
            ));
        }
        let mut all = st.facts.clone();
        all.extend(facts);
        // Build outside nothing: the rebuild grounds, which can be heavy,
        // but correctness first — holding the lock serializes writers and
        // keeps readers on the old Arc (they cloned it out already).
        let (engine, snapshot) = self.build_engine(st.program.as_deref().unwrap(), &all)?;
        st.facts = all;
        st.engine = Some(engine);
        st.snapshot = Some(Arc::new(snapshot));
        // Bulk loads re-ground from scratch: cached fixpoints belong to
        // the replaced engine's epoch clock.
        self.fix_cache.clear();
        Ok(added)
    }

    /// Incrementally insert one EDB fact via [`Engine::insert_facts`]: the
    /// resident engine maintains its cached grounding in place (no
    /// re-grounding, no engine rebuild) and the next snapshot is swapped
    /// in atomically. Returns `(facts actually inserted, write epoch)` —
    /// 0 facts for a duplicate.
    pub fn insert(&self, pred: &str, args: &[String]) -> Result<(usize, u64), WireError> {
        self.write_delta(pred, args, true)
    }

    /// Incrementally retract one EDB fact — the mirror of
    /// [`insert`](Session::insert); grounded rules citing the fact are
    /// retired in place and readers swap to the next snapshot. Retracting
    /// an absent (or derived) fact is an error.
    pub fn retract(&self, pred: &str, args: &[String]) -> Result<(usize, u64), WireError> {
        self.write_delta(pred, args, false)
    }

    fn write_delta(
        &self,
        pred: &str,
        args: &[String],
        insert: bool,
    ) -> Result<(usize, u64), WireError> {
        self.touch();
        let mut st = self.state.lock().expect("session state poisoned");
        let Some(program) = st.program.clone() else {
            return Err(WireError::new(
                ErrCode::NoProgram,
                "LOAD PROGRAM before INSERT/RETRACT",
            ));
        };
        // Make sure the resident engine exists (first write straight after
        // LOAD PROGRAM builds it once, grounding lazily as usual).
        if st.engine.is_none() {
            let (engine, snapshot) = self.build_engine(&program, &st.facts)?;
            st.engine = Some(engine);
            st.snapshot = Some(Arc::new(snapshot));
        }
        let engine = st.engine.as_mut().expect("resident engine ensured above");
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let outcome = if insert {
            engine.insert_fact(pred, &refs)
        } else {
            engine.retract_fact(pred, &refs)
        }
        .map_err(|e| engine_err(&e))?;
        let changed = outcome.facts.len();
        if changed > 0 {
            // Repair the cached per-(semiring, valuation) fixpoints in
            // place when the write maintained the grounding; drop them
            // when the engine had to fall back to re-grounding.
            if outcome.maintained && outcome.incremental {
                let budget = engine.budget().map_err(|e| engine_err(&e))?;
                let gp = engine.grounding().map_err(|e| engine_err(&e))?;
                self.fix_cache.repair(
                    gp,
                    insert,
                    outcome.base_rules,
                    &outcome.roots,
                    outcome.epoch.saturating_sub(1),
                    outcome.epoch,
                    budget,
                    &self.metrics,
                );
            } else {
                self.fix_cache.clear();
            }
            // Freeze and swap; in-flight readers finish on the old Arc.
            let snap = engine.snapshot().map_err(|e| engine_err(&e))?;
            st.snapshot = Some(Arc::new(snap));
            // Keep the rebuild fact list in sync so a later LOAD
            // PROGRAM/LOAD FACTS rebuild sees the same database.
            if insert {
                st.facts.push((pred.to_owned(), args.to_vec()));
            } else if let Some(i) = st
                .facts
                .iter()
                .position(|(p, a)| p == pred && a.as_slice() == args)
            {
                st.facts.remove(i);
            }
        }
        Ok((changed, outcome.epoch))
    }

    /// The current snapshot, building it lazily when a program is loaded
    /// but no write has happened yet (e.g. queries straight after
    /// `LOAD PROGRAM` on an empty database).
    pub fn snapshot(&self) -> Result<Arc<EngineSnapshot>, WireError> {
        let mut st = self.state.lock().expect("session state poisoned");
        if let Some(snap) = &st.snapshot {
            return Ok(Arc::clone(snap));
        }
        let Some(program) = st.program.clone() else {
            return Err(WireError::new(
                ErrCode::NoProgram,
                "no program loaded in this session",
            ));
        };
        let facts = st.facts.clone();
        let (engine, snap) = self.build_engine(&program, &facts)?;
        let snap = Arc::new(snap);
        st.engine = Some(engine);
        st.snapshot = Some(Arc::clone(&snap));
        Ok(snap)
    }

    fn build_engine(
        &self,
        program: &str,
        facts: &[(String, Vec<String>)],
    ) -> Result<(Engine, EngineSnapshot), WireError> {
        let mut builder = Engine::builder()
            .program_text(program)
            .parallelism(self.eval_threads)
            .metrics_collector(Arc::clone(&self.metrics));
        for (pred, tuple) in facts {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            builder = builder.fact(pred, &refs);
        }
        let engine = builder.build().map_err(|e| engine_err(&e))?;
        let snapshot = engine.snapshot().map_err(|e| engine_err(&e))?;
        Ok((engine, snapshot))
    }

    /// Evaluate one `QUERY`, bumping the serve counters and attributing
    /// wall-clock to [`Stage::Serve`].
    pub fn query(&self, spec: &QuerySpec) -> Result<String, WireError> {
        self.touch();
        let snap = self.snapshot()?;
        self.metrics.counter(Counter::QueriesServed, 1);
        telemetry::time(&*self.metrics, Stage::Serve, || {
            let goals = [(0usize, spec)];
            eval_group(
                &snap,
                spec.semiring,
                &spec.valuation,
                spec.pipeline,
                &goals,
                Some(&self.fix_cache),
            )
            .pop()
            .expect("one goal in, one result out")
            .1
        })
    }

    /// Evaluate a `BATCH` against **one** snapshot: items are grouped by
    /// `(semiring, valuation, pipeline)` and each group runs a single
    /// fixpoint over the shared frozen grounding, so N queries cost one
    /// grounding and at most `#groups` fixpoints (the paper's
    /// compile-once/eval-many pitch as a wire command). Results come back
    /// in item order; per-item failures don't fail the batch.
    pub fn batch(&self, specs: &[QuerySpec]) -> Result<Vec<Result<String, WireError>>, WireError> {
        self.touch();
        let snap = self.snapshot()?;
        self.metrics.counter(Counter::BatchesServed, 1);
        self.metrics
            .counter(Counter::BatchQueries, specs.len() as u64);
        // One batch group: a (semiring, valuation, pipeline) triple and
        // the goals (with original positions) it answers.
        type Group<'a> = (
            WireSemiring,
            WireValuation,
            Pipeline,
            Vec<(usize, &'a QuerySpec)>,
        );
        Ok(telemetry::time(&*self.metrics, Stage::Serve, || {
            // Group while preserving original positions.
            let mut groups: Vec<Group> = Vec::new();
            for (i, spec) in specs.iter().enumerate() {
                match groups.iter_mut().find(|(s, v, p, _)| {
                    *s == spec.semiring && *v == spec.valuation && *p == spec.pipeline
                }) {
                    Some((_, _, _, goals)) => goals.push((i, spec)),
                    None => groups.push((
                        spec.semiring,
                        spec.valuation.clone(),
                        spec.pipeline,
                        vec![(i, spec)],
                    )),
                }
            }
            let mut out: Vec<Option<Result<String, WireError>>> = vec![None; specs.len()];
            for (sem, val, pipeline, goals) in groups {
                for (i, res) in
                    eval_group(&snap, sem, &val, pipeline, &goals, Some(&self.fix_cache))
                {
                    out[i] = Some(res);
                }
            }
            out.into_iter()
                .map(|r| r.expect("every batch item answered by its group"))
                .collect()
        }))
    }
}

/// Evaluate one `(semiring, valuation, pipeline)` group against a
/// snapshot: pick the typed semiring/valuation pair, then hand the goals
/// to [`run_group`], which routes them down the requested pipeline.
/// `cache` is the session's repairable fixpoint cache (`None` in
/// contexts without one); groups with a cacheable valuation shape reuse
/// and populate it on the materialized route. Returns `(original index,
/// per-goal result)` pairs.
fn eval_group(
    snap: &EngineSnapshot,
    sem: WireSemiring,
    val: &WireValuation,
    pipeline: Pipeline,
    goals: &[(usize, &QuerySpec)],
    cache: Option<&FixCache>,
) -> Vec<(usize, Result<String, WireError>)> {
    let fix: FixCtx = cache
        .zip(fix_key(sem, val))
        .map(|(c, k)| (c, k, snap.epoch()));
    match sem {
        WireSemiring::Bool => {
            // QuerySpec::parse rejects bool + unit, so `val` is Ones here.
            run_group::<Bool, _>(snap, pipeline, &AllOnes, goals, |b| b.0.to_string(), fix)
        }
        WireSemiring::Tropical => match val {
            WireValuation::PerFact(ws) => match per_fact_u64(snap, ws, Tropical::new) {
                Err(e) => fail_all(goals, e),
                Ok(v) => run_group(snap, pipeline, &v, goals, render_tropical, fix),
            },
            _ => match unit_u64(val) {
                Err(e) => fail_all(goals, e),
                Ok(None) => {
                    run_group::<Tropical, _>(snap, pipeline, &AllOnes, goals, render_tropical, fix)
                }
                Ok(Some(w)) => run_group(
                    snap,
                    pipeline,
                    &UnitWeights::new(Tropical::new(w)),
                    goals,
                    render_tropical,
                    fix,
                ),
            },
        },
        WireSemiring::Counting => match val {
            WireValuation::PerFact(ws) => match per_fact_u64(snap, ws, Counting::new) {
                Err(e) => fail_all(goals, e),
                Ok(v) => run_group(snap, pipeline, &v, goals, |c| c.0.to_string(), fix),
            },
            _ => match unit_u64(val) {
                Err(e) => fail_all(goals, e),
                Ok(None) => run_group::<Counting, _>(
                    snap,
                    pipeline,
                    &AllOnes,
                    goals,
                    |c| c.0.to_string(),
                    fix,
                ),
                Ok(Some(w)) => run_group(
                    snap,
                    pipeline,
                    &UnitWeights::new(Counting::new(w)),
                    goals,
                    |c| c.0.to_string(),
                    fix,
                ),
            },
        },
        WireSemiring::Bottleneck => match val {
            WireValuation::PerFact(ws) => match per_fact_u64(snap, ws, Bottleneck::new) {
                Err(e) => fail_all(goals, e),
                Ok(v) => run_group(snap, pipeline, &v, goals, |b| b.0.to_string(), fix),
            },
            _ => match unit_u64(val) {
                Err(e) => fail_all(goals, e),
                Ok(None) => run_group::<Bottleneck, _>(
                    snap,
                    pipeline,
                    &AllOnes,
                    goals,
                    |b| b.0.to_string(),
                    fix,
                ),
                Ok(Some(w)) => run_group(
                    snap,
                    pipeline,
                    &UnitWeights::new(Bottleneck::new(w)),
                    goals,
                    |b| b.0.to_string(),
                    fix,
                ),
            },
        },
        WireSemiring::Fuzzy => match val {
            WireValuation::Ones => run_group::<Fuzzy, _>(
                snap,
                pipeline,
                &AllOnes,
                goals,
                |f| f.value().to_string(),
                fix,
            ),
            WireValuation::Unit(w) => {
                if !(0.0..=1.0).contains(w) {
                    return fail_all(
                        goals,
                        WireError::new(ErrCode::Valuation, "fuzzy unit weight must be in [0, 1]"),
                    );
                }
                run_group(
                    snap,
                    pipeline,
                    &UnitWeights::new(Fuzzy::new(*w)),
                    goals,
                    |f| f.value().to_string(),
                    fix,
                )
            }
            WireValuation::PerFact(ws) => {
                let v = per_fact_valuation(snap, ws, |w| {
                    if !(0.0..=1.0).contains(&w) {
                        return Err(WireError::new(
                            ErrCode::Valuation,
                            "fuzzy fact weight must be in [0, 1]",
                        ));
                    }
                    Ok(Fuzzy::new(w))
                });
                match v {
                    Err(e) => fail_all(goals, e),
                    Ok(v) => run_group(snap, pipeline, &v, goals, |f| f.value().to_string(), fix),
                }
            }
        },
    }
}

/// Build a [`PerFact`] valuation from `WEIGHT` lines: each named fact is
/// resolved against the frozen database (unknown predicates, constants,
/// or facts are `VALUATION` errors — a typo must not silently weigh
/// nothing), unlisted facts default to the semiring's 1.
fn per_fact_valuation<S: Semiring>(
    snap: &EngineSnapshot,
    weights: &[WireWeight],
    parse: impl Fn(f64) -> Result<S, WireError>,
) -> Result<PerFact<S>, WireError> {
    let mut v = PerFact::new();
    for w in weights {
        let rendered = || format!("{} {}", w.pred, w.args.join(" "));
        let pred = snap.program().preds.get(&w.pred).ok_or_else(|| {
            WireError::new(
                ErrCode::Valuation,
                format!("WEIGHT names unknown predicate {:?}", w.pred),
            )
        })?;
        let tuple: Option<Vec<u32>> = w
            .args
            .iter()
            .map(|c| snap.database().consts.get(c))
            .collect();
        let fact = tuple
            .and_then(|t| snap.database().fact_id(pred, &t))
            .ok_or_else(|| {
                WireError::new(
                    ErrCode::Valuation,
                    format!("WEIGHT names unknown EDB fact {:?}", rendered()),
                )
            })?;
        v.insert(fact, parse(w.weight)?);
    }
    Ok(v)
}

/// [`per_fact_valuation`] for the u64-weighted semirings: weights must be
/// non-negative integers.
fn per_fact_u64<S: Semiring>(
    snap: &EngineSnapshot,
    weights: &[WireWeight],
    mk: impl Fn(u64) -> S,
) -> Result<PerFact<S>, WireError> {
    per_fact_valuation(snap, weights, |w| {
        if w.fract() != 0.0 || w < 0.0 || w > u64::MAX as f64 {
            return Err(WireError::new(
                ErrCode::Valuation,
                "fact weight must be a non-negative integer for this semiring",
            ));
        }
        Ok(mk(w as u64))
    })
}

/// `unit:<w>` for the u64-weighted semirings: `Ok(None)` for `ones`,
/// an error unless `w` is a non-negative integer.
fn unit_u64(val: &WireValuation) -> Result<Option<u64>, WireError> {
    match val {
        WireValuation::Ones => Ok(None),
        WireValuation::Unit(w) => {
            if w.fract() != 0.0 || *w < 0.0 || *w > u64::MAX as f64 {
                return Err(WireError::new(
                    ErrCode::Valuation,
                    "unit weight must be a non-negative integer for this semiring",
                ));
            }
            Ok(Some(*w as u64))
        }
        // Handled by the per-semiring `PerFact` arms before this is called.
        WireValuation::PerFact(_) => Err(WireError::new(
            ErrCode::Valuation,
            "internal: perfact valuation reached the unit path",
        )),
    }
}

fn render_tropical(t: &Tropical) -> String {
    match t.finite() {
        Some(w) => w.to_string(),
        None => "inf".to_owned(),
    }
}

fn fail_all(
    goals: &[(usize, &QuerySpec)],
    e: WireError,
) -> Vec<(usize, Result<String, WireError>)> {
    goals.iter().map(|(i, _)| (*i, Err(e.clone()))).collect()
}

/// The typed heart of the serving read path: dispatch one goal group to
/// the pipeline the client asked for. All three routes share a snapshot
/// and a render closure, so a mixed `BATCH` can interleave pipelines and
/// still compare answers character-for-character.
fn run_group<S, V>(
    snap: &EngineSnapshot,
    pipeline: Pipeline,
    valuation: &V,
    goals: &[(usize, &QuerySpec)],
    render: impl Fn(&S) -> String,
    fix: FixCtx,
) -> Vec<(usize, Result<String, WireError>)>
where
    S: Semiring,
    V: Valuation<S> + Sync + Send + Clone + 'static,
{
    match pipeline {
        // The fused route never materializes a grounded fixpoint vector,
        // so it has nothing to put in (or take from) the cache.
        Pipeline::Materialized => run_group_materialized(snap, valuation, goals, &render, fix),
        Pipeline::Fused => run_group_fused(snap, valuation, goals, &render),
        Pipeline::Magic => run_group_magic(snap, valuation, goals, &render, fix),
    }
}

/// Resolve a goal's predicate and constants against the snapshot without
/// consulting the frozen grounding: unknown predicates and arity
/// mismatches are query errors (parity with
/// [`EngineSnapshot::fact_index`]); an unknown constant means the goal is
/// trivially underivable (`Ok(None)`).
fn resolve_goal(
    snap: &EngineSnapshot,
    q: &QuerySpec,
) -> Result<Option<(datalog::PredId, Vec<datalog::ConstId>)>, WireError> {
    let pred = snap
        .program()
        .preds
        .get(&q.pred)
        .ok_or_else(|| engine_err(&Error::UnknownPredicate(q.pred.clone())))?;
    if let Some(arity) = snap.program().arity(pred) {
        if arity != q.args.len() {
            return Err(engine_err(&Error::BadQuery(format!(
                "{} has arity {arity}, got {} arguments",
                q.pred,
                q.args.len()
            ))));
        }
    }
    let tuple: Option<Vec<datalog::ConstId>> = q
        .args
        .iter()
        .map(|c| snap.database().consts.get(c))
        .collect();
    Ok(tuple.map(|t| (pred, t)))
}

/// The `PIPELINE fused` route: one streaming ground+eval pass answers the
/// whole group — no grounded-rule vector is ever materialized for it.
/// Goals the stream never discovered render the semiring's 0; if the
/// fixpoint ran out of budget, discovered goals fail with an eval error
/// (underivable ones still render 0, matching the materialized route).
fn run_group_fused<S, V>(
    snap: &EngineSnapshot,
    valuation: &V,
    goals: &[(usize, &QuerySpec)],
    render: impl Fn(&S) -> String,
) -> Vec<(usize, Result<String, WireError>)>
where
    S: Semiring,
    V: Valuation<S> + Sync,
{
    let out = match snap.fused_fixpoint::<S, V>(valuation) {
        Ok(out) => out,
        Err(e) => return fail_all(goals, engine_err(&e)),
    };
    let diverged = (!out.converged).then(|| {
        WireError::new(
            ErrCode::Eval,
            format!("fixpoint diverged within budget {}", snap.budget()),
        )
    });
    goals
        .iter()
        .map(|(i, q)| {
            let res = match resolve_goal(snap, q) {
                Err(e) => Err(e),
                Ok(None) => Ok(render(&S::zero())),
                Ok(Some((pred, tuple))) => match out.gp.fact(pred, &tuple) {
                    None => Ok(render(&S::zero())),
                    Some(f) => match &diverged {
                        Some(e) => Err(e.clone()),
                        None => Ok(render(&out.values[f])),
                    },
                },
            };
            (*i, res)
        })
        .collect()
}

/// The `PIPELINE magic` route: each goal gets a demand-driven point
/// evaluation that grounds only its query cone. Goals the magic-set
/// rewrite can't serve (wrong shape, non-chain program) fall back to the
/// materialized route as one residual group, so a mixed batch still runs
/// at most one full fixpoint.
fn run_group_magic<S, V>(
    snap: &EngineSnapshot,
    valuation: &V,
    goals: &[(usize, &QuerySpec)],
    render: impl Fn(&S) -> String,
    fix: FixCtx,
) -> Vec<(usize, Result<String, WireError>)>
where
    S: Semiring,
    V: Valuation<S> + Sync + Send + Clone + 'static,
{
    let mut results = Vec::with_capacity(goals.len());
    let mut fallback: Vec<(usize, &QuerySpec)> = Vec::new();
    for (i, q) in goals {
        let args: Vec<&str> = q.args.iter().map(String::as_str).collect();
        match snap.magic_point::<S, V>(&q.pred, &args, valuation) {
            Ok(Some(v)) => results.push((*i, Ok(render(&v)))),
            Ok(None) => fallback.push((*i, q)),
            Err(e) => results.push((*i, Err(engine_err(&e)))),
        }
    }
    if !fallback.is_empty() {
        results.extend(run_group_materialized(
            snap, valuation, &fallback, &render, fix,
        ));
    }
    results
}

/// The materialized (default) route: resolve all goals against the
/// frozen grounding, run one shared fixpoint iff some goal is derivable,
/// and render each value. Underivable goals render `0` without forcing an
/// evaluation; a diverging fixpoint fails only the goals that needed it.
/// With a [`FixCtx`], a cached fixpoint at the snapshot's epoch answers
/// the group without evaluating, and a freshly converged fixpoint is
/// stored for the next read.
fn run_group_materialized<S, V>(
    snap: &EngineSnapshot,
    valuation: &V,
    goals: &[(usize, &QuerySpec)],
    render: impl Fn(&S) -> String,
    fix: FixCtx,
) -> Vec<(usize, Result<String, WireError>)>
where
    S: Semiring,
    V: Valuation<S> + Sync + Send + Clone + 'static,
{
    let resolved: Vec<(usize, Result<Option<usize>, WireError>)> = goals
        .iter()
        .map(|(i, q)| {
            let args: Vec<&str> = q.args.iter().map(String::as_str).collect();
            (
                *i,
                snap.fact_index(&q.pred, &args).map_err(|e| engine_err(&e)),
            )
        })
        .collect();
    let needs_eval = resolved.iter().any(|(_, r)| matches!(r, Ok(Some(_))));
    let values = if needs_eval {
        let cached = fix.and_then(|(cache, key, epoch)| cache.lookup::<S, V>(key, epoch));
        match cached {
            Some(values) => Some(values),
            None => {
                let out = snap.fixpoint::<S, V>(valuation);
                if !out.converged {
                    let e = WireError::new(
                        ErrCode::Eval,
                        format!("fixpoint diverged within budget {}", snap.budget()),
                    );
                    return resolved
                        .into_iter()
                        .map(|(i, r)| match r {
                            Err(orig) => (i, Err(orig)),
                            Ok(None) => (i, Ok(render(&S::zero()))),
                            Ok(Some(_)) => (i, Err(e.clone())),
                        })
                        .collect();
                }
                if let Some((cache, key, epoch)) = fix {
                    cache.store(key, epoch, out.values.clone(), valuation.clone());
                }
                Some(out.values)
            }
        }
    } else {
        None
    };
    resolved
        .into_iter()
        .map(|(i, r)| {
            let res = match r {
                Err(e) => Err(e),
                Ok(None) => Ok(render(&S::zero())),
                Ok(Some(f)) => Ok(render(
                    &values
                        .as_ref()
                        .expect("fixpoint ran: derivable goal present")[f],
                )),
            };
            (i, res)
        })
        .collect()
}

/// The server-wide session table: id allocation, open/attach/close, and
/// the sessions-opened/closed counters.
pub struct Registry {
    next_id: AtomicU64,
    eval_threads: usize,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    /// Connections the accept loop rejected with `ERR BUSY` because the
    /// pending queue was full — server-wide, surfaced into every
    /// session's `METRICS` report as `overload_rejections`.
    overloads: AtomicU64,
}

impl Registry {
    /// An empty registry whose sessions evaluate with `eval_threads`
    /// threads per fixpoint (serving layers usually want 1: concurrency
    /// comes from the worker pool, not from sharding a single query).
    pub fn new(eval_threads: usize) -> Self {
        Registry {
            next_id: AtomicU64::new(1),
            eval_threads: eval_threads.max(1),
            sessions: Mutex::new(HashMap::new()),
            overloads: AtomicU64::new(0),
        }
    }

    /// Record one `ERR BUSY` admission reject (called by the accept loop).
    pub fn note_overload_rejection(&self) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections rejected with `ERR BUSY` since the server started.
    pub fn overload_rejections(&self) -> u64 {
        self.overloads.load(Ordering::Relaxed)
    }

    /// Open a fresh session.
    pub fn open(&self) -> Arc<Session> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session::new(id, self.eval_threads));
        session.metrics.counter(Counter::SessionsOpened, 1);
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .insert(id, Arc::clone(&session));
        session
    }

    /// Attach to an existing session by id (shared state: two connections
    /// attached to one session see the same snapshots and metrics).
    pub fn attach(&self, id: u64) -> Result<Arc<Session>, WireError> {
        let session = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| WireError::new(ErrCode::BadSession, format!("no session {id}")))?;
        session.touch();
        Ok(session)
    }

    /// Drop every session idle for longer than `ttl`, returning how many
    /// were evicted. Connections still holding an evicted session's `Arc`
    /// can finish in-flight work (and will see the `sessions_evicted`
    /// counter in their `METRICS` stream); new attaches fail. Swept
    /// periodically by the accept loop when `--session-ttl` is set.
    pub fn evict_idle(&self, ttl: Duration) -> usize {
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        let stale: Vec<u64> = sessions
            .iter()
            .filter(|(_, s)| s.idle_for() > ttl)
            .map(|(id, _)| *id)
            .collect();
        for id in &stale {
            if let Some(s) = sessions.remove(id) {
                s.metrics.counter(Counter::SessionsEvicted, 1);
            }
        }
        stale.len()
    }

    /// Close (drop) a session. Connections still holding the `Arc` can
    /// finish in-flight work; new attaches fail.
    pub fn close(&self, id: u64) -> Result<(), WireError> {
        let removed = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .remove(&id);
        match removed {
            Some(s) => {
                s.metrics.counter(Counter::SessionsClosed, 1);
                Ok(())
            }
            None => Err(WireError::new(
                ErrCode::BadSession,
                format!("no session {id}"),
            )),
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_command;
    use crate::protocol::Command;

    const TC: &str = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";

    fn path_facts(n: usize) -> Vec<(String, Vec<String>)> {
        (0..n)
            .map(|i| ("E".to_owned(), vec![format!("v{i}"), format!("v{}", i + 1)]))
            .collect()
    }

    fn spec(line: &str) -> QuerySpec {
        match parse_command(&format!("QUERY {line}")).unwrap() {
            Command::Query(q) => q,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn session_lifecycle_grounds_exactly_once() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(4)).unwrap();
        let results = session
            .batch(&[
                spec("T v0 v4 SEMIRING bool"),
                spec("T v0 v4 SEMIRING tropical VALUATION unit:1"),
                spec("T v0 v4 SEMIRING counting"),
            ])
            .unwrap();
        let values: Vec<String> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec!["true", "4", "1"]);
        // One LOAD FACTS, one grounding — the three semirings shared it.
        assert_eq!(
            session
                .metrics()
                .cache_count(telemetry::CacheEvent::Grounding),
            1
        );
        assert_eq!(session.metrics().counter_value(Counter::BatchQueries), 3);
    }

    #[test]
    fn pipelines_agree_on_the_wire() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(5)).unwrap();
        // Same goal down all three pipelines, mixed into one batch: the
        // rendered answers must be byte-identical.
        for goal in ["T v0 v5", "T v2 v4", "T v4 v1", "T v0 nowhere"] {
            for sem in ["bool", "tropical VALUATION unit:1", "counting"] {
                let results = session
                    .batch(&[
                        spec(&format!("{goal} SEMIRING {sem}")),
                        spec(&format!("{goal} SEMIRING {sem} PIPELINE fused")),
                        spec(&format!("{goal} SEMIRING {sem} PIPELINE magic")),
                    ])
                    .unwrap();
                let values: Vec<String> = results.into_iter().map(|r| r.unwrap()).collect();
                assert_eq!(values[0], values[1], "fused disagrees on {goal} / {sem}");
                assert_eq!(values[0], values[2], "magic disagrees on {goal} / {sem}");
            }
        }
        // Errors keep their codes on the alternate pipelines too.
        for pipe in ["fused", "magic"] {
            let err = session
                .query(&spec(&format!("Nope v0 SEMIRING bool PIPELINE {pipe}")))
                .unwrap_err();
            assert_eq!(err.code, ErrCode::Query, "pipeline {pipe}");
        }
    }

    #[test]
    fn magic_pipeline_falls_back_when_ineligible() {
        let reg = Registry::new(1);
        let session = reg.open();
        // A non-linear (quadratic) TC program: the magic rewrite declines,
        // so PIPELINE magic must transparently serve the materialized
        // answer instead of erroring.
        session
            .load_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).")
            .unwrap();
        session.load_facts(path_facts(4)).unwrap();
        assert_eq!(
            session
                .query(&spec("T v0 v4 SEMIRING bool PIPELINE magic"))
                .unwrap(),
            "true"
        );
        assert_eq!(
            session
                .query(&spec(
                    "T v0 v4 SEMIRING tropical VALUATION unit:1 PIPELINE magic"
                ))
                .unwrap(),
            "4"
        );
    }

    #[test]
    fn load_facts_without_program_is_an_error() {
        let reg = Registry::new(1);
        let session = reg.open();
        let err = session.load_facts(path_facts(1)).unwrap_err();
        assert_eq!(err.code, ErrCode::NoProgram);
    }

    #[test]
    fn incremental_fact_loads_reground() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(2)).unwrap();
        assert_eq!(
            session.query(&spec("T v0 v3 SEMIRING bool")).unwrap(),
            "false"
        );
        session
            .load_facts(vec![("E".into(), vec!["v2".into(), "v3".into()])])
            .unwrap();
        assert_eq!(
            session.query(&spec("T v0 v3 SEMIRING bool")).unwrap(),
            "true"
        );
        // Two writes, two groundings — queries added none.
        assert_eq!(
            session
                .metrics()
                .cache_count(telemetry::CacheEvent::Grounding),
            2
        );
    }

    #[test]
    fn batch_mixes_results_and_errors_in_order() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(3)).unwrap();
        let results = session
            .batch(&[
                spec("T v0 v2 SEMIRING tropical VALUATION unit:1"),
                spec("Nope v0 SEMIRING bool"),
                spec("T v0 nowhere SEMIRING tropical VALUATION unit:1"),
            ])
            .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), "2");
        assert_eq!(results[1].as_ref().unwrap_err().code, ErrCode::Query);
        // Out-of-domain constant: underivable ⇒ semiring zero, not error.
        assert_eq!(results[2].as_ref().unwrap(), "inf");
    }

    #[test]
    fn insert_and_retract_maintain_the_grounding_without_regrounding() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(3)).unwrap();
        assert_eq!(
            session
                .metrics()
                .cache_count(telemetry::CacheEvent::Grounding),
            1
        );

        // Incremental insert: the answer changes, the grounding count
        // does not.
        let (n, epoch) = session
            .insert("E", &["v3".to_owned(), "v4".to_owned()])
            .unwrap();
        assert_eq!((n, epoch), (1, 1));
        assert_eq!(
            session.query(&spec("T v0 v4 SEMIRING bool")).unwrap(),
            "true"
        );
        // Duplicate insert: no-op, epoch unchanged.
        let (n, epoch) = session
            .insert("E", &["v3".to_owned(), "v4".to_owned()])
            .unwrap();
        assert_eq!((n, epoch), (0, 1));

        // Incremental retract severs the path.
        let (n, epoch) = session
            .retract("E", &["v1".to_owned(), "v2".to_owned()])
            .unwrap();
        assert_eq!((n, epoch), (1, 2));
        assert_eq!(
            session.query(&spec("T v0 v4 SEMIRING bool")).unwrap(),
            "false"
        );
        assert_eq!(
            session.query(&spec("T v2 v4 SEMIRING bool")).unwrap(),
            "true"
        );

        // Still exactly one grounding: both writes extended/retired the
        // cached one in place.
        assert_eq!(
            session
                .metrics()
                .cache_count(telemetry::CacheEvent::Grounding),
            1
        );
        // Three incremental applications: the insert and retract each
        // maintained the engine's grounding in place, and the retract
        // additionally repaired the bool fixpoint cached by the first
        // query (the insert preceded any cached read).
        assert_eq!(
            session.metrics().counter_value(Counter::IncrementalApplied),
            3
        );
        assert_eq!(
            session
                .metrics()
                .counter_value(Counter::IncrementalFallbacks),
            0
        );

        // Retracting what is no longer there is a query error.
        let err = session
            .retract("E", &["v1".to_owned(), "v2".to_owned()])
            .unwrap_err();
        assert_eq!(err.code, ErrCode::Query);
    }

    #[test]
    fn cached_fixpoints_are_repaired_not_invalidated() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        // Path v0 -> v1 -> v2 -> v3.
        session.load_facts(path_facts(3)).unwrap();

        // Prime the cache: one tropical and one counting fixpoint.
        assert_eq!(
            session
                .query(&spec("T v0 v3 SEMIRING tropical VALUATION unit:1"))
                .unwrap(),
            "3"
        );
        assert_eq!(
            session.query(&spec("T v0 v3 SEMIRING counting")).unwrap(),
            "1"
        );
        let evals_after_priming = session.metrics().stage_calls(telemetry::Stage::Eval);

        // Insert a shortcut edge: the write repairs both cached
        // fixpoints in place. Tropical (⊕ = min, idempotent) takes the
        // incremental worklist path; counting (⊕ = +) the exact naive
        // fallback — either way the entry survives and keeps serving.
        session
            .insert("E", &["v0".to_owned(), "v2".to_owned()])
            .unwrap();
        assert_eq!(
            session
                .query(&spec("T v0 v3 SEMIRING tropical VALUATION unit:1"))
                .unwrap(),
            "2"
        );
        assert_eq!(
            session.query(&spec("T v0 v3 SEMIRING counting")).unwrap(),
            "2"
        );

        // Retract the bypassed first edge: exact incremental repair on
        // both entries.
        session
            .retract("E", &["v0".to_owned(), "v1".to_owned()])
            .unwrap();
        assert_eq!(
            session
                .query(&spec("T v0 v3 SEMIRING tropical VALUATION unit:1"))
                .unwrap(),
            "2"
        );
        assert_eq!(
            session.query(&spec("T v0 v3 SEMIRING counting")).unwrap(),
            "1"
        );

        // Every post-write read was answered from a repaired entry: no
        // further full fixpoint ran, and the grounding was maintained in
        // place rather than recomputed.
        assert_eq!(
            session.metrics().stage_calls(telemetry::Stage::Eval),
            evals_after_priming
        );
        assert_eq!(
            session
                .metrics()
                .cache_count(telemetry::CacheEvent::Grounding),
            1
        );
        // Insert: engine grounding + tropical repair (counting's naive
        // fallback is exact but not incremental). Retract: engine
        // grounding + both repairs.
        assert_eq!(
            session.metrics().counter_value(Counter::IncrementalApplied),
            5
        );
        assert_eq!(
            session
                .metrics()
                .counter_value(Counter::IncrementalFallbacks),
            1
        );
    }

    #[test]
    fn perfact_valuation_weighs_individual_facts() {
        let reg = Registry::new(1);
        let session = reg.open();
        session.load_program(TC).unwrap();
        session.load_facts(path_facts(3)).unwrap();
        let mut q = spec("T v0 v3 SEMIRING tropical VALUATION perfact");
        // Unlisted facts default to the semiring's 1 — in tropical the
        // ⊗-identity is cost 0, so only the listed edges cost anything.
        q.valuation = WireValuation::PerFact(vec![
            WireWeight {
                pred: "E".to_owned(),
                args: vec!["v0".to_owned(), "v1".to_owned()],
                weight: 2.0,
            },
            WireWeight {
                pred: "E".to_owned(),
                args: vec!["v1".to_owned(), "v2".to_owned()],
                weight: 10.0,
            },
        ]);
        assert_eq!(session.query(&q).unwrap(), "12");

        // Unknown facts in WEIGHT lines are valuation errors, not silence.
        q.valuation = WireValuation::PerFact(vec![WireWeight {
            pred: "E".to_owned(),
            args: vec!["v0".to_owned(), "v9".to_owned()],
            weight: 10.0,
        }]);
        assert_eq!(session.query(&q).unwrap_err().code, ErrCode::Valuation);

        // Fuzzy rejects weights outside [0, 1].
        let mut f = spec("T v0 v3 SEMIRING fuzzy VALUATION perfact");
        f.valuation = WireValuation::PerFact(vec![WireWeight {
            pred: "E".to_owned(),
            args: vec!["v1".to_owned(), "v2".to_owned()],
            weight: 2.0,
        }]);
        assert_eq!(session.query(&f).unwrap_err().code, ErrCode::Valuation);
        let mut f = spec("T v0 v3 SEMIRING fuzzy VALUATION perfact");
        f.valuation = WireValuation::PerFact(vec![WireWeight {
            pred: "E".to_owned(),
            args: vec!["v1".to_owned(), "v2".to_owned()],
            weight: 0.5,
        }]);
        assert_eq!(session.query(&f).unwrap(), "0.5");
    }

    #[test]
    fn idle_sessions_are_evicted_and_counted() {
        let reg = Registry::new(1);
        let hot = reg.open();
        let cold = reg.open();
        hot.load_program(TC).unwrap();
        cold.load_program(TC).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        hot.touch();
        // Only `cold` has been idle longer than the TTL.
        assert_eq!(reg.evict_idle(Duration::from_millis(20)), 1);
        assert!(reg.attach(hot.id()).is_ok());
        assert!(reg.attach(cold.id()).is_err());
        assert_eq!(cold.metrics().counter_value(Counter::SessionsEvicted), 1);
        assert_eq!(hot.metrics().counter_value(Counter::SessionsEvicted), 0);
        // A connection still holding the Arc can finish in-flight work.
        assert!(cold.load_facts(path_facts(2)).is_ok());
    }

    #[test]
    fn registry_attach_and_close() {
        let reg = Registry::new(1);
        let s = reg.open();
        let same = reg.attach(s.id()).unwrap();
        assert_eq!(same.id(), s.id());
        reg.close(s.id()).unwrap();
        assert!(reg.attach(s.id()).is_err());
        assert_eq!(reg.close(s.id()).unwrap_err().code, ErrCode::BadSession);
        assert!(reg.is_empty());
    }
}
