//! Incremental maintenance of semiring fixpoints over a grounded program
//! (the delta layer behind `Engine::insert_facts` / `retract_facts`).
//!
//! A [`MaintainedFixpoint`] owns the value vector of one `(semiring,
//! valuation)` fixpoint and repairs it in place as the grounding changes,
//! instead of re-running the fixpoint from scratch:
//!
//! * **Inserts** ([`apply_insert`](MaintainedFixpoint::apply_insert)) —
//!   after `datalog::extend_grounding` appended the delta's grounded
//!   rules, the new rules seed a semi-naive worklist: each fires once,
//!   ⊕-accumulating its ⊗-product into its head, and heads that strictly
//!   grow re-enqueue their dependent rules through the fact → rules CSR
//!   ([`datalog::dependency_csr`]). This accumulation is sound exactly
//!   when ⊕ is idempotent ([`semiring::Semiring::ADD_IDEMPOTENT`]): stale
//!   contributions computed from smaller body values are dominated by the
//!   final ones. Non-idempotent semirings (e.g. `Counting`, where
//!   re-added contributions would double-count proof trees, and where the
//!   fix would need a ⊖ the semiring does not have) **fall back** to a
//!   full naive re-evaluation over the extended grounding — still exact,
//!   just not incremental; the fallback is the method's return value, so
//!   callers can count it.
//!
//! * **Retracts** ([`apply_retract`](MaintainedFixpoint::apply_retract))
//!   — semiring-generalized DRed. After
//!   `datalog::retract_facts_from_grounding` removed every grounded rule
//!   citing a retracted EDB fact, the *cone* — the upward closure of the
//!   removed rules' heads through the surviving rules' dependencies — is
//!   the exact set of facts whose values may change. Classical DRed would
//!   over-delete and re-derive with a ⊖-adjustment, which is only sound
//!   for idempotent ⊕; instead the cone restarts **from ⊥** and
//!   re-derives by naive (Jacobi) rounds against the frozen non-cone
//!   boundary. That restart is exact on *every* semiring: the cone is
//!   upward-closed, so no non-cone equation reads a cone value — the
//!   boundary is independently fixed — and the least fixpoint of the cone
//!   sub-system extended with the boundary is the restriction of the
//!   whole program's least fixpoint. No ⊖, no idempotence requirement,
//!   no fallback.
//!
//! Retracted facts stay in `GroundedProgram::idb_facts` as *zombies*
//! (underivable facts pinned at value 0): keeping the fact indexing
//! prefix-stable is what lets the value vector, the circuits' output
//! numbering, and concurrent snapshot readers survive a delta. A zombie's
//! residual rules (if any) contribute `0 ⊗ … = 0`, which is ⊕-neutral, so
//! values are bit-identical to a from-scratch rebuild fact-for-fact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::time::Instant;

use datalog::{dependency_csr, naive_eval, GroundedProgram};
use semiring::valuation::Valuation;
use semiring::Semiring;
use telemetry::{Counter, Recorder, Stage};

/// A semiring fixpoint kept consistent with a changing grounding.
///
/// Start it from a converged [`datalog::EvalOutcome`] (or any value
/// vector known to be the least fixpoint of the current grounding), then
/// alternate `datalog::extend_grounding` / [`apply_insert`] and
/// `datalog::retract_facts_from_grounding` / [`apply_retract`] as the
/// database changes. [`values`] stays aligned with
/// `GroundedProgram::idb_facts` at every step.
///
/// [`apply_insert`]: MaintainedFixpoint::apply_insert
/// [`apply_retract`]: MaintainedFixpoint::apply_retract
/// [`values`]: MaintainedFixpoint::values
#[derive(Clone, Debug)]
pub struct MaintainedFixpoint<S> {
    values: Vec<S>,
    converged: bool,
}

impl<S: Semiring> MaintainedFixpoint<S> {
    /// Adopt the values of a completed fixpoint run.
    pub fn start(outcome: &datalog::EvalOutcome<S>) -> Self {
        MaintainedFixpoint {
            values: outcome.values.clone(),
            converged: outcome.converged,
        }
    }

    /// Adopt an owned value vector (`converged` says whether it is known
    /// to be the least fixpoint of the current grounding).
    pub fn from_values(values: Vec<S>, converged: bool) -> Self {
        MaintainedFixpoint { values, converged }
    }

    /// Value per IDB fact, aligned with `GroundedProgram::idb_facts`.
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Whether the maintained values are a (budget-respecting) fixpoint.
    /// `false` after any apply that exhausted its budget — treat the
    /// values as stale and re-evaluate from scratch.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Consume the handle, returning the value vector.
    pub fn into_values(self) -> Vec<S> {
        self.values
    }

    /// Repair the fixpoint after `datalog::extend_grounding` appended
    /// grounded rules `base_rules..` (and possibly new IDB facts) to
    /// `gp`. `assign` must value the extended fact-id space; `budget` is
    /// an iteration budget in *equivalent full passes* (same unit as
    /// `datalog::default_budget`).
    ///
    /// Returns `true` when the delta was applied incrementally
    /// (⊕-idempotent semirings: worklist propagation seeded by the new
    /// rules) and `false` on the documented fallback (non-idempotent ⊕
    /// without a ⊖: full naive re-evaluation over the extended
    /// grounding). The values are exact either way.
    pub fn apply_insert<V>(
        &mut self,
        gp: &GroundedProgram,
        assign: &V,
        base_rules: usize,
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        let enabled = rec.enabled();
        let span = enabled.then(Instant::now);
        self.values.resize(gp.num_idb_facts(), S::zero());
        let incremental = S::ADD_IDEMPOTENT;
        if !incremental {
            // Documented fallback criterion: without ⊕-idempotence a
            // re-fired rule's stale contribution is not absorbed, and
            // subtracting it would need a ⊖ the semiring lacks.
            let out = naive_eval(gp, assign, budget);
            self.values = out.values;
            self.converged = out.converged;
        } else {
            self.propagate_from_new_rules(gp, assign, base_rules, budget, rec, enabled);
        }
        if let Some(t0) = span {
            rec.stage_nanos(Stage::Maintain, t0.elapsed().as_nanos() as u64);
        }
        incremental
    }

    /// Semi-naive ⊕-propagation seeded by the appended rules. Old rules
    /// re-fire only when a body fact of theirs strictly grows, exactly as
    /// in `datalog::semi_naive_eval`'s drain phase (every old rule has
    /// already fired in the run that produced the maintained values).
    fn propagate_from_new_rules<V>(
        &mut self,
        gp: &GroundedProgram,
        assign: &V,
        base_rules: usize,
        budget: usize,
        rec: &dyn Recorder,
        enabled: bool,
    ) where
        V: Valuation<S> + ?Sized,
    {
        let num_rules = gp.rules.len();
        if base_rules >= num_rules {
            return; // nothing appended — values are already the fixpoint
        }
        let (start, deps) = dependency_csr(gp);
        let mut queue: VecDeque<u32> = (base_rules..num_rules).map(|r| r as u32).collect();
        let mut pending = vec![false; num_rules];
        pending[base_rules..].fill(true);
        let seed = queue.len();
        let max_firings = budget.saturating_mul(num_rules.max(1)).max(seed);
        let mut firings = 0usize;
        let mut exhausted = false;
        while let Some(ri) = queue.pop_front() {
            if firings == max_firings {
                exhausted = true;
                break;
            }
            firings += 1;
            let ri = ri as usize;
            pending[ri] = false;
            let rule = &gp.rules[ri];
            let mut prod = S::one();
            for &f in &rule.body_edb {
                prod.mul_assign(&assign.value(f));
            }
            for &i in &rule.body_idb {
                prod.mul_assign(&self.values[i]);
            }
            if prod.is_zero() {
                continue;
            }
            let sum = self.values[rule.head].add(&prod);
            if !sum.sr_eq(&self.values[rule.head]) {
                self.values[rule.head] = sum;
                for &dep in &deps[start[rule.head]..start[rule.head + 1]] {
                    let dep = dep as usize;
                    if !pending[dep] {
                        pending[dep] = true;
                        queue.push_back(dep as u32);
                    }
                }
            }
        }
        if enabled {
            rec.counter(Counter::RuleFirings, firings as u64);
        }
        self.converged = self.converged && !exhausted;
    }

    /// Repair the fixpoint after `datalog::retract_facts_from_grounding`
    /// removed the rules citing the retracted facts. `roots` is that
    /// call's return value — the heads of the removed rules; `budget` is
    /// a round budget (same unit as `datalog::default_budget`, which is
    /// always sufficient: the cone re-derivation needs at most
    /// `|cone| + 1` rounds on a p-stable semiring).
    ///
    /// Exact on **every** semiring — see the crate docs for why the
    /// restart-from-⊥ rederivation needs neither ⊖ nor ⊕-idempotence —
    /// so, unlike inserts, there is no fallback path. Returns `true` iff
    /// the cone re-derivation drained within the budget (also recorded in
    /// [`converged`](MaintainedFixpoint::converged)).
    pub fn apply_retract<V>(
        &mut self,
        gp: &GroundedProgram,
        assign: &V,
        roots: &[usize],
        budget: usize,
        rec: &dyn Recorder,
    ) -> bool
    where
        V: Valuation<S> + ?Sized,
    {
        let enabled = rec.enabled();
        let span = enabled.then(Instant::now);
        let n = gp.num_idb_facts();
        debug_assert_eq!(self.values.len(), n, "retract never changes the fact space");

        // Cone: upward closure of the removed rules' heads through the
        // surviving rules' fact → dependent-rule edges.
        let (start, deps) = dependency_csr(gp);
        let mut in_cone = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &root in roots {
            if !in_cone[root] {
                in_cone[root] = true;
                stack.push(root);
            }
        }
        while let Some(i) = stack.pop() {
            for &ri in &deps[start[i]..start[i + 1]] {
                let h = gp.rules[ri as usize].head;
                if !in_cone[h] {
                    in_cone[h] = true;
                    stack.push(h);
                }
            }
        }
        let cone_facts: Vec<usize> = (0..n).filter(|&i| in_cone[i]).collect();
        let mut cone_pos = vec![usize::MAX; n];
        for (k, &i) in cone_facts.iter().enumerate() {
            cone_pos[i] = k;
        }
        let cone_rules: Vec<u32> = gp
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| in_cone[r.head])
            .map(|(ri, _)| ri as u32)
            .collect();

        // Restart the cone from ⊥ and re-derive by naive Jacobi rounds
        // against the frozen boundary (non-cone values are final).
        for &i in &cone_facts {
            self.values[i] = S::zero();
        }
        let mut firings = 0usize;
        let mut drained = cone_rules.is_empty();
        for _ in 0..budget {
            let mut next: Vec<S> = vec![S::zero(); cone_facts.len()];
            for &ri in &cone_rules {
                let rule = &gp.rules[ri as usize];
                let mut prod = S::one();
                for &f in &rule.body_edb {
                    prod.mul_assign(&assign.value(f));
                }
                for &i in &rule.body_idb {
                    prod.mul_assign(&self.values[i]);
                }
                firings += 1;
                next[cone_pos[rule.head]].add_assign(&prod);
            }
            let mut changed = false;
            for (&i, v) in cone_facts.iter().zip(next) {
                if !v.sr_eq(&self.values[i]) {
                    changed = true;
                    self.values[i] = v;
                }
            }
            if !changed {
                drained = true;
                break;
            }
        }
        if enabled {
            rec.counter(Counter::RuleFirings, firings as u64);
        }
        self.converged = self.converged && drained;
        if let Some(t0) = span {
            rec.stage_nanos(Stage::Maintain, t0.elapsed().as_nanos() as u64);
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::{
        default_budget, extend_grounding, ground, parse_program, retract_facts_from_grounding,
        Database, FactId, Program,
    };
    use graphgen::generators;
    use semiring::valuation::{AllOnes, UnitWeights};
    use semiring::{Bool, Counting, Tropical};
    use telemetry::NOOP;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    /// Build a db over the first `upto` edges of `g` (constants interned
    /// for every node so fact ids align with the full-graph database).
    fn db_prefix(p: &Program, g: &graphgen::LabeledDigraph, upto: usize) -> Database {
        let e = p.preds.get("E").unwrap();
        let mut db = Database::new();
        for i in 0..g.num_nodes() {
            db.constant(&format!("v{i}"));
        }
        for &(u, v, _) in &g.edges()[..upto] {
            db.insert(
                e,
                vec![
                    db.node_const(u as usize).unwrap(),
                    db.node_const(v as usize).unwrap(),
                ],
            );
        }
        db
    }

    fn assert_matches_rebuild<S: Semiring, V: semiring::valuation::Valuation<S> + Sync + ?Sized>(
        mf: &MaintainedFixpoint<S>,
        gp: &GroundedProgram,
        rebuilt: &GroundedProgram,
        assign: &V,
    ) {
        assert!(mf.converged());
        let reference = naive_eval::<S, _>(rebuilt, assign, default_budget(rebuilt));
        assert!(reference.converged);
        // Compare per (pred, tuple): the maintained grounding may hold
        // zombies (value 0) the rebuild does not.
        for (i, fact) in gp.idb_facts.iter().enumerate() {
            match rebuilt.fact(fact.0, &fact.1) {
                Some(j) => assert!(
                    mf.values()[i].sr_eq(&reference.values[j]),
                    "{fact:?}: {:?} != {:?}",
                    mf.values()[i],
                    reference.values[j]
                ),
                None => assert!(mf.values()[i].is_zero(), "zombie {fact:?} must be 0"),
            }
        }
        for (j, fact) in rebuilt.idb_facts.iter().enumerate() {
            if !reference.values[j].is_zero() {
                assert!(gp.fact(fact.0, &fact.1).is_some(), "missing {fact:?}");
            }
        }
    }

    #[test]
    fn insert_propagation_matches_rebuild_on_idempotent_semirings() {
        let mut p = tc();
        for seed in 0..3u64 {
            let g = generators::gnm(8, 18, &["E"], seed);
            let (db_full, _) = Database::from_graph(&mut p, &g);
            let rebuilt = ground(&p, &db_full).unwrap();
            let mut db = db_prefix(&p, &g, g.edges().len() - 4);
            let e = p.preds.get("E").unwrap();
            let mut gp = ground(&p, &db).unwrap();
            let unit = UnitWeights::new(Tropical::new(1));
            let mut mf = MaintainedFixpoint::start(&naive_eval::<Tropical, _>(
                &gp,
                &unit,
                default_budget(&gp),
            ));
            // Insert the held-back edges one at a time.
            for k in (g.edges().len() - 4)..g.edges().len() {
                let (u, v, _) = g.edges()[k];
                let delta_start = db.num_facts() as FactId;
                let old_domain = db.domain_size();
                db.insert(
                    e,
                    vec![
                        db.node_const(u as usize).unwrap(),
                        db.node_const(v as usize).unwrap(),
                    ],
                );
                let base_rules = gp.rules.len();
                extend_grounding(&p, &db, &mut gp, delta_start, old_domain, usize::MAX, &NOOP)
                    .unwrap();
                let incremental =
                    mf.apply_insert(&gp, &unit, base_rules, default_budget(&gp), &NOOP);
                assert!(incremental, "Tropical is ⊕-idempotent");
            }
            assert_matches_rebuild(&mf, &gp, &rebuilt, &unit);
        }
    }

    #[test]
    fn insert_falls_back_but_stays_exact_on_counting() {
        let mut p = tc();
        let g = generators::gnm(7, 14, &["E"], 9);
        let (db_full, _) = Database::from_graph(&mut p, &g);
        let rebuilt = ground(&p, &db_full).unwrap();
        let mut db = db_prefix(&p, &g, g.edges().len() - 2);
        let e = p.preds.get("E").unwrap();
        let mut gp = ground(&p, &db).unwrap();
        let unit = UnitWeights::new(Counting::new(1));
        let out = naive_eval::<Counting, _>(&gp, &unit, default_budget(&gp));
        if !out.converged {
            return; // cyclic instance: Counting diverges, nothing to maintain
        }
        let mut mf = MaintainedFixpoint::start(&out);
        let delta_start = db.num_facts() as FactId;
        let old_domain = db.domain_size();
        for &(u, v, _) in &g.edges()[g.edges().len() - 2..] {
            db.insert(
                e,
                vec![
                    db.node_const(u as usize).unwrap(),
                    db.node_const(v as usize).unwrap(),
                ],
            );
        }
        let base_rules = gp.rules.len();
        extend_grounding(&p, &db, &mut gp, delta_start, old_domain, usize::MAX, &NOOP).unwrap();
        let incremental = mf.apply_insert(&gp, &unit, base_rules, default_budget(&gp), &NOOP);
        assert!(!incremental, "Counting is not ⊕-idempotent");
        let reference = naive_eval::<Counting, _>(&rebuilt, &unit, default_budget(&rebuilt));
        if reference.converged {
            assert_matches_rebuild(&mf, &gp, &rebuilt, &unit);
        }
    }

    #[test]
    fn retract_rederives_the_cone_exactly() {
        let mut p = tc();
        for seed in 0..3u64 {
            let g = generators::gnm(8, 18, &["E"], seed);
            let (mut db, edge_facts) = Database::from_graph(&mut p, &g);
            let mut gp = ground(&p, &db).unwrap();
            let unit = UnitWeights::new(Tropical::new(1));
            let mut mf = MaintainedFixpoint::start(&naive_eval::<Tropical, _>(
                &gp,
                &unit,
                default_budget(&gp),
            ));
            // Retract two edges, one at a time.
            for &fid in &edge_facts[..2] {
                let (pred, tuple) = db.fact(fid);
                let tuple = tuple.to_vec();
                db.retract(pred, &tuple);
                let roots = retract_facts_from_grounding(&mut gp, &[fid]);
                assert!(mf.apply_retract(&gp, &unit, &roots, default_budget(&gp), &NOOP));
            }
            let rebuilt = ground(&p, &db).unwrap();
            assert_matches_rebuild(&mf, &gp, &rebuilt, &unit);
        }
    }

    #[test]
    fn retract_is_exact_on_non_idempotent_semirings() {
        // The restart-from-⊥ rederivation needs no ⊖ and no idempotence:
        // Counting on an acyclic instance must match the rebuild too.
        let mut p = tc();
        let g = generators::path(5, "E");
        let (mut db, edge_facts) = Database::from_graph(&mut p, &g);
        let mut gp = ground(&p, &db).unwrap();
        let unit = UnitWeights::new(Counting::new(1));
        let mut mf =
            MaintainedFixpoint::start(&naive_eval::<Counting, _>(&gp, &unit, default_budget(&gp)));
        let fid = edge_facts[2];
        let (pred, tuple) = db.fact(fid);
        let tuple = tuple.to_vec();
        db.retract(pred, &tuple);
        let roots = retract_facts_from_grounding(&mut gp, &[fid]);
        assert!(mf.apply_retract(&gp, &unit, &roots, default_budget(&gp), &NOOP));
        let rebuilt = ground(&p, &db).unwrap();
        assert_matches_rebuild(&mf, &gp, &rebuilt, &unit);
    }

    #[test]
    fn interleaved_inserts_and_retracts_match_rebuild() {
        let p = tc();
        let g = generators::gnm(9, 22, &["E"], 5);
        let e = p.preds.get("E").unwrap();
        // Mirror database so fact ids in the maintained run are our own.
        let mut db = db_prefix(&p, &g, g.edges().len() - 3);
        let mut gp = ground(&p, &db).unwrap();
        let mut mf =
            MaintainedFixpoint::start(&naive_eval::<Bool, _>(&gp, &AllOnes, default_budget(&gp)));
        // Script: insert one held-back edge, retract a live one, repeat.
        let held: Vec<(u32, u32)> = g.edges()[g.edges().len() - 3..]
            .iter()
            .map(|&(u, v, _)| (u, v))
            .collect();
        let retire: Vec<(u32, u32)> = g.edges()[..3].iter().map(|&(u, v, _)| (u, v)).collect();
        for k in 0..3 {
            let (u, v) = held[k];
            let delta_start = db.num_facts() as FactId;
            let old_domain = db.domain_size();
            db.insert(
                e,
                vec![
                    db.node_const(u as usize).unwrap(),
                    db.node_const(v as usize).unwrap(),
                ],
            );
            let base_rules = gp.rules.len();
            extend_grounding(&p, &db, &mut gp, delta_start, old_domain, usize::MAX, &NOOP).unwrap();
            assert!(mf.apply_insert(&gp, &AllOnes, base_rules, default_budget(&gp), &NOOP));
            let (u, v) = retire[k];
            let tuple = vec![
                db.node_const(u as usize).unwrap(),
                db.node_const(v as usize).unwrap(),
            ];
            if let Some(fid) = db.retract(e, &tuple) {
                let roots = retract_facts_from_grounding(&mut gp, &[fid]);
                assert!(mf.apply_retract(&gp, &AllOnes, &roots, default_budget(&gp), &NOOP));
            }
        }
        let rebuilt = ground(&p, &db).unwrap();
        assert_matches_rebuild(&mf, &gp, &rebuilt, &AllOnes);
    }
}
