//! The workspace-wide typed error of `datalog-circuits`.
//!
//! Every fallible public API in `grammar`, `datalog`, `circuit`, and
//! `provcirc` returns [`Error`] (re-exported from each crate root), so `?`
//! composes across layers and callers can match on failure classes instead
//! of scraping strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Convenient result alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong between Datalog text and a semiring answer.
///
/// The enum is deliberately `Clone`: the [`Engine`] session caches fallible
/// computations (grounding, provenance) and must be able to replay a stored
/// failure.
///
/// [`Engine`]: https://docs.rs/provcirc
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Textual input (Datalog program, grammar, regex, graph file) failed
    /// to parse. `line` is 1-based when known.
    Parse {
        /// What was being parsed ("program", "grammar", "regex", …).
        what: &'static str,
        /// 1-based source line, when known.
        line: Option<usize>,
        /// Parser diagnostic.
        message: String,
    },
    /// A structurally invalid program (arity clash, unsafe head variable,
    /// non-IDB target, empty body).
    InvalidProgram(String),
    /// A predicate name not interned in the program.
    UnknownPredicate(String),
    /// A malformed query (wrong tuple arity, constant outside the domain
    /// where one is required, …).
    BadQuery(String),
    /// Command-line / API misuse (missing flag, unknown subcommand) —
    /// distinct from [`Error::BadQuery`], which is about query *content*.
    Usage(String),
    /// Grounding exceeded the configured rule limit.
    GroundingLimit {
        /// The limit that was hit.
        max_rules: usize,
    },
    /// Fixpoint evaluation did not converge within its iteration budget.
    Diverged {
        /// The budget that was exhausted.
        iterations: usize,
    },
    /// The requested operation does not apply to this program/input
    /// combination (graph-only strategy without a graph, infinite language
    /// where a finite one is required, non-chain program, cyclic DAG input,
    /// …).
    Unsupported(String),
    /// A structurally invalid circuit (forward reference, output out of
    /// range).
    InvalidCircuit(String),
    /// An oracle cross-check failed: a construction disagrees with the
    /// brute-force definition of provenance.
    VerificationFailed(String),
    /// An enumeration blew past its cap (proof trees, expansions).
    TooLarge(String),
    /// Filesystem / CLI-level failure.
    Io {
        /// The offending path.
        path: String,
        /// The OS diagnostic.
        message: String,
    },
}

impl Error {
    /// Shorthand for [`Error::Usage`].
    pub fn usage(message: impl Into<String>) -> Error {
        Error::Usage(message.into())
    }

    /// Shorthand for a [`Error::Parse`] without line information.
    pub fn parse(what: &'static str, message: impl Into<String>) -> Error {
        Error::Parse {
            what,
            line: None,
            message: message.into(),
        }
    }

    /// Shorthand for a [`Error::Parse`] at a 1-based line.
    pub fn parse_at(what: &'static str, line: usize, message: impl Into<String>) -> Error {
        Error::Parse {
            what,
            line: Some(line),
            message: message.into(),
        }
    }

    /// Shorthand for [`Error::Unsupported`].
    pub fn unsupported(message: impl Into<String>) -> Error {
        Error::Unsupported(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                what,
                line: Some(line),
                message,
            } => write!(f, "{what} parse error at line {line}: {message}"),
            Error::Parse {
                what,
                line: None,
                message,
            } => write!(f, "{what} parse error: {message}"),
            Error::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            Error::UnknownPredicate(p) => write!(f, "unknown predicate '{p}'"),
            Error::BadQuery(m) => write!(f, "bad query: {m}"),
            Error::Usage(m) => write!(f, "{m}"),
            Error::GroundingLimit { max_rules } => {
                write!(
                    f,
                    "grounding exceeds the limit of {max_rules} grounded rules"
                )
            }
            Error::Diverged { iterations } => write!(
                f,
                "fixpoint evaluation did not converge within {iterations} iterations"
            ),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::InvalidCircuit(m) => write!(f, "invalid circuit: {m}"),
            Error::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            Error::TooLarge(m) => write!(f, "instance too large: {m}"),
            Error::Io { path, message } => write!(f, "io error on {path}: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::parse_at("program", 3, "missing ':-'");
        assert_eq!(e.to_string(), "program parse error at line 3: missing ':-'");
        assert!(Error::GroundingLimit { max_rules: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn errors_are_clone_and_eq() {
        let e = Error::unsupported("no graph");
        assert_eq!(e.clone(), e);
    }
}
