//! Edge-labeled directed multigraphs.

use grammar::{Alphabet, Terminal};

/// A node id.
pub type NodeId = u32;

/// An edge id (index into the edge list).
pub type EdgeId = usize;

/// An edge-labeled directed multigraph. Each edge is a potential EDB fact;
/// its index doubles as the provenance-variable id for that fact.
#[derive(Clone, Debug, Default)]
pub struct LabeledDigraph {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, Terminal)>,
    /// The label alphabet.
    pub alphabet: Alphabet,
}

impl LabeledDigraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        LabeledDigraph {
            num_nodes: n,
            edges: Vec::new(),
            alphabet: Alphabet::new(),
        }
    }

    /// An empty graph with `n` nodes sharing an existing alphabet.
    pub fn with_alphabet(n: usize, alphabet: Alphabet) -> Self {
        LabeledDigraph {
            num_nodes: n,
            edges: Vec::new(),
            alphabet,
        }
    }

    /// Number of nodes (the active-domain size `n` of the paper).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges (the input size `m` of the paper).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add `count` fresh nodes, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.num_nodes as NodeId;
        self.num_nodes += count;
        first
    }

    /// Add an edge with an interned label name, returning its id.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: &str) -> EdgeId {
        let t = self.alphabet.intern(label);
        self.add_edge_t(src, dst, t)
    }

    /// Add an edge with an already-interned label.
    pub fn add_edge_t(&mut self, src: NodeId, dst: NodeId, label: Terminal) -> EdgeId {
        assert!(
            (src as usize) < self.num_nodes && (dst as usize) < self.num_nodes,
            "edge endpoints must be existing nodes"
        );
        self.edges.push((src, dst, label));
        self.edges.len() - 1
    }

    /// The edge list `(src, dst, label)`.
    pub fn edges(&self) -> &[(NodeId, NodeId, Terminal)] {
        &self.edges
    }

    /// The edge with the given id.
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, Terminal) {
        self.edges[e]
    }

    /// Out-adjacency lists: `adj[u] = [(edge id, dst, label)]`.
    pub fn out_adjacency(&self) -> Vec<Vec<(EdgeId, NodeId, Terminal)>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (e, &(u, v, t)) in self.edges.iter().enumerate() {
            adj[u as usize].push((e, v, t));
        }
        adj
    }

    /// In-adjacency lists: `adj[v] = [(edge id, src, label)]`.
    pub fn in_adjacency(&self) -> Vec<Vec<(EdgeId, NodeId, Terminal)>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (e, &(u, v, t)) in self.edges.iter().enumerate() {
            adj[v as usize].push((e, u, t));
        }
        adj
    }

    /// Plain (label-blind) reachability from `src` — BFS oracle for tests.
    pub fn reachable_from(&self, src: NodeId) -> Vec<bool> {
        let adj = self.out_adjacency();
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![src];
        seen[src as usize] = true;
        while let Some(u) = stack.pop() {
            for &(_, v, _) in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Label-blind shortest hop-count distances from `src` (`None` if
    /// unreachable) — oracle for tropical-semiring tests with unit weights.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u64>> {
        let adj = self.out_adjacency();
        let mut dist = vec![None; self.num_nodes];
        dist[src as usize] = Some(0);
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize].expect("visited");
            for &(_, v, _) in &adj[u as usize] {
                if dist[v as usize].is_none() {
                    dist[v as usize] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = LabeledDigraph::new(3);
        let e0 = g.add_edge(0, 1, "E");
        let e1 = g.add_edge(1, 2, "E");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(e0), (0, 1, g.alphabet.get("E").unwrap()));
        assert_eq!(g.edge(e1).0, 1);
    }

    #[test]
    fn adjacency_is_consistent() {
        let mut g = LabeledDigraph::new(3);
        g.add_edge(0, 1, "a");
        g.add_edge(0, 2, "b");
        g.add_edge(1, 2, "a");
        let out = g.out_adjacency();
        let inn = g.in_adjacency();
        assert_eq!(out[0].len(), 2);
        assert_eq!(inn[2].len(), 2);
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 3);
        assert_eq!(inn.iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn reachability_oracle() {
        let mut g = LabeledDigraph::new(4);
        g.add_edge(0, 1, "E");
        g.add_edge(1, 2, "E");
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, true, false]);
        assert_eq!(g.bfs_distances(0), vec![Some(0), Some(1), Some(2), None]);
    }

    #[test]
    #[should_panic]
    fn rejects_dangling_edges() {
        let mut g = LabeledDigraph::new(2);
        g.add_edge(0, 5, "E");
    }
}
