//! Graph × DFA product (Theorem 5.9, second direction).
//!
//! An RPQ over graph `G` reduces to plain transitive closure over the
//! product of `G` with the DFA of the query language: product node
//! `(v, q)`, and an edge `(u, q) → (v, q')` for every graph edge `u →ᵃ v`
//! with DFA transition `q →ᵃ q'`. The product has `O(m)` edges and `O(n)`
//! nodes (DFA size is a constant in data complexity), which is what makes
//! the reduction size- and depth-preserving. Each product edge remembers the
//! originating graph edge, so provenance variables project back (the circuit
//! rewiring step of the paper's proof).

use grammar::Dfa;

use crate::graph::{EdgeId, LabeledDigraph, NodeId};

/// The product of a labeled graph with a DFA.
#[derive(Clone, Debug)]
pub struct ProductGraph {
    /// Number of product nodes (`graph nodes × DFA states`).
    pub num_nodes: usize,
    /// Product edges `(src, dst)` — labels are no longer needed.
    pub edges: Vec<(NodeId, NodeId)>,
    /// For each product edge, the originating graph edge (the provenance
    /// variable it carries).
    pub edge_origin: Vec<EdgeId>,
    dfa_states: usize,
}

impl ProductGraph {
    /// The product node id for graph node `v` in DFA state `q`.
    pub fn node(&self, v: NodeId, q: usize) -> NodeId {
        v * self.dfa_states as NodeId + q as NodeId
    }

    /// Number of DFA states.
    pub fn dfa_states(&self) -> usize {
        self.dfa_states
    }
}

/// Build the product graph. The graph's alphabet must be compatible with the
/// DFA's (same `Terminal` ids — compile the RPQ against the graph's
/// alphabet).
pub fn product_with_dfa(graph: &LabeledDigraph, dfa: &Dfa) -> ProductGraph {
    let q_count = dfa.num_states;
    let mut edges = Vec::new();
    let mut edge_origin = Vec::new();
    for (e, &(u, v, t)) in graph.edges().iter().enumerate() {
        if (t as usize) >= dfa.num_terminals {
            continue; // label unknown to the query: no transition anywhere
        }
        for q in 0..q_count {
            if let Some(q2) = dfa.step(q, t) {
                edges.push((
                    u * q_count as NodeId + q as NodeId,
                    v * q_count as NodeId + q2 as NodeId,
                ));
                edge_origin.push(e);
            }
        }
    }
    ProductGraph {
        num_nodes: graph.num_nodes() * q_count,
        edges,
        edge_origin,
        dfa_states: q_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use grammar::Regex;

    /// Boolean RPQ answer via the product graph: (u,v) iff some accept state
    /// (v, qf) is reachable from (u, q0).
    fn rpq_via_product(graph: &LabeledDigraph, dfa: &Dfa, src: NodeId, dst: NodeId) -> bool {
        let prod = product_with_dfa(graph, dfa);
        let start = prod.node(src, dfa.start);
        // BFS on product edges.
        let mut adj = vec![Vec::new(); prod.num_nodes];
        for &(u, v) in &prod.edges {
            adj[u as usize].push(v);
        }
        let mut seen = vec![false; prod.num_nodes];
        let mut stack = vec![start];
        seen[start as usize] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        (0..dfa.num_states).any(|q| dfa.accepting[q] && seen[prod.node(dst, q) as usize])
    }

    #[test]
    fn product_rpq_matches_word_membership_on_paths() {
        for (pattern, word, expect) in [
            ("a b* c", vec!["a", "b", "b", "c"], true),
            ("a b* c", vec!["a", "c"], true),
            ("a b* c", vec!["a", "b"], false),
            ("(a b)+", vec!["a", "b", "a", "b"], true),
            ("(a b)+", vec!["a", "b", "a"], false),
        ] {
            let mut g = generators::word_path(&word);
            let re = Regex::parse(pattern).unwrap();
            let dfa = Dfa::compile(&re, &mut g.alphabet);
            let end = g.num_nodes() as NodeId - 1;
            assert_eq!(
                rpq_via_product(&g, &dfa, 0, end),
                expect,
                "{pattern} on {word:?}"
            );
        }
    }

    #[test]
    fn product_size_is_linear_in_graph_size() {
        let mut g = generators::gnm(30, 120, &["a", "b"], 11);
        let dfa = Dfa::compile(&Regex::parse("a (b a)*").unwrap(), &mut g.alphabet);
        let prod = product_with_dfa(&g, &dfa);
        assert!(prod.edges.len() <= g.num_edges() * dfa.num_states);
        assert_eq!(prod.num_nodes, g.num_nodes() * dfa.num_states);
        // Every product edge projects to a real graph edge.
        for &e in &prod.edge_origin {
            assert!(e < g.num_edges());
        }
    }

    #[test]
    fn tc_as_rpq_agrees_with_plain_reachability() {
        let mut g = generators::gnm(15, 40, &["E"], 5);
        let dfa = Dfa::compile(&Regex::parse("E E*").unwrap(), &mut g.alphabet);
        for src in 0..5 {
            let reach = g.reachable_from(src);
            for dst in 0..g.num_nodes() as NodeId {
                let expect =
                    reach[dst as usize] && src != dst || (src == dst && has_cycle_through(&g, src));
                // E+ requires at least one edge; src==dst needs a cycle.
                assert_eq!(
                    rpq_via_product(&g, &dfa, src, dst),
                    expect,
                    "src={src} dst={dst}"
                );
            }
        }
    }

    fn has_cycle_through(g: &LabeledDigraph, v: NodeId) -> bool {
        let adj = g.out_adjacency();
        // v → w →* v for some successor w.
        adj[v as usize]
            .iter()
            .any(|&(_, w, _)| g.reachable_from(w)[v as usize])
    }
}
