//! Generators for the input families the paper's bounds are stated on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{LabeledDigraph, NodeId};

/// A simple path `0 → 1 → … → n` with all edges labeled `label`.
pub fn path(n_edges: usize, label: &str) -> LabeledDigraph {
    let mut g = LabeledDigraph::new(n_edges + 1);
    for i in 0..n_edges {
        g.add_edge(i as NodeId, i as NodeId + 1, label);
    }
    g
}

/// A path spelling the given label word (used by Prop 5.5's boundedness
/// witness and the pumping reductions).
pub fn word_path(word: &[&str]) -> LabeledDigraph {
    let mut g = LabeledDigraph::new(word.len() + 1);
    for (i, label) in word.iter().enumerate() {
        g.add_edge(i as NodeId, i as NodeId + 1, label);
    }
    g
}

/// A directed cycle of `n` nodes labeled `label`.
pub fn cycle(n: usize, label: &str) -> LabeledDigraph {
    assert!(n >= 1);
    let mut g = LabeledDigraph::new(n);
    for i in 0..n {
        g.add_edge(i as NodeId, ((i + 1) % n) as NodeId, label);
    }
    g
}

/// An `(ℓ, L)`-layered graph (paper §3): `L` layers of `ℓ` vertices each,
/// edges only between consecutive layers, plus distinguished source `s`
/// (before layer 0) and target `t` (after the last layer).
///
/// Returns the graph plus `(s, t)`. `density` in `[0,1]` is the probability
/// of each inter-layer edge; `s`/`t` connect to the full first/last layer.
/// The Karchmer–Wigderson lower-bound family (Thm 3.4) is `ℓ = n^0.1`
/// layered graphs; this generator covers it and Thm 3.5's upper bound.
pub fn layered(
    width: usize,
    layers: usize,
    density: f64,
    label: &str,
    seed: u64,
) -> (LabeledDigraph, NodeId, NodeId) {
    assert!(width >= 1 && layers >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledDigraph::new(width * layers + 2);
    let s: NodeId = (width * layers) as NodeId;
    let t: NodeId = s + 1;
    let node = |layer: usize, i: usize| (layer * width + i) as NodeId;
    for i in 0..width {
        g.add_edge(s, node(0, i), label);
        g.add_edge(node(layers - 1, i), t, label);
    }
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                if rng.gen_bool(density) {
                    g.add_edge(node(layer, i), node(layer + 1, j), label);
                }
            }
        }
    }
    (g, s, t)
}

/// A complete digraph on `n` nodes (no self-loops), single label.
pub fn complete(n: usize, label: &str) -> LabeledDigraph {
    let mut g = LabeledDigraph::new(n);
    for i in 0..n as NodeId {
        for j in 0..n as NodeId {
            if i != j {
                g.add_edge(i, j, label);
            }
        }
    }
    g
}

/// A `G(n, m)` random digraph: `m` distinct directed edges chosen uniformly,
/// labels drawn uniformly from `labels`.
pub fn gnm(n: usize, m: usize, labels: &[&str], seed: u64) -> LabeledDigraph {
    assert!(n >= 2 && !labels.is_empty());
    let max_edges = n * (n - 1);
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledDigraph::new(n);
    let mut used = std::collections::HashSet::with_capacity(m);
    while used.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && used.insert((u, v)) {
            let label = labels[rng.gen_range(0..labels.len())];
            g.add_edge(u, v, label);
        }
    }
    g
}

/// A 2D grid graph with rightward edges labeled `right` and downward edges
/// labeled `down`; node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize, right: &str, down: &str) -> LabeledDigraph {
    let mut g = LabeledDigraph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), right);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), down);
            }
        }
    }
    g
}

/// A path spelling a uniformly random balanced-parentheses word of length
/// `2 * pairs` over labels `L`/`R` (the Dyck-1 workload of Example 6.4).
pub fn dyck_path(pairs: usize, seed: u64) -> LabeledDigraph {
    let word = random_dyck_word(pairs, seed);
    let labels: Vec<&str> = word
        .iter()
        .map(|&open| if open { "L" } else { "R" })
        .collect();
    word_path(&labels)
}

/// A uniformly random balanced word as a vec of open/close flags, via the
/// cycle lemma on a random permutation of `pairs` opens and `pairs` closes.
pub fn random_dyck_word(pairs: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random sequence with equal opens/closes.
    let mut seq: Vec<bool> = std::iter::repeat_n(true, pairs)
        .chain(std::iter::repeat_n(false, pairs))
        .collect();
    for i in (1..seq.len()).rev() {
        let j = rng.gen_range(0..=i);
        seq.swap(i, j);
    }
    // Cycle-lemma rotation to the unique balanced rotation of the
    // corresponding ±1 sequence (for sequences summing to 0 this yields a
    // nonnegative-prefix word; standard Dvoretzky–Motzkin argument).
    let mut best_pos = 0;
    let mut sum = 0i64;
    let mut min_sum = 0i64;
    for (i, &open) in seq.iter().enumerate() {
        sum += if open { 1 } else { -1 };
        if sum < min_sum {
            min_sum = sum;
            best_pos = i + 1;
        }
    }
    let mut rotated = Vec::with_capacity(seq.len());
    rotated.extend_from_slice(&seq[best_pos..]);
    rotated.extend_from_slice(&seq[..best_pos]);
    debug_assert!(is_balanced(&rotated));
    rotated
}

fn is_balanced(word: &[bool]) -> bool {
    let mut depth = 0i64;
    for &open in word {
        depth += if open { 1 } else { -1 };
        if depth < 0 {
            return false;
        }
    }
    depth == 0
}

/// A random DAG with edges only from lower to higher node ids — acyclic TC
/// workloads (bounded path lengths without layering).
pub fn random_dag(n: usize, density: f64, label: &str, seed: u64) -> LabeledDigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledDigraph::new(n);
    for i in 0..n as NodeId {
        for j in (i + 1)..n as NodeId {
            if rng.gen_bool(density) {
                g.add_edge(i, j, label);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5, "E");
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert!(g.reachable_from(0)[5]);
        assert!(!g.reachable_from(5)[0]);
    }

    #[test]
    fn word_path_spells_word() {
        let g = word_path(&["a", "b", "a"]);
        let names: Vec<&str> = g
            .edges()
            .iter()
            .map(|&(_, _, t)| g.alphabet.name(t))
            .collect();
        assert_eq!(names, vec!["a", "b", "a"]);
    }

    #[test]
    fn cycle_reaches_everything() {
        let g = cycle(4, "E");
        assert!(g.reachable_from(2).iter().all(|&r| r));
    }

    #[test]
    fn layered_has_only_consecutive_edges() {
        let (g, s, t) = layered(3, 4, 1.0, "E", 7);
        assert_eq!(g.num_nodes(), 3 * 4 + 2);
        // Full density: s reaches t.
        assert!(g.reachable_from(s)[t as usize]);
        // Every non-s/t edge goes between consecutive layers.
        for &(u, v, _) in g.edges() {
            if u == s || v == t {
                continue;
            }
            let lu = u as usize / 3;
            let lv = v as usize / 3;
            assert_eq!(lv, lu + 1, "edge {u}->{v} skips layers");
        }
    }

    #[test]
    fn gnm_has_requested_edges_and_is_deterministic() {
        let g1 = gnm(10, 30, &["a", "b"], 42);
        let g2 = gnm(10, 30, &["a", "b"], 42);
        assert_eq!(g1.num_edges(), 30);
        assert_eq!(g1.edges(), g2.edges());
        let g3 = gnm(10, 30, &["a", "b"], 43);
        assert_ne!(g1.edges(), g3.edges());
    }

    #[test]
    fn gnm_caps_at_max_edges() {
        let g = gnm(3, 100, &["a"], 1);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn dyck_words_are_balanced_and_deterministic() {
        for pairs in [1, 2, 5, 20] {
            let w = random_dyck_word(pairs, 9);
            assert_eq!(w.len(), 2 * pairs);
            assert!(is_balanced(&w));
            assert_eq!(w, random_dyck_word(pairs, 9));
        }
    }

    #[test]
    fn dyck_path_labels() {
        let g = dyck_path(3, 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.alphabet.len(), 2);
    }

    #[test]
    fn random_dag_is_acyclic() {
        let g = random_dag(12, 0.5, "E", 3);
        for &(u, v, _) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        assert_eq!(complete(5, "E").num_edges(), 20);
    }
}
