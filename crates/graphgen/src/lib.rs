//! Workload substrate: edge-labeled directed graphs and generators.
//!
//! The paper's bounds are stated against specific input families — paths
//! spelling a word (Prop 5.5, Thm 5.9), `(ℓ, L)`-layered graphs (Thm 3.4,
//! 3.5, 5.11, 6.8), dense/sparse random graphs (the O(mn) vs O(n³ log n)
//! trade-off of Thms 5.6/5.7), and Dyck-labeled graphs (Example 6.4). This
//! crate generates all of them, plus the graph × DFA product of Theorem 5.9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod product;

pub use graph::{EdgeId, LabeledDigraph, NodeId};
pub use product::{product_with_dfa, ProductGraph};
