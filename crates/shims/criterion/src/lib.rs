//! Offline shim for the `criterion` crate: just enough API to compile and
//! run the workspace benches with `cargo bench`. Reports the median
//! wall-clock time of a small fixed sample — no statistics, no plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Record the group's throughput basis (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes"),
        }
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time a closure: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "  {name}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($func(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls >= 3);
    }
}
