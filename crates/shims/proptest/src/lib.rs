//! Offline shim for the `proptest` crate: deterministic random testing with
//! the subset of the proptest 1.x API this workspace uses. No shrinking —
//! failures report the generated inputs via the assertion message instead.
//!
//! Like the real proptest, the `PROPTEST_CASES` environment variable caps
//! the per-test case count (it only lowers, never raises, the configured
//! count) — CI sets it to keep the property suites within its time budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case of a test run.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (type erasure for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.sample(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    sample: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> OneOf<V> {
    /// Build from weighted boxed strategies.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty());
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        self.options.last().expect("non-empty").1.sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
int_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i128 - self.start as i128) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over all values of a type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A vector with length drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// [`fn@vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` with size drawn from `len` (duplicates collapse).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    /// [`btree_set`] strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the shim trades coverage for
        // CI latency.
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure (no shrinking in the shim).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Run one property function over `cases` deterministic cases.
///
/// The `PROPTEST_CASES` environment variable (when set to a positive
/// integer) caps the count, mirroring the real proptest's env override.
pub fn run_cases<F>(test_name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) if cap > 0 => cases.min(cap),
        _ => cases,
    };
    // Per-test deterministic seed stream: hash of the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..cases {
        let mut rng = TestRng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {i} of {test_name} failed: {msg}")
            }
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Property-test entry point: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Weighted strategy choice: `prop_oneof![3 => a, 1 => b]` (weights
/// optional, defaulting to 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments survive the macro.
        #[test]
        fn mapped_tuples(v in (1usize..4, 0u32..7).prop_map(|(a, b)| a + b as usize)) {
            prop_assert!(v < 11);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_collections(
            x in prop_oneof![9 => 0u64..10, 1 => Just(99u64)],
            v in collection::vec(0u32..5, 0..4),
        ) {
            prop_assert!(x < 10 || x == 99);
            prop_assert!(v.len() < 4);
        }
    }
}
