//! Offline shim for the `rand` crate: the subset of the 0.8 API used by
//! this workspace (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`),
//! backed by a SplitMix64 generator. Deterministic for a given seed, but
//! the streams differ from the real `rand::StdRng` — seeds baked into
//! tests were chosen against *this* generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator (u64 output).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(&mut |bound| next_below(self, bound))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform value in `[0, bound)` by rejection-free multiply-shift.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift; bias is negligible for the small bounds the
    // generators use.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample; `draw(bound)` returns a uniform `[0, bound)`.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + draw(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + draw(span) as $t
            }
        }
    )*};
}
int_range!(usize, u32, u64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..50), b.gen_range(0usize..50));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
