//! The `Engine` session facade: one entry point from Datalog text to
//! semiring answers.
//!
//! The paper's pipeline — parse, ground (§2.1), classify (§4–§6), compile a
//! provenance circuit (§3, §5, §6), evaluate over a semiring (§2.3–§2.4) —
//! used to be a scatter of free functions across five crates. An [`Engine`]
//! owns one program/database pair and **lazily caches** every stage, so a
//! session that asks many questions about the same instance grounds and
//! classifies exactly once:
//!
//! ```
//! use provcirc::{Engine, EvalStrategy, Strategy};
//! use semiring::{Bool, Semiring, Tropical, UnitWeights, AllOnes};
//!
//! let engine = Engine::builder()
//!     .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
//!     .graph(&graphgen::generators::path(4, "E"))
//!     .build()
//!     .unwrap();
//!
//! // One grounding serves evaluation, provenance, and compilation.
//! let q = engine.query("T", &["v0", "v4"]).unwrap();
//! assert_eq!(q.eval::<Bool, _>(&AllOnes).unwrap(), Bool(true));
//! assert_eq!(
//!     q.eval(&UnitWeights::new(Tropical::new(1))).unwrap(),
//!     Tropical::new(4)
//! );
//! let compiled = q.circuit(Strategy::Auto).unwrap();
//! assert_eq!(
//!     compiled.circuit.eval(&UnitWeights::new(Tropical::new(1))),
//!     Tropical::new(4)
//! );
//! assert_eq!(engine.cache_stats().groundings, 1);
//!
//! // Evaluation runs the delta-driven semi-naive fixpoint by default;
//! // opt back into the naive ICO when its iteration count is the point
//! // (the §4 boundedness probe).
//! assert_eq!(engine.eval_strategy(), EvalStrategy::SemiNaive);
//! let probe = Engine::builder()
//!     .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
//!     .graph(&graphgen::generators::path(4, "E"))
//!     .eval_strategy(EvalStrategy::Naive)
//!     .build()
//!     .unwrap();
//! let iters = probe.fixpoint::<Bool, _>(&AllOnes).unwrap().iterations;
//! assert!(iters >= 4); // grows with the path length: unbounded program
//!
//! // Grounding and evaluation shard across the session's `parallelism`
//! // (available cores by default; 1 = the exact sequential code path).
//! // Groundings are bit-identical whatever the thread count.
//! let sharded = Engine::builder()
//!     .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
//!     .graph(&graphgen::generators::path(4, "E"))
//!     .parallelism(4)
//!     .build()
//!     .unwrap();
//! assert_eq!(sharded.parallelism(), 4);
//! assert_eq!(
//!     sharded.query("T", &["v0", "v4"]).unwrap()
//!         .eval(&UnitWeights::new(Tropical::new(1))).unwrap(),
//!     Tropical::new(4)
//! );
//! ```

use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use circuit::Circuit;
use datalog::{
    default_budget, extend_grounding, magic_point_eval, par_eval_with_strategy_recorded,
    par_fused_eval_recorded, par_ground_with_limit_recorded, par_naive_eval_recorded,
    parse_program, retract_facts_from_grounding, ConstId, Database, EvalOutcome, EvalStrategy,
    FactId, FusedOutcome, GroundedProgram, PredId, Program,
};
use graphgen::{LabeledDigraph, NodeId};
use provcirc_error::Error;
use semiring::valuation::{AllOnes, Valuation, VarTags};
use semiring::{Semiring, Sorp};
use telemetry::{CacheEvent, Counter, MetricsReport, PipelineMetrics, Recorder, Stage};

use crate::classify::{classify_program, Classification};
use crate::compile::{self, Compiled, Strategy};

/// Counters describing how much work an [`Engine`] actually performed —
/// repeated queries against the same session must not redo shared stages.
///
/// Since the telemetry layer landed this is a *view*: the counters live in
/// the session's [`PipelineMetrics`] collector (as
/// [`CacheEvent`]s, counted whether or not
/// telemetry is enabled) and [`Engine::cache_stats`] snapshots them here
/// for compatibility.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Times the grounded program was computed (at most 1 per session).
    pub groundings: usize,
    /// Times the program was classified (at most 1 per session).
    pub classifications: usize,
    /// Times the provenance fixpoint (over [`Sorp`]) was run (at most 1).
    pub provenance_runs: usize,
    /// Circuits actually constructed.
    pub circuits_built: usize,
    /// Circuit requests served from the per-fact cache.
    pub circuit_cache_hits: usize,
    /// Evaluations that requested [`EvalStrategy::SemiNaive`] but fell
    /// back to naive because the semiring is not ⊕-idempotent (the
    /// fallback is recorded in [`datalog::EvalOutcome::strategy`]).
    pub seminaive_fallbacks: usize,
}

/// Cache key of a compiled circuit: the queried fact plus the resolved
/// strategy.
pub(crate) type CircuitKey = (PredId, Vec<ConstId>, Strategy);

/// Which grounding/evaluation pipeline [`Query::eval`] routes through.
///
/// The knob affects `Query::eval` (and through it the server's `QUERY`
/// path) only: [`Engine::fixpoint`], provenance, circuit compilation, and
/// incremental maintenance always use the materialized grounding — those
/// consumers need the grounded rules themselves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Materialize the full grounding (cached per session), then run the
    /// fixpoint over it. The right choice when the session asks many
    /// questions of the same instance — the grounding is paid once.
    #[default]
    Materialized,
    /// Fused ground+eval ([`datalog::fused_eval`]): stream every grounded
    /// rule straight into the semi-naive ⊕-worklist as discovery
    /// enumerates it, never materializing a rule vector. The one-shot
    /// query mode: each `eval` call re-grounds from scratch, so it wins
    /// when the grounding dominates and is asked for once (`BENCH_grounding`
    /// measures the crossover). Non-⊕-idempotent semirings fall back to
    /// materialize + naive inside the call.
    Fused,
    /// Demand-driven point queries ([`datalog::magic_point_eval`]): for a
    /// bound-argument goal over a left-linear chain program, rewrite with
    /// magic predicates and ground only the query cone. Ineligible goals
    /// fall back to [`Pipeline::Materialized`] transparently.
    Magic,
}

impl Pipeline {
    /// Parse a pipeline name as used by `DATALOG_PIPELINE` and the wire
    /// protocol's `PIPELINE` clause.
    pub fn parse(s: &str) -> Option<Pipeline> {
        match s.trim().to_ascii_lowercase().as_str() {
            "materialized" => Some(Pipeline::Materialized),
            "fused" => Some(Pipeline::Fused),
            "magic" => Some(Pipeline::Magic),
            _ => None,
        }
    }

    /// The wire name of the pipeline.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::Materialized => "materialized",
            Pipeline::Fused => "fused",
            Pipeline::Magic => "magic",
        }
    }
}

/// What one write batch ([`Engine::insert_facts`] /
/// [`Engine::retract_facts`]) did to the session.
///
/// `base_rules` (inserts) and `roots` (retracts) are the handles the
/// value-maintenance layer needs: pass them, with the engine's updated
/// [`grounding`](Engine::grounding), to
/// `incremental::MaintainedFixpoint::apply_insert` /
/// `apply_retract` to repair a semiring fixpoint in place instead of
/// re-running it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The session epoch *after* the write (bumped once per batch that
    /// changed the database; snapshots carry the epoch they froze).
    pub epoch: u64,
    /// Fact ids actually inserted (fresh ids; duplicates of existing
    /// facts are skipped) or retracted (now tombstoned).
    pub facts: Vec<FactId>,
    /// Grounded-rule count before the delta extension — the seed point
    /// for `MaintainedFixpoint::apply_insert`. 0 when no grounding was
    /// cached (nothing was extended).
    pub base_rules: usize,
    /// Heads of the grounded rules removed by a retraction (indices into
    /// `GroundedProgram::idb_facts`) — the cone roots for
    /// `MaintainedFixpoint::apply_retract`. Empty for inserts.
    pub roots: Vec<usize>,
    /// Whether a cached grounding was updated **in place** (delta
    /// extension or rule retirement). `false` when nothing was cached
    /// yet — the write was a plain database mutation.
    pub maintained: bool,
    /// `false` exactly when a cached grounding had to be discarded (the
    /// delta extension failed, or a cached grounding error went stale):
    /// the next read re-grounds from scratch. Counted in the
    /// `incremental_fallbacks` metric.
    pub incremental: bool,
}

/// Builder for an [`Engine`] session.
///
/// Provide a program (text or AST) and an instance (a [`Database`], a
/// labeled graph, or nothing for an empty database), then [`build`].
///
/// [`build`]: EngineBuilder::build
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    text: Option<String>,
    program: Option<Program>,
    database: Option<Database>,
    graph: Option<LabeledDigraph>,
    seed_facts: Vec<(String, Vec<String>)>,
    horizon: usize,
    max_ground_rules: Option<usize>,
    eval_budget: Option<usize>,
    eval_strategy: EvalStrategy,
    parallelism: usize,
    pipeline: Pipeline,
    telemetry: Option<bool>,
    metrics_collector: Option<Arc<PipelineMetrics>>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The default telemetry mode of a new session: enabled when the
/// `DATALOG_METRICS` environment variable is set to anything other than
/// `0`, `false`, `off`, or the empty string — the knob `dlc --metrics`
/// and CI use — otherwise disabled (the no-op fast path).
fn default_telemetry() -> bool {
    match std::env::var("DATALOG_METRICS") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

/// The default `parallelism` of a new session: the `DATALOG_PARALLELISM`
/// environment variable when set to a positive integer (the knob CI uses
/// to pin the whole test suite to a thread count), otherwise the number of
/// available cores, otherwise 1.
/// The default [`Pipeline`] of a new session: the `DATALOG_PIPELINE`
/// environment variable when set to a recognized name (`materialized`,
/// `fused`, `magic`), otherwise [`Pipeline::Materialized`].
fn default_pipeline() -> Pipeline {
    std::env::var("DATALOG_PIPELINE")
        .ok()
        .and_then(|v| Pipeline::parse(&v))
        .unwrap_or_default()
}

fn default_parallelism() -> usize {
    if let Some(n) = std::env::var("DATALOG_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl EngineBuilder {
    /// A fresh builder (classification horizon 5, unlimited grounding,
    /// parallelism = available cores).
    pub fn new() -> Self {
        EngineBuilder {
            text: None,
            program: None,
            database: None,
            graph: None,
            seed_facts: Vec::new(),
            horizon: 5,
            max_ground_rules: None,
            eval_budget: None,
            eval_strategy: EvalStrategy::default(),
            parallelism: default_parallelism(),
            pipeline: default_pipeline(),
            telemetry: None,
            metrics_collector: None,
        }
    }

    /// Use a program given as Datalog text (parsed at [`build`] time).
    ///
    /// [`build`]: EngineBuilder::build
    pub fn program_text(mut self, text: &str) -> Self {
        self.text = Some(text.to_owned());
        self
    }

    /// Use an already-parsed program.
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self
    }

    /// Run against an explicit EDB database.
    pub fn database(mut self, db: Database) -> Self {
        self.database = Some(db);
        self
    }

    /// Run against a labeled graph: every label becomes a binary EDB
    /// predicate, every node a constant `v{i}` (see `Database::from_graph`).
    /// Enables the graph-specialized strategies (`MagicFiniteRpq`,
    /// `ProductBellmanFord`, `ProductSquaring`).
    pub fn graph(mut self, graph: &LabeledDigraph) -> Self {
        self.graph = Some(graph.clone());
        self
    }

    /// Insert one extra EDB fact after the instance is set up — the typical
    /// use is seeding unary predicates (`A(v0)`) that graph import cannot
    /// produce.
    ///
    /// The predicate must exist in the program with matching arity
    /// ([`build`] errors otherwise). Constants are interned on the fly: a
    /// name that matches nothing in the instance *extends* the active
    /// domain rather than erroring, so double-check node names (`v3`, not
    /// `v03`) on graph sessions.
    ///
    /// [`build`]: EngineBuilder::build
    pub fn fact(mut self, pred: &str, tuple: &[&str]) -> Self {
        self.seed_facts.push((
            pred.to_owned(),
            tuple.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Expansion horizon for the boundedness evidence inside
    /// classification (default 5).
    pub fn horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// Cap the number of grounded rules (default: unlimited).
    pub fn max_grounded_rules(mut self, max_rules: usize) -> Self {
        self.max_ground_rules = Some(max_rules);
        self
    }

    /// Iteration budget for fixpoint evaluation (default:
    /// `datalog::default_budget`, i.e. #IDB facts + 2).
    pub fn eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = Some(budget);
        self
    }

    /// Which fixpoint algorithm the session's evaluations run (default:
    /// [`EvalStrategy::SemiNaive`] — delta-driven, several times faster on
    /// recursive workloads, with an automatic per-semiring fallback to
    /// naive where delta propagation is unsound, e.g. `Counting`).
    ///
    /// The strategy only affects [`Engine::fixpoint`] and [`Query::eval`];
    /// the cached provenance fixpoint always runs naive because its
    /// iteration count doubles as the Theorem 4.3 layering probe.
    pub fn eval_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.eval_strategy = strategy;
        self
    }

    /// How many threads the session's grounding and fixpoint evaluations
    /// may shard across (clamped to at least 1).
    ///
    /// Defaults to the machine's available cores (overridable via the
    /// `DATALOG_PARALLELISM` environment variable). `parallelism(1)` is
    /// the exact sequential code path — no thread is ever spawned — and
    /// higher counts produce **bit-identical groundings** (same `FactId`
    /// order) and identical evaluation values. Semi-naive's round-based
    /// parallel schedule accounts `iterations` differently from the
    /// sequential worklist, and under an artificially tight
    /// [`eval_budget`](EngineBuilder::eval_budget) it can exhaust a
    /// budget the worklist squeaked under (reporting non-convergence);
    /// at the default budget the outcomes agree — see
    /// [`datalog::par_semi_naive_eval`].
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Which grounding/evaluation pipeline [`Query::eval`] routes through
    /// (default: [`Pipeline::Materialized`], overridable via the
    /// `DATALOG_PIPELINE` environment variable — an explicit call wins).
    ///
    /// All three pipelines return bit-identical values; they differ in
    /// what gets materialized and when. See [`Pipeline`] for the
    /// trade-offs.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enable (or explicitly disable) pipeline telemetry for the session.
    ///
    /// When enabled, every stage the session runs — parse, grounding
    /// phases, classification, evaluation, the provenance fixpoint,
    /// circuit construction — records wall-clock spans, per-round fixpoint
    /// series, and per-shard parallel statistics into the session's
    /// [`PipelineMetrics`]; read them back with
    /// [`Engine::metrics_report`]. Defaults to the `DATALOG_METRICS`
    /// environment variable (an explicit call wins), otherwise off.
    ///
    /// Disabled telemetry is the no-op recorder: instrumented code paths
    /// delegate to the exact pre-telemetry code, no clock is read, and
    /// grounding/evaluation results stay bit-identical. Cache-discipline
    /// counters ([`Engine::cache_stats`]) are maintained either way.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = Some(enabled);
        self
    }

    /// Record into an externally owned [`PipelineMetrics`] collector
    /// instead of a fresh per-session one.
    ///
    /// The serving layer uses this to accumulate one metrics stream per
    /// *server session* across the engine rebuilds that `LOAD FACTS`
    /// triggers: cache events (groundings in particular) and stage spans
    /// keep counting into the same collector, so "this session grounded
    /// exactly once" stays assertable after a snapshot swap. The
    /// collector's own enabled flag decides whether spans/rounds/shards
    /// are recorded — an explicit collector overrides
    /// [`telemetry`](EngineBuilder::telemetry) and `DATALOG_METRICS`.
    pub fn metrics_collector(mut self, collector: Arc<PipelineMetrics>) -> Self {
        self.metrics_collector = Some(collector);
        self
    }

    /// Assemble the session.
    ///
    /// Errors if no program was provided, the program text fails to parse,
    /// the program fails validation, or both a database and a graph were
    /// given.
    pub fn build(self) -> Result<Engine, Error> {
        let metrics = match self.metrics_collector {
            Some(collector) => collector,
            None => Arc::new(PipelineMetrics::new(
                self.telemetry.unwrap_or_else(default_telemetry),
            )),
        };
        let mut program = match (self.program, self.text) {
            (Some(p), None) => p,
            (None, Some(text)) => {
                telemetry::time(&*metrics, Stage::Parse, || parse_program(&text))?
            }
            (Some(_), Some(_)) => {
                return Err(Error::InvalidProgram(
                    "provide either program text or a parsed program, not both".into(),
                ))
            }
            (None, None) => {
                return Err(Error::InvalidProgram(
                    "EngineBuilder needs a program (program_text or program)".into(),
                ))
            }
        };
        program.validate()?;

        let (mut db, edge_facts, graph) = match (self.database, self.graph) {
            (Some(_), Some(_)) => {
                return Err(Error::unsupported(
                    "provide either a database or a graph, not both",
                ))
            }
            (Some(db), None) => (db, Vec::new(), None),
            (None, Some(g)) => {
                let (db, edge_facts) = Database::from_graph(&mut program, &g);
                (db, edge_facts, Some(g))
            }
            (None, None) => (Database::new(), Vec::new(), None),
        };

        for (pred, tuple) in self.seed_facts {
            let pred_id = program
                .preds
                .get(&pred)
                .ok_or_else(|| Error::UnknownPredicate(pred.clone()))?;
            if let Some(arity) = program.arity(pred_id) {
                if arity != tuple.len() {
                    return Err(Error::BadQuery(format!(
                        "seed fact {pred} has arity {arity}, got {} arguments",
                        tuple.len()
                    )));
                }
            }
            let tuple: Vec<ConstId> = tuple.iter().map(|c| db.constant(c)).collect();
            db.insert(pred_id, tuple);
        }

        let node_of_const = graph
            .as_ref()
            .map(|g| {
                (0..g.num_nodes())
                    .filter_map(|i| db.consts.get(&format!("v{i}")).map(|c| (c, i as NodeId)))
                    .collect()
            })
            .unwrap_or_default();

        Ok(Engine {
            program: Arc::new(program),
            db: Arc::new(db),
            graph,
            edge_facts,
            node_of_const,
            horizon: self.horizon,
            max_ground_rules: self.max_ground_rules.unwrap_or(usize::MAX),
            eval_budget: self.eval_budget,
            eval_strategy: self.eval_strategy,
            parallelism: self.parallelism.max(1),
            pipeline: self.pipeline,
            epoch: 0,
            grounding: OnceCell::new(),
            classification: OnceCell::new(),
            provenance: OnceCell::new(),
            circuits: RefCell::new(HashMap::new()),
            multi_outputs: RefCell::new(HashMap::new()),
            metrics,
        })
    }
}

/// A stateful session owning a program, its database, and every derived
/// artifact: the grounding, the classification, the provenance fixpoint,
/// and per-fact compiled circuits. All of them are computed on first use
/// and reused afterwards.
///
/// Not `Sync`: a session is a single-threaded object (interior mutability
/// backs the caches — `OnceCell` fills and `RefCell` maps are exactly the
/// state that would race under `&Engine` from two threads). To evaluate
/// from many threads, take an [`Engine::snapshot`]: it pre-forces the lazy
/// caches and freezes the shared artifacts behind `Arc`s into an immutable
/// [`EngineSnapshot`] that *is* `Send + Sync`.
///
/// [`EngineSnapshot`]: crate::snapshot::EngineSnapshot
#[derive(Debug)]
pub struct Engine {
    program: Arc<Program>,
    db: Arc<Database>,
    graph: Option<LabeledDigraph>,
    edge_facts: Vec<datalog::FactId>,
    node_of_const: HashMap<ConstId, NodeId>,
    horizon: usize,
    max_ground_rules: usize,
    eval_budget: Option<usize>,
    eval_strategy: EvalStrategy,
    parallelism: usize,
    pipeline: Pipeline,
    epoch: u64,
    grounding: OnceCell<Result<Arc<GroundedProgram>, Error>>,
    classification: OnceCell<Arc<Classification>>,
    provenance: OnceCell<Result<EvalOutcome<Sorp>, Error>>,
    circuits: RefCell<HashMap<CircuitKey, Arc<Compiled>>>,
    multi_outputs: RefCell<HashMap<Strategy, Arc<circuit::MultiOutput>>>,
    metrics: Arc<PipelineMetrics>,
}

impl Engine {
    /// Start building a session.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The session's (validated) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The session's database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The labeled graph the database was imported from, when built with
    /// [`EngineBuilder::graph`].
    pub fn graph(&self) -> Option<&LabeledDigraph> {
        self.graph.as_ref()
    }

    /// Fact ids of the imported graph edges, aligned with the graph's edge
    /// list (empty unless built from a graph) — pair with
    /// `semiring::FromEdgeWeights` for weighted workloads.
    pub fn edge_facts(&self) -> &[datalog::FactId] {
        &self.edge_facts
    }

    /// How much work the session has actually performed — a snapshot of
    /// the cache-event counters in the session's [`PipelineMetrics`]
    /// (maintained whether or not telemetry is enabled).
    pub fn cache_stats(&self) -> EngineCacheStats {
        let count = |e| self.metrics.cache_count(e) as usize;
        EngineCacheStats {
            groundings: count(CacheEvent::Grounding),
            classifications: count(CacheEvent::Classification),
            provenance_runs: count(CacheEvent::ProvenanceRun),
            circuits_built: count(CacheEvent::CircuitBuilt),
            circuit_cache_hits: count(CacheEvent::CircuitCacheHit),
            seminaive_fallbacks: count(CacheEvent::SeminaiveFallback),
        }
    }

    /// The session's telemetry collector. Cache events are always counted;
    /// spans, round series, and shard statistics only accumulate when the
    /// session was built with telemetry enabled
    /// ([`EngineBuilder::telemetry`] or `DATALOG_METRICS`).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Whether the session records pipeline telemetry (spans, rounds,
    /// shards) — see [`EngineBuilder::telemetry`].
    pub fn telemetry_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// Snapshot the session's telemetry as a [`MetricsReport`]: render it
    /// with `Display` for a human-readable per-stage table or
    /// [`MetricsReport::to_json`] for the machine-readable form.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// The grounded program — computed once, then cached, sharding the
    /// join work across the session's [`parallelism`](Engine::parallelism)
    /// (bit-identical to a sequential grounding at any thread count).
    /// Failures (e.g. [`Error::GroundingLimit`]) are cached too and
    /// replayed on later calls instead of re-grounding.
    pub fn grounding(&self) -> Result<&GroundedProgram, Error> {
        self.grounding_cell()
            .as_ref()
            .map(|arc| &**arc)
            .map_err(Error::clone)
    }

    /// The cached grounding as a shareable handle — the form
    /// [`Engine::snapshot`] freezes.
    fn grounding_arc(&self) -> Result<Arc<GroundedProgram>, Error> {
        self.grounding_cell().clone()
    }

    fn grounding_cell(&self) -> &Result<Arc<GroundedProgram>, Error> {
        self.grounding.get_or_init(|| {
            self.metrics.cache_event(CacheEvent::Grounding);
            par_ground_with_limit_recorded(
                &self.program,
                &self.db,
                self.max_ground_rules,
                self.parallelism,
                &*self.metrics,
            )
            .map(Arc::new)
        })
    }

    /// The paper-level classification (computed once, then cached).
    pub fn classification(&self) -> &Classification {
        self.classification_arc_ref()
    }

    fn classification_arc_ref(&self) -> &Arc<Classification> {
        self.classification.get_or_init(|| {
            self.metrics.cache_event(CacheEvent::Classification);
            Arc::new(telemetry::time(&*self.metrics, Stage::Classify, || {
                classify_program(&self.program, self.horizon)
            }))
        })
    }

    /// The iteration budget used for fixpoint evaluation.
    pub fn budget(&self) -> Result<usize, Error> {
        let gp = self.grounding()?;
        Ok(self.eval_budget.unwrap_or_else(|| default_budget(gp)))
    }

    /// The session's fixpoint algorithm (set by
    /// [`EngineBuilder::eval_strategy`]; [`EvalStrategy::SemiNaive`] by
    /// default).
    pub fn eval_strategy(&self) -> EvalStrategy {
        self.eval_strategy
    }

    /// How many threads the session shards grounding and evaluation across
    /// (set by [`EngineBuilder::parallelism`]; available cores by default).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The pipeline [`Query::eval`] routes through (set by
    /// [`EngineBuilder::pipeline`]; [`Pipeline::Materialized`] by default).
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    /// The session's write epoch: 0 at build, bumped once per
    /// [`insert_facts`](Engine::insert_facts) /
    /// [`retract_facts`](Engine::retract_facts) batch that changed the
    /// database. Snapshots record the epoch they froze
    /// ([`EngineSnapshot::epoch`](crate::snapshot::EngineSnapshot::epoch)),
    /// so a serving layer can tell which generation a reader is on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Insert one EDB fact — see [`insert_facts`](Engine::insert_facts).
    pub fn insert_fact(&mut self, pred: &str, tuple: &[&str]) -> Result<DeltaOutcome, Error> {
        self.insert_facts(&[(pred, tuple)])
    }

    /// Retract one EDB fact — see [`retract_facts`](Engine::retract_facts).
    pub fn retract_fact(&mut self, pred: &str, tuple: &[&str]) -> Result<DeltaOutcome, Error> {
        self.retract_facts(&[(pred, tuple)])
    }

    /// Insert a batch of EDB facts **without invalidating the cached
    /// grounding**: if the session has already grounded, the delta is
    /// grounded against the cached [`GroundedProgram`] in place
    /// (`datalog::extend_grounding` — new facts as the join frontier,
    /// revived rules on domain growth) instead of re-grounding from
    /// scratch. Constants are interned on the fly; inserting a fact that
    /// already exists is a no-op (its id is *not* reported in
    /// [`DeltaOutcome::facts`]).
    ///
    /// Errors — without touching any state — on unknown predicates, arity
    /// mismatches, and IDB predicates (only EDB relations are writable;
    /// IDB facts are *derived*). If the delta extension itself fails
    /// (e.g. [`Error::GroundingLimit`]), the write still succeeds: the
    /// cached grounding is dropped and the next read re-grounds from
    /// scratch — reported via [`DeltaOutcome::incremental`] `= false` and
    /// the `incremental_fallbacks` counter.
    ///
    /// Value-level caches that cannot be maintained soundly are cleared
    /// for lazy recomputation: the provenance fixpoint (its *naive
    /// iteration count* feeds the Theorem 4.3 `BoundedLayered` layering —
    /// an in-place value repair would not reproduce it) and with it every
    /// compiled circuit and multi-output arena. The classification
    /// survives (it depends only on the program). Batching several facts
    /// into one call amortizes both the delta-grounding pass and the
    /// copy-on-write of grounding/database `Arc`s shared with live
    /// snapshots.
    pub fn insert_facts(&mut self, facts: &[(&str, &[&str])]) -> Result<DeltaOutcome, Error> {
        // Validate everything before mutating anything: a failed batch
        // must leave the session untouched.
        let idbs = self.program.idbs();
        let mut resolved: Vec<(PredId, &[&str])> = Vec::with_capacity(facts.len());
        for (pred, tuple) in facts {
            let pred_id = self
                .program
                .preds
                .get(pred)
                .ok_or_else(|| Error::UnknownPredicate((*pred).to_owned()))?;
            if idbs.contains(&pred_id) {
                return Err(Error::BadQuery(format!(
                    "{pred} is an IDB predicate — writes target EDB relations; derived facts \
                     follow from the rules"
                )));
            }
            if let Some(arity) = self.program.arity(pred_id) {
                if arity != tuple.len() {
                    return Err(Error::BadQuery(format!(
                        "{pred} has arity {arity}, got {} arguments",
                        tuple.len()
                    )));
                }
            }
            resolved.push((pred_id, tuple));
        }

        let old_domain = self.db.domain_size();
        let edb_delta_start = self.db.num_facts() as FactId;
        let db = Arc::make_mut(&mut self.db);
        let mut inserted: Vec<FactId> = Vec::new();
        for (pred_id, tuple) in resolved {
            let consts: Vec<ConstId> = tuple.iter().map(|c| db.constant(c)).collect();
            let before = db.num_facts();
            let id = db.insert(pred_id, consts);
            if db.num_facts() > before {
                inserted.push(id);
            }
        }
        if inserted.is_empty() {
            // Every fact was a duplicate: nothing changed (duplicates
            // cannot introduce constants either), no epoch bump.
            return Ok(DeltaOutcome {
                epoch: self.epoch,
                incremental: true,
                ..DeltaOutcome::default()
            });
        }

        let mut outcome = DeltaOutcome {
            facts: inserted,
            incremental: true,
            ..DeltaOutcome::default()
        };
        if let Some(cell) = self.grounding.take() {
            match cell {
                Ok(mut arc) => {
                    // Copy-on-write: clones only when a live snapshot
                    // still shares the grounding — the price of snapshot
                    // isolation.
                    let gp = Arc::make_mut(&mut arc);
                    outcome.base_rules = gp.rules.len();
                    match extend_grounding(
                        &self.program,
                        &self.db,
                        gp,
                        edb_delta_start,
                        old_domain,
                        self.max_ground_rules,
                        &*self.metrics,
                    ) {
                        Ok(()) => {
                            outcome.maintained = true;
                            // Re-seat WITHOUT a CacheEvent::Grounding:
                            // nothing was re-grounded from scratch.
                            let _ = self.grounding.set(Ok(arc));
                        }
                        Err(_) => {
                            // The partially-extended grounding is
                            // poisoned; drop it and let the next read
                            // re-ground from scratch (a rebuild can
                            // succeed where the extension overflowed:
                            // zombie rules from earlier retractions do
                            // not count against a fresh grounding).
                            outcome.incremental = false;
                        }
                    }
                }
                Err(_) => {
                    // A cached grounding *failure* went stale with the
                    // database change; retry lazily.
                    outcome.incremental = false;
                }
            }
        }
        self.finish_delta(&mut outcome);
        Ok(outcome)
    }

    /// Retract a batch of EDB facts **without invalidating the cached
    /// grounding**: the facts are tombstoned in the database (ids are
    /// never reused — a later re-insert is genuinely new support) and, if
    /// the session has already grounded, every grounded rule citing a
    /// retracted fact is retired in place
    /// (`datalog::retract_facts_from_grounding`). The affected IDB facts
    /// stay in the grounding as *zombies* pinned at value 0 — keeping
    /// fact indices prefix-stable for live snapshots — and
    /// [`DeltaOutcome::roots`] reports the retired rules' heads, the cone
    /// roots for DRed-style value rederivation
    /// (`incremental::MaintainedFixpoint::apply_retract`).
    ///
    /// Errors — without touching any state — on unknown predicates and on
    /// facts that are not present (retracting an absent or derived fact
    /// is a [`Error::BadQuery`]). Cache handling (provenance, circuits,
    /// epoch) is as in [`insert_facts`](Engine::insert_facts).
    pub fn retract_facts(&mut self, facts: &[(&str, &[&str])]) -> Result<DeltaOutcome, Error> {
        // All-or-nothing validation, as for inserts.
        let mut resolved: Vec<(PredId, Vec<ConstId>, FactId)> = Vec::with_capacity(facts.len());
        for (pred, tuple) in facts {
            let pred_id = self
                .program
                .preds
                .get(pred)
                .ok_or_else(|| Error::UnknownPredicate((*pred).to_owned()))?;
            let consts: Option<Vec<ConstId>> =
                tuple.iter().map(|c| self.db.consts.get(c)).collect();
            let fid = consts
                .as_ref()
                .and_then(|t| self.db.fact_id(pred_id, t))
                .ok_or_else(|| {
                    Error::BadQuery(format!(
                        "cannot retract {pred}({}): no such EDB fact",
                        tuple.join(", ")
                    ))
                })?;
            resolved.push((pred_id, consts.expect("resolved above"), fid));
        }
        if resolved.is_empty() {
            return Ok(DeltaOutcome {
                epoch: self.epoch,
                incremental: true,
                ..DeltaOutcome::default()
            });
        }

        let db = Arc::make_mut(&mut self.db);
        let mut retracted: Vec<FactId> = Vec::new();
        for (pred_id, consts, fid) in &resolved {
            // A duplicate within the batch retracts once.
            if db.retract(*pred_id, consts).is_some() {
                retracted.push(*fid);
            }
        }

        let mut outcome = DeltaOutcome {
            facts: retracted,
            incremental: true,
            ..DeltaOutcome::default()
        };
        if let Some(cell) = self.grounding.take() {
            match cell {
                Ok(mut arc) => {
                    let gp = Arc::make_mut(&mut arc);
                    outcome.base_rules = gp.rules.len();
                    outcome.roots = retract_facts_from_grounding(gp, &outcome.facts);
                    outcome.maintained = true;
                    let _ = self.grounding.set(Ok(arc));
                }
                Err(_) => {
                    outcome.incremental = false;
                }
            }
        }
        self.finish_delta(&mut outcome);
        Ok(outcome)
    }

    /// Shared tail of a write batch: clear the value-level caches that
    /// cannot be maintained in place, bump the epoch, count the batch.
    fn finish_delta(&mut self, outcome: &mut DeltaOutcome) {
        // The provenance fixpoint is cleared, not repaired: BoundedLayered
        // unrolls circuits to its *naive iteration count*, and an in-place
        // value repair cannot reproduce that measurement. Circuits embed
        // fact indexing + provenance layering, so they go with it.
        self.provenance.take();
        self.circuits.get_mut().clear();
        self.multi_outputs.get_mut().clear();
        self.epoch += 1;
        outcome.epoch = self.epoch;
        if outcome.maintained {
            self.metrics.counter(Counter::IncrementalApplied, 1);
        }
        if !outcome.incremental {
            self.metrics.counter(Counter::IncrementalFallbacks, 1);
        }
    }

    /// Run the session's fixpoint over any semiring under a valuation,
    /// sharded across the session's [`parallelism`](Engine::parallelism).
    /// The raw [`EvalOutcome`] exposes iterations-to-fixpoint; non-
    /// convergence is reported in the outcome, not as an error.
    ///
    /// Under the default [`EvalStrategy::SemiNaive`], `iterations` counts
    /// delta rounds. The §4 boundedness probes interpret *naive* ICO
    /// applications — build the session with
    /// `.eval_strategy(EvalStrategy::Naive)` for those.
    pub fn fixpoint<S, V>(&self, valuation: &V) -> Result<EvalOutcome<S>, Error>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        let budget = self.budget()?;
        let gp = self.grounding()?;
        let out = telemetry::time(&*self.metrics, Stage::Eval, || {
            par_eval_with_strategy_recorded(
                self.eval_strategy,
                gp,
                valuation,
                budget,
                self.parallelism,
                &*self.metrics,
                Stage::Eval,
            )
        });
        self.note_effective_strategy(out.strategy);
        Ok(out)
    }

    /// Run the fused ground+eval pipeline over any semiring under a
    /// valuation: phase-1 discovery streams each grounded rule straight
    /// into the semi-naive ⊕-worklist, and **no rule vector is ever
    /// materialized** — the cached grounding is neither consulted nor
    /// filled. Values and the fact list are bit-identical to
    /// [`Engine::fixpoint`]'s; non-convergence is reported in the
    /// outcome.
    ///
    /// Each call re-grounds from scratch (the streamed rules are gone by
    /// design), so this is the one-shot mode: for many queries against
    /// one instance, the cached materialized grounding amortizes better.
    /// The session's [`eval_budget`](EngineBuilder::eval_budget) caps the
    /// fused rounds; [`max_grounded_rules`](EngineBuilder::max_grounded_rules)
    /// does not apply — there is no rule storage to cap (the internal
    /// non-⊕-idempotent fallback materializes uncapped).
    pub fn fused_fixpoint<S, V>(&self, valuation: &V) -> Result<FusedOutcome<S>, Error>
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        let out = par_fused_eval_recorded(
            &self.program,
            &self.db,
            valuation,
            self.eval_budget,
            self.parallelism,
            &*self.metrics,
        )?;
        self.note_effective_strategy(out.strategy);
        Ok(out)
    }

    /// Freeze the session into an immutable, `Send + Sync`
    /// [`EngineSnapshot`](crate::snapshot::EngineSnapshot) sharing the
    /// cached artifacts by `Arc`.
    ///
    /// Pre-forces the lazy caches the snapshot carries — the grounding and
    /// the classification — so concurrent readers never race a cache fill:
    /// after this call the snapshot's state is physically immutable.
    /// Circuits already compiled through [`Engine::query`] ride along
    /// (frozen — a snapshot serves cache hits but never compiles new
    /// ones). Cheap to call repeatedly: `Arc` bumps plus one shallow map
    /// clone, so a serving layer can snapshot after every mutation.
    ///
    /// Grounding failures surface here exactly as they do from
    /// [`Engine::grounding`].
    pub fn snapshot(&self) -> Result<crate::snapshot::EngineSnapshot, Error> {
        let grounding = self.grounding_arc()?;
        let classification = Arc::clone(self.classification_arc_ref());
        let budget = self
            .eval_budget
            .unwrap_or_else(|| default_budget(&grounding));
        Ok(crate::snapshot::EngineSnapshot::new(
            Arc::clone(&self.program),
            Arc::clone(&self.db),
            grounding,
            classification,
            budget,
            self.eval_strategy,
            self.parallelism,
            self.epoch,
            self.circuits.borrow().clone(),
            Arc::clone(&self.metrics),
        ))
    }

    /// The session's telemetry collector as a shareable handle — what a
    /// serving layer passes to [`EngineBuilder::metrics_collector`] so a
    /// rebuilt engine keeps accumulating into the same stream.
    pub fn metrics_handle(&self) -> Arc<PipelineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Bump the fallback counter when a semi-naive request actually ran
    /// naive (observable via [`EvalOutcome::strategy`] and
    /// [`EngineCacheStats::seminaive_fallbacks`]).
    fn note_effective_strategy(&self, effective: EvalStrategy) {
        if self.eval_strategy == EvalStrategy::SemiNaive && effective == EvalStrategy::Naive {
            self.metrics.cache_event(CacheEvent::SeminaiveFallback);
        }
    }

    /// The provenance fixpoint over [`Sorp`] (every fact tagged by its own
    /// variable) — computed once, then cached. Backing store of
    /// [`Query::provenance`] and of the `BoundedLayered` probe.
    /// A [`Error::Diverged`] outcome is cached as well, so a divergent
    /// session fails fast instead of re-running the fixpoint.
    ///
    /// This run is **always naive**, whatever the session's
    /// [`EvalStrategy`]: `BoundedLayered` unrolls the grounded circuit to
    /// this outcome's `iterations`, and only naive ICO applications bound
    /// the derivation depth — semi-naive rounds can be fewer, which would
    /// cut proof trees off. The *values* would be identical either way
    /// ([`Sorp`] is absorptive).
    pub fn provenance_outcome(&self) -> Result<&EvalOutcome<Sorp>, Error> {
        self.provenance
            .get_or_init(|| {
                let budget = self.budget()?;
                let gp = self.grounding()?;
                let out = telemetry::time(&*self.metrics, Stage::Provenance, || {
                    par_naive_eval_recorded(
                        gp,
                        &VarTags,
                        budget,
                        self.parallelism,
                        &*self.metrics,
                        Stage::Provenance,
                    )
                });
                self.metrics.cache_event(CacheEvent::ProvenanceRun);
                if !out.converged {
                    return Err(Error::Diverged { iterations: budget });
                }
                Ok(out)
            })
            .as_ref()
            .map_err(Error::clone)
    }

    /// A query handle for the fact `pred(tuple…)`.
    ///
    /// Errors on unknown predicates and arity mismatches. Constants outside
    /// the active domain are *not* errors: the fact is simply underivable
    /// and evaluates to `0` (matching the paper's semantics).
    pub fn query<'e>(&'e self, pred: &str, tuple: &[&str]) -> Result<Query<'e>, Error> {
        let pred_id = self
            .program
            .preds
            .get(pred)
            .ok_or_else(|| Error::UnknownPredicate(pred.to_owned()))?;
        if let Some(arity) = self.program.arity(pred_id) {
            if arity != tuple.len() {
                return Err(Error::BadQuery(format!(
                    "{pred} has arity {arity}, got {} arguments",
                    tuple.len()
                )));
            }
        }
        let consts: Option<Vec<ConstId>> = tuple.iter().map(|c| self.db.consts.get(c)).collect();
        Ok(Query {
            engine: self,
            pred: pred_id,
            consts,
        })
    }

    /// Graph-session shorthand: the target fact `target(v{src}, v{dst})`.
    pub fn node_query(&self, src: NodeId, dst: NodeId) -> Result<Query<'_>, Error> {
        if self.graph.is_none() {
            return Err(Error::unsupported(
                "node_query needs a session built from a graph",
            ));
        }
        let target = self.program.preds.name(self.program.target).to_owned();
        let (s, d) = (format!("v{src}"), format!("v{dst}"));
        self.query(&target, &[&s, &d])
    }

    /// Resolve `Auto` against the cached classification. The graph
    /// strategies only apply to the binary target fact over graph nodes;
    /// every other query falls back to the database strategies.
    fn resolve(&self, query: &Query<'_>, strategy: Strategy) -> Strategy {
        match strategy {
            Strategy::Auto => {
                let graph_target = self.graph.is_some()
                    && query.pred == self.program.target
                    && query.consts.as_ref().is_none_or(|c| {
                        c.len() == 2 && c.iter().all(|c| self.node_of_const.contains_key(c))
                    });
                if graph_target {
                    compile::resolve_graph_auto(self.classification())
                } else {
                    compile::resolve_db_auto(self.classification())
                }
            }
            s => s,
        }
    }

    /// Compile (or fetch from cache) the circuit of a query.
    fn compile(&self, query: &Query<'_>, strategy: Strategy) -> Result<Arc<Compiled>, Error> {
        let resolved = self.resolve(query, strategy);

        let Some(consts) = query.consts.clone() else {
            // Constants outside the domain: the constant-0 circuit. Not a
            // real compilation — the work counters are left untouched.
            return Ok(Arc::new(self.assemble(constant_zero(), resolved)));
        };

        let key = (query.pred, consts, resolved);
        if let Some(hit) = self.circuits.borrow().get(&key) {
            self.metrics.cache_event(CacheEvent::CircuitCacheHit);
            return Ok(Arc::clone(hit));
        }

        let circuit = match resolved {
            Strategy::Auto => unreachable!("resolved above"),
            Strategy::MagicFiniteRpq | Strategy::ProductBellmanFord | Strategy::ProductSquaring => {
                let graph = self.graph.as_ref().ok_or_else(|| {
                    Error::unsupported(format!(
                        "strategy {resolved:?} needs a graph fact; build the engine from a \
                         graph or use compile_graph_fact"
                    ))
                })?;
                let (src, dst) = self.node_pair(query, &key.1)?;
                if resolved == Strategy::MagicFiniteRpq {
                    telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                        circuit::finite_rpq_circuit(&self.program, graph, src, dst)
                    })?
                    .circuit
                } else {
                    let dfa = compile::chain_program_dfa(&self.program, graph)?;
                    let tc = if resolved == Strategy::ProductBellmanFord {
                        circuit::TcStrategy::BellmanFord
                    } else {
                        circuit::TcStrategy::RepeatedSquaring
                    };
                    telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                        circuit::rpq_circuit(graph, &dfa, src, dst, tc)
                    })
                }
            }
            Strategy::GroundedFixpoint | Strategy::BoundedLayered | Strategy::UllmanVanGelder => {
                match query.fact()? {
                    None => constant_zero(),
                    Some(fact) => {
                        let mo = self.multi_output(resolved)?;
                        telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                            mo.circuit_for(fact)
                        })
                    }
                }
            }
        };

        let compiled = Arc::new(self.finish_compiled(circuit, resolved));
        self.circuits
            .borrow_mut()
            .insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// The shared all-facts circuit of a grounded-family strategy —
    /// constructed once per strategy and cached, so compiling k distinct
    /// facts builds the arena once and extracts k cones instead of
    /// rebuilding it k times.
    fn multi_output(&self, resolved: Strategy) -> Result<Arc<circuit::MultiOutput>, Error> {
        if let Some(mo) = self.multi_outputs.borrow().get(&resolved) {
            return Ok(Arc::clone(mo));
        }
        let mo = Arc::new(match resolved {
            Strategy::GroundedFixpoint => {
                let gp = self.grounding()?;
                telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                    circuit::grounded_circuit(gp, None)
                })
            }
            Strategy::BoundedLayered => {
                // Provenance probe for the boundedness constant (exact over
                // the universal absorptive semiring) — cached.
                let layers = self.provenance_outcome()?.iterations;
                let gp = self.grounding()?;
                telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                    circuit::grounded_circuit(gp, Some(layers))
                })
            }
            Strategy::UllmanVanGelder => {
                let gp = self.grounding()?;
                telemetry::time(&*self.metrics, Stage::CircuitBuild, || {
                    circuit::uvg_circuit(gp, None)
                })
            }
            other => unreachable!("{other:?} is not a grounded-family strategy"),
        });
        self.multi_outputs
            .borrow_mut()
            .insert(resolved, Arc::clone(&mo));
        Ok(mo)
    }

    fn finish_compiled(&self, circuit: Circuit, resolved: Strategy) -> Compiled {
        self.metrics.cache_event(CacheEvent::CircuitBuilt);
        self.assemble(circuit, resolved)
    }

    fn assemble(&self, circuit: Circuit, resolved: Strategy) -> Compiled {
        let stats = circuit::stats(&circuit);
        Compiled {
            circuit,
            strategy: resolved,
            stats,
            classification: self.classification().clone(),
        }
    }

    /// Map a binary target tuple back onto graph node ids.
    fn node_pair(&self, query: &Query<'_>, consts: &[ConstId]) -> Result<(NodeId, NodeId), Error> {
        if query.pred != self.program.target || consts.len() != 2 {
            return Err(Error::unsupported(
                "graph strategies compile binary target facts over graph nodes",
            ));
        }
        let node = |c: ConstId| {
            self.node_of_const
                .get(&c)
                .copied()
                .ok_or_else(|| Error::BadQuery("constant does not name a graph node".into()))
        };
        Ok((node(consts[0])?, node(consts[1])?))
    }
}

/// A handle on one queried fact; created by [`Engine::query`].
///
/// Construction is cheap: the grounding is only materialized by the
/// methods that need it ([`eval`], [`provenance`], [`fact_index`], and the
/// grounded-family strategies of [`circuit`]) — the graph product
/// strategies compile without ever grounding.
///
/// [`eval`]: Query::eval
/// [`provenance`]: Query::provenance
/// [`fact_index`]: Query::fact_index
/// [`circuit`]: Query::circuit
#[derive(Clone, Debug)]
pub struct Query<'e> {
    engine: &'e Engine,
    pred: PredId,
    /// Resolved constants; `None` if some constant is outside the domain.
    consts: Option<Vec<ConstId>>,
}

impl Query<'_> {
    /// The queried predicate.
    pub fn pred(&self) -> PredId {
        self.pred
    }

    /// The fact's index in the session grounding (forcing the grounding),
    /// or `None` when the fact never appeared in it.
    fn fact(&self) -> Result<Option<usize>, Error> {
        match &self.consts {
            Some(t) => Ok(self.engine.grounding()?.fact(self.pred, t)),
            None => Ok(None),
        }
    }

    /// Index of the fact in the grounded program, when grounded.
    /// Forces the (cached) grounding.
    ///
    /// After a retraction this is *membership*, not derivability: facts
    /// severed by [`Engine::retract_facts`] stay in the grounding as
    /// zombies (keeping indices stable for live snapshots) but evaluate
    /// to `0` — [`is_derivable`](Query::is_derivable) tells them apart.
    pub fn fact_index(&self) -> Result<Option<usize>, Error> {
        self.fact()
    }

    /// Whether the fact is derivable at all. Forces the (cached) grounding.
    ///
    /// Decided by evaluation over [`semiring::Bool`], not grounding membership: on
    /// a session that has seen [`Engine::retract_facts`], the grounding
    /// retains underivable zombie facts pinned at `0`, and this answer
    /// must stay bit-identical to a from-scratch rebuild.
    pub fn is_derivable(&self) -> Result<bool, Error> {
        if self.fact()?.is_none() {
            return Ok(false);
        }
        Ok(self.eval::<semiring::Bool, _>(&AllOnes)?.0)
    }

    /// Evaluate the fact over any semiring under a valuation, through the
    /// session's [`Pipeline`] (materialized by default). Underivable
    /// facts evaluate to `0`.
    ///
    /// * [`Pipeline::Materialized`] runs one fixpoint over the (cached)
    ///   grounding with the session's [`EvalStrategy`]. To evaluate
    ///   *many* facts under the same valuation, run [`Engine::fixpoint`]
    ///   once and index its `values` by [`Query::fact_index`] instead.
    /// * [`Pipeline::Fused`] streams grounded rules straight into the
    ///   ⊕-worklist ([`Engine::fused_fixpoint`]) — nothing is cached and
    ///   no rule vector is materialized.
    /// * [`Pipeline::Magic`] rewrites the program for the goal's bound
    ///   first argument and grounds only the query cone
    ///   ([`datalog::magic_point_eval`]); goals the rewrite does not
    ///   cover fall back to the materialized pipeline.
    ///
    /// All three produce bit-identical values. Errors with
    /// [`Error::Diverged`] when the semiring/valuation pair does not
    /// reach a fixpoint within the session budget (e.g. the counting
    /// semiring on a cyclic instance); the magic pipeline can converge
    /// where the others diverge if the divergent component lies outside
    /// the query cone.
    pub fn eval<S, V>(&self, valuation: &V) -> Result<S, Error>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        match self.engine.pipeline {
            Pipeline::Materialized => self.eval_materialized(valuation),
            Pipeline::Fused => self.eval_fused(valuation),
            Pipeline::Magic => {
                let Some(consts) = &self.consts else {
                    return Ok(S::zero());
                };
                match magic_point_eval::<S, _>(
                    &self.engine.program,
                    &self.engine.db,
                    self.pred,
                    consts,
                    valuation,
                    self.engine.eval_budget,
                    &*self.engine.metrics,
                )? {
                    // Divergence only matters for derivable goals: an
                    // absent goal is 0 however the rest of the cone
                    // behaved, matching the materialized route (which
                    // answers it without evaluating at all).
                    Some(out) if out.derivable && !out.converged => Err(Error::Diverged {
                        iterations: out.iterations,
                    }),
                    Some(out) => Ok(out.value),
                    None => self.eval_materialized(valuation),
                }
            }
        }
    }

    /// The materialized pipeline behind [`Query::eval`]: one fixpoint
    /// over the cached grounding.
    fn eval_materialized<S, V>(&self, valuation: &V) -> Result<S, Error>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        let Some(fact) = self.fact()? else {
            return Ok(S::zero());
        };
        let budget = self.engine.budget()?;
        let gp = self.engine.grounding()?;
        let out = telemetry::time(&*self.engine.metrics, Stage::Eval, || {
            par_eval_with_strategy_recorded(
                self.engine.eval_strategy,
                gp,
                valuation,
                budget,
                self.engine.parallelism,
                &*self.engine.metrics,
                Stage::Eval,
            )
        });
        self.engine.note_effective_strategy(out.strategy);
        if !out.converged {
            return Err(Error::Diverged { iterations: budget });
        }
        Ok(out.values[fact].clone())
    }

    /// The fused pipeline behind [`Query::eval`]: stream ground+eval,
    /// then look the goal up in the streamed outcome's own fact list —
    /// the cached materialized grounding is never touched.
    fn eval_fused<S, V>(&self, valuation: &V) -> Result<S, Error>
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        let Some(consts) = &self.consts else {
            return Ok(S::zero());
        };
        let out = self.engine.fused_fixpoint::<S, _>(valuation)?;
        // Underivable goals render 0 even when the fixpoint ran out of
        // budget — the materialized route answers them without evaluating
        // at all, and the pipelines must agree error-for-error.
        match out.gp.fact(self.pred, consts) {
            Some(_) if !out.converged => Err(Error::Diverged {
                iterations: out.iterations,
            }),
            Some(i) => Ok(out.values[i].clone()),
            None => Ok(S::zero()),
        }
    }

    /// The fact's provenance polynomial (paper §2.4), from the cached
    /// [`Sorp`] fixpoint. Underivable facts yield the zero polynomial.
    pub fn provenance(&self) -> Result<Sorp, Error> {
        match self.fact()? {
            None => Ok(Sorp::zero()),
            Some(fact) => Ok(self.engine.provenance_outcome()?.values[fact].clone()),
        }
    }

    /// Compile the fact's provenance circuit with the given strategy
    /// (`Strategy::Auto` dispatches on the cached classification). Results
    /// are cached per `(fact, resolved strategy)` and shared: a cache hit
    /// is an `Arc` bump, not a copy of the gate arena.
    pub fn circuit(&self, strategy: Strategy) -> Result<Arc<Compiled>, Error> {
        self.engine.compile(self, strategy)
    }

    /// Compile the fact's provenance circuit (cached, like
    /// [`circuit`](Query::circuit)) and evaluate it bottom-up over the
    /// session's [`parallelism`](Engine::parallelism) — the circuit-side
    /// twin of [`eval`](Query::eval). Level-synchronous gate evaluation
    /// is sharded across workers ([`Circuit::eval_par_recorded`]) and is
    /// bit-identical to the sequential pass at every thread count; the
    /// per-level shard work is attributed to `Stage::CircuitEval` in the
    /// session's metrics.
    pub fn circuit_eval<S, V>(&self, strategy: Strategy, assign: &V) -> Result<S, Error>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        let compiled = self.circuit(strategy)?;
        Ok(telemetry::time(
            &*self.engine.metrics,
            Stage::CircuitEval,
            || {
                compiled.circuit.eval_par_recorded(
                    assign,
                    self.engine.parallelism,
                    &*self.engine.metrics,
                )
            },
        ))
    }
}

fn constant_zero() -> Circuit {
    let mut b = circuit::CircuitBuilder::new();
    let z = b.zero();
    b.finish(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::programs;
    use graphgen::generators;
    use semiring::prelude::*;

    fn figure1() -> LabeledDigraph {
        // s=0, u1=1, u2=2, v1=3, v2=4, t=5 (paper Figure 1).
        let mut g = LabeledDigraph::new(6);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
            g.add_edge(u, v, "E");
        }
        g
    }

    #[test]
    fn grounding_and_classification_are_computed_once() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&figure1())
            .build()
            .unwrap();
        for _ in 0..3 {
            let q = engine.query("T", &["v0", "v5"]).unwrap();
            assert!(q.is_derivable().unwrap());
            q.eval::<Bool, _>(&AllOnes).unwrap();
            q.circuit(Strategy::Auto).unwrap();
            q.provenance().unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.groundings, 1, "{stats:?}");
        assert_eq!(stats.classifications, 1, "{stats:?}");
        assert_eq!(stats.provenance_runs, 1, "{stats:?}");
        assert_eq!(stats.circuits_built, 1, "{stats:?}");
        assert_eq!(stats.circuit_cache_hits, 2, "{stats:?}");
    }

    #[test]
    fn text_to_answer_without_touching_internals() {
        let engine = Engine::builder()
            .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
            .graph(&generators::path(4, "E"))
            .build()
            .unwrap();
        let q = engine.node_query(0, 4).unwrap();
        assert_eq!(
            q.eval(&UnitWeights::new(Tropical::new(1))).unwrap(),
            Tropical::new(4)
        );
        assert_eq!(q.provenance().unwrap().len(), 1);
    }

    #[test]
    fn product_strategies_never_ground() {
        // The graph constructions (Thms 5.6–5.8) work on the graph itself;
        // querying and compiling through them must not pay the O(n²·m)
        // grounding the grounded-family strategies need.
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::gnm(8, 20, &["E"], 1))
            .build()
            .unwrap();
        let q = engine.node_query(0, 5).unwrap();
        q.circuit(Strategy::ProductSquaring).unwrap();
        q.circuit(Strategy::ProductBellmanFord).unwrap();
        assert_eq!(engine.cache_stats().groundings, 0);
    }

    #[test]
    fn cached_failures_replay_without_recomputation() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::complete(6, "E"))
            .max_grounded_rules(10)
            .build()
            .unwrap();
        for _ in 0..3 {
            assert!(matches!(
                engine.grounding().unwrap_err(),
                Error::GroundingLimit { max_rules: 10 }
            ));
        }
        // The failed grounding ran once, not three times.
        assert_eq!(engine.cache_stats().groundings, 1);
    }

    #[test]
    fn bad_seed_facts_are_rejected_at_build() {
        let typo = Engine::builder()
            .program(programs::monadic_reachability())
            .graph(&generators::path(3, "E"))
            .fact("a", &["v3"])
            .build();
        assert!(matches!(typo.unwrap_err(), Error::UnknownPredicate(_)));
        let arity = Engine::builder()
            .program(programs::monadic_reachability())
            .graph(&generators::path(3, "E"))
            .fact("A", &["v3", "v2"])
            .build();
        assert!(matches!(arity.unwrap_err(), Error::BadQuery(_)));
    }

    #[test]
    fn seeded_facts_reach_the_grounding() {
        let engine = Engine::builder()
            .program(programs::monadic_reachability())
            .graph(&generators::path(3, "E"))
            .fact("A", &["v3"])
            .build()
            .unwrap();
        let q = engine.query("U", &["v0"]).unwrap();
        assert!(q.is_derivable().unwrap());
        assert_eq!(q.eval::<Bool, _>(&AllOnes).unwrap(), Bool(true));
    }

    #[test]
    fn unknown_constants_are_zero_not_errors() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(2, "E"))
            .build()
            .unwrap();
        let q = engine.query("T", &["v0", "nosuch"]).unwrap();
        assert!(!q.is_derivable().unwrap());
        assert_eq!(q.eval::<Bool, _>(&AllOnes).unwrap(), Bool(false));
        assert!(q
            .circuit(Strategy::GroundedFixpoint)
            .unwrap()
            .circuit
            .polynomial()
            .is_empty());
        assert!(q.provenance().unwrap().is_empty());
    }

    #[test]
    fn bad_queries_are_typed_errors() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(2, "E"))
            .build()
            .unwrap();
        assert!(matches!(
            engine.query("Nope", &["v0", "v1"]).unwrap_err(),
            Error::UnknownPredicate(_)
        ));
        assert!(matches!(
            engine.query("T", &["v0"]).unwrap_err(),
            Error::BadQuery(_)
        ));
    }

    #[test]
    fn eval_strategies_agree_through_the_facade() {
        let g = generators::gnm(7, 18, &["E"], 4);
        let semi = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&g)
            .build()
            .unwrap();
        assert_eq!(semi.eval_strategy(), EvalStrategy::SemiNaive);
        let naive = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&g)
            .eval_strategy(EvalStrategy::Naive)
            .build()
            .unwrap();
        assert_eq!(naive.eval_strategy(), EvalStrategy::Naive);
        for src in 0..7u32 {
            for dst in 0..7u32 {
                let unit = UnitWeights::new(Tropical::new(1));
                let a: Tropical = semi.node_query(src, dst).unwrap().eval(&unit).unwrap();
                let b: Tropical = naive.node_query(src, dst).unwrap().eval(&unit).unwrap();
                assert_eq!(a, b, "({src},{dst})");
            }
        }
        // The strategy switch must not disturb the caching contract.
        assert_eq!(semi.cache_stats().groundings, 1);
        assert_eq!(naive.cache_stats().groundings, 1);
    }

    #[test]
    fn parallel_sessions_match_sequential_byte_for_byte() {
        // parallelism(1) is the sequential code path; parallelism(4) must
        // reproduce its grounding (same FactId order) and its answers.
        let g = generators::gnm(8, 20, &["E"], 6);
        let seq = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&g)
            .parallelism(1)
            .build()
            .unwrap();
        let par = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&g)
            .parallelism(4)
            .build()
            .unwrap();
        assert_eq!(seq.parallelism(), 1);
        assert_eq!(par.parallelism(), 4);
        let gs = seq.grounding().unwrap();
        let gparallel = par.grounding().unwrap();
        assert_eq!(gs.idb_facts, gparallel.idb_facts);
        assert_eq!(gs.rules, gparallel.rules);
        let unit = UnitWeights::new(Tropical::new(1));
        for src in 0..8u32 {
            for dst in 0..8u32 {
                let a: Tropical = seq.node_query(src, dst).unwrap().eval(&unit).unwrap();
                let b: Tropical = par.node_query(src, dst).unwrap().eval(&unit).unwrap();
                assert_eq!(a, b, "({src},{dst})");
            }
        }
        // The provenance probe stays naive and bit-identical, iterations
        // included (they feed the Theorem 4.3 layering).
        let ps = seq.provenance_outcome().unwrap();
        let pp = par.provenance_outcome().unwrap();
        assert_eq!(ps.values, pp.values);
        assert_eq!(ps.iterations, pp.iterations);
        // Parallel bottom-up circuit evaluation matches too: the level-
        // synchronous pass must reproduce the sequential gate walk.
        for (src, dst) in [(0u32, 4u32), (1, 5), (2, 7)] {
            let a: Tropical = seq
                .node_query(src, dst)
                .unwrap()
                .circuit_eval(Strategy::Auto, &unit)
                .unwrap();
            let b: Tropical = par
                .node_query(src, dst)
                .unwrap()
                .circuit_eval(Strategy::Auto, &unit)
                .unwrap();
            assert_eq!(a, b, "circuit ({src},{dst})");
        }
    }

    #[test]
    fn parallelism_knob_is_clamped_and_defaulted() {
        let clamped = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(2, "E"))
            .parallelism(0)
            .build()
            .unwrap();
        assert_eq!(clamped.parallelism(), 1);
        let defaulted = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(2, "E"))
            .build()
            .unwrap();
        assert!(defaulted.parallelism() >= 1);
    }

    #[test]
    fn seminaive_fallback_is_counted() {
        // Counting is not ⊕-idempotent: a SemiNaive session silently runs
        // naive — the downgrade must be observable in the cache stats.
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        assert_eq!(engine.cache_stats().seminaive_fallbacks, 0);
        let out = engine
            .fixpoint::<Counting, _>(&UnitWeights::new(Counting::new(1)))
            .unwrap();
        assert_eq!(out.strategy, EvalStrategy::Naive);
        assert_eq!(engine.cache_stats().seminaive_fallbacks, 1);
        // Idempotent semirings stay on the delta path: no extra count.
        let out = engine.fixpoint::<Bool, _>(&AllOnes).unwrap();
        assert_eq!(out.strategy, EvalStrategy::SemiNaive);
        assert_eq!(engine.cache_stats().seminaive_fallbacks, 1);
        // A Naive-strategy session never "falls back" — it asked for naive.
        let naive = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .eval_strategy(EvalStrategy::Naive)
            .build()
            .unwrap();
        naive
            .fixpoint::<Counting, _>(&UnitWeights::new(Counting::new(1)))
            .unwrap();
        assert_eq!(naive.cache_stats().seminaive_fallbacks, 0);
    }

    #[test]
    fn divergence_is_reported() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::cycle(3, "E"))
            .build()
            .unwrap();
        let q = engine.query("T", &["v0", "v1"]).unwrap();
        assert!(matches!(
            q.eval(&UnitWeights::new(Counting::new(1))).unwrap_err(),
            Error::Diverged { .. }
        ));
        // The same engine still answers convergent questions.
        assert_eq!(q.eval::<Bool, _>(&AllOnes).unwrap(), Bool(true));
    }

    #[test]
    fn strategies_agree_through_the_facade() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::gnm(6, 13, &["E"], 2))
            .build()
            .unwrap();
        let q = engine.node_query(0, 5).unwrap();
        let reference = q
            .circuit(Strategy::GroundedFixpoint)
            .unwrap()
            .circuit
            .polynomial();
        for strat in [
            Strategy::ProductBellmanFord,
            Strategy::ProductSquaring,
            Strategy::UllmanVanGelder,
            Strategy::Auto,
        ] {
            let c = q.circuit(strat).unwrap();
            assert_eq!(c.circuit.polynomial(), reference, "{strat:?}");
        }
    }

    #[test]
    fn auto_on_non_target_queries_falls_back_to_db_strategies() {
        // A chain program with helper IDBs: Auto on the graph target uses a
        // graph construction, Auto on a helper predicate must not try one.
        let engine = Engine::builder()
            .program_text(
                "P3(X,Y) :- P2(X,Z), E(Z,Y).\n\
                 P2(X,Y) :- P1(X,Z), E(Z,Y).\n\
                 P1(X,Y) :- E(X,Y).\n\
                 @target P3",
            )
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        let target = engine
            .node_query(0, 3)
            .unwrap()
            .circuit(Strategy::Auto)
            .unwrap();
        assert_eq!(target.strategy, Strategy::MagicFiniteRpq);
        let helper = engine
            .query("P1", &["v0", "v1"])
            .unwrap()
            .circuit(Strategy::Auto)
            .unwrap();
        assert!(
            !matches!(
                helper.strategy,
                Strategy::MagicFiniteRpq | Strategy::ProductBellmanFord | Strategy::ProductSquaring
            ),
            "{:?}",
            helper.strategy
        );
        assert_eq!(helper.circuit.polynomial().len(), 1);
    }

    #[test]
    fn default_builder_matches_new() {
        let engine = EngineBuilder::default()
            .program(programs::transitive_closure())
            .graph(&generators::path(2, "E"))
            .build()
            .unwrap();
        // horizon 5 (not 0): the boundedness probe actually runs.
        assert_eq!(engine.classification().boundedness.verdict, {
            let via_new = Engine::builder()
                .program(programs::transitive_closure())
                .graph(&generators::path(2, "E"))
                .build()
                .unwrap();
            via_new.classification().boundedness.verdict.clone()
        });
    }

    #[test]
    fn graph_strategies_need_a_graph_session() {
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, &generators::path(2, "E"));
        let engine = Engine::builder().program(p).database(db).build().unwrap();
        let q = engine.query("T", &["v0", "v2"]).unwrap();
        let err = q.circuit(Strategy::ProductSquaring).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
    }

    #[test]
    fn builder_misuse_is_rejected() {
        assert!(Engine::builder().build().is_err());
        let both = Engine::builder()
            .program(programs::transitive_closure())
            .program_text("T(X,Y) :- E(X,Y).")
            .build();
        assert!(both.is_err());
        let bad = Engine::builder().program_text("T(X,Y :-").build();
        assert!(matches!(bad.unwrap_err(), Error::Parse { .. }));
    }

    #[test]
    fn grounding_limit_is_enforced_and_typed() {
        let engine = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::complete(6, "E"))
            .max_grounded_rules(10)
            .build()
            .unwrap();
        assert!(matches!(
            engine.grounding().unwrap_err(),
            Error::GroundingLimit { max_rules: 10 }
        ));
    }

    #[test]
    fn insert_maintains_the_cached_grounding_in_place() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(4, "E"))
            .build()
            .unwrap();
        // Force the grounding, then extend the path by a brand-new node.
        assert!(engine
            .query("T", &["v0", "v4"])
            .unwrap()
            .is_derivable()
            .unwrap());
        let out = engine.insert_fact("E", &["v4", "v5"]).unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.facts.len(), 1);
        assert!(out.maintained && out.incremental);
        assert!(out.base_rules > 0);
        assert_eq!(engine.epoch(), 1);
        // The delta was grounded against the cache: no second grounding.
        assert_eq!(engine.cache_stats().groundings, 1);
        assert_eq!(
            engine
                .metrics_handle()
                .counter_value(Counter::IncrementalApplied),
            1
        );
        // The new derivation is there, with the right tropical distance.
        let q = engine.query("T", &["v0", "v5"]).unwrap();
        assert_eq!(
            q.eval(&semiring::UnitWeights::new(Tropical::new(1)))
                .unwrap(),
            Tropical::new(5)
        );
        assert_eq!(engine.cache_stats().groundings, 1);
    }

    #[test]
    fn insert_validation_is_all_or_nothing() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        let facts_before = engine.database().num_facts();
        assert!(matches!(
            engine.insert_fact("Z", &["v0", "v1"]),
            Err(Error::UnknownPredicate(_))
        ));
        assert!(matches!(
            engine.insert_fact("T", &["v0", "v1"]), // IDB: derived, not writable
            Err(Error::BadQuery(_))
        ));
        // A bad fact anywhere in the batch rejects the whole batch.
        assert!(matches!(
            engine.insert_facts(&[("E", &["v3", "v4"]), ("E", &["v0"])]),
            Err(Error::BadQuery(_))
        ));
        assert_eq!(engine.database().num_facts(), facts_before);
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn duplicate_inserts_are_no_ops() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        let out = engine.insert_fact("E", &["v0", "v1"]).unwrap();
        assert_eq!(out.epoch, 0);
        assert!(out.facts.is_empty());
        assert!(out.incremental && !out.maintained);
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn retract_retires_rules_and_keeps_fact_indices_stable() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(4, "E"))
            .build()
            .unwrap();
        let reachable = engine.query("T", &["v0", "v4"]).unwrap();
        assert!(reachable.is_derivable().unwrap());
        let idb_before = engine.grounding().unwrap().num_idb_facts();

        let out = engine.retract_fact("E", &["v1", "v2"]).unwrap();
        assert!(out.maintained && out.incremental);
        assert!(!out.roots.is_empty());
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.cache_stats().groundings, 1);

        // Severed: everything across the cut is now underivable — the facts
        // stay in the grounding as zombies (stable indices) at value 0.
        let gp = engine.grounding().unwrap();
        assert_eq!(gp.num_idb_facts(), idb_before);
        assert!(!engine
            .query("T", &["v0", "v4"])
            .unwrap()
            .is_derivable()
            .unwrap());
        assert!(!engine
            .query("T", &["v0", "v2"])
            .unwrap()
            .is_derivable()
            .unwrap());
        // Still derivable on the surviving prefix/suffix.
        assert!(engine
            .query("T", &["v0", "v1"])
            .unwrap()
            .is_derivable()
            .unwrap());
        assert!(engine
            .query("T", &["v2", "v4"])
            .unwrap()
            .is_derivable()
            .unwrap());
        assert_eq!(engine.cache_stats().groundings, 1);
    }

    #[test]
    fn retracting_an_absent_or_derived_fact_is_an_error() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        assert!(matches!(
            engine.retract_fact("E", &["v0", "v2"]), // no such edge
            Err(Error::BadQuery(_))
        ));
        assert!(matches!(
            engine.retract_fact("T", &["v0", "v1"]), // derived, not EDB
            Err(Error::BadQuery(_))
        ));
        assert!(matches!(
            engine.retract_fact("Z", &["v0"]),
            Err(Error::UnknownPredicate(_))
        ));
        assert_eq!(engine.epoch(), 0);
        // Retracting then re-inserting yields a *fresh* fact id.
        let gone = engine.retract_fact("E", &["v0", "v1"]).unwrap();
        let back = engine.insert_fact("E", &["v0", "v1"]).unwrap();
        assert_ne!(gone.facts, back.facts);
        assert!(engine
            .query("T", &["v0", "v2"])
            .unwrap()
            .is_derivable()
            .unwrap());
    }

    #[test]
    fn insert_falls_back_to_regrounding_when_the_extension_overflows() {
        // Cap the grounding just above the initial size so the delta
        // extension overflows the budget.
        let probe = Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .build()
            .unwrap();
        let base_rules = probe.grounding().unwrap().rules.len();

        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(3, "E"))
            .max_grounded_rules(base_rules)
            .build()
            .unwrap();
        engine.grounding().unwrap();
        let out = engine.insert_fact("E", &["v3", "v4"]).unwrap();
        // The write itself succeeds; only the cache maintenance gave up.
        assert!(!out.incremental && !out.maintained);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(
            engine
                .metrics_handle()
                .counter_value(Counter::IncrementalFallbacks),
            1
        );
        // The next read re-grounds from scratch — and the rebuild honestly
        // re-hits the limit, typed as ever.
        assert!(matches!(
            engine.grounding().unwrap_err(),
            Error::GroundingLimit { .. }
        ));
        assert_eq!(engine.cache_stats().groundings, 2);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes_and_carry_the_epoch() {
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(4, "E"))
            .build()
            .unwrap();
        let before = engine.snapshot().unwrap();
        assert_eq!(before.epoch(), 0);

        engine.retract_fact("E", &["v1", "v2"]).unwrap();
        engine.insert_fact("E", &["v4", "v5"]).unwrap();
        let after = engine.snapshot().unwrap();
        assert_eq!(after.epoch(), 2);

        // The old snapshot still sees the old world (copy-on-write), the
        // new one the new world.
        assert_eq!(
            before
                .eval::<Bool, _>("T", &["v0", "v4"], &AllOnes)
                .unwrap(),
            Bool(true)
        );
        assert_eq!(
            after.eval::<Bool, _>("T", &["v0", "v4"], &AllOnes).unwrap(),
            Bool(false)
        );
        assert_eq!(
            before
                .eval::<Bool, _>("T", &["v4", "v5"], &AllOnes)
                .unwrap(),
            Bool(false)
        );
        assert_eq!(
            after.eval::<Bool, _>("T", &["v4", "v5"], &AllOnes).unwrap(),
            Bool(true)
        );
        // All through one cached-and-maintained grounding.
        assert_eq!(engine.cache_stats().groundings, 1);
    }

    #[test]
    fn delta_outcome_drives_the_value_maintenance_layer() {
        // The Engine maintains the *grounding*; `incremental` maintains the
        // *values*. Wire the two through `DeltaOutcome` and check the
        // maintained fixpoint is bit-identical to recomputation.
        let engine = &mut Engine::builder()
            .program(programs::transitive_closure())
            .graph(&generators::path(4, "E"))
            .build()
            .unwrap();
        let unit = semiring::UnitWeights::new(Tropical::new(1));
        let out0 = engine.fixpoint::<Tropical, _>(&unit).unwrap();
        let mut maintained = incremental::MaintainedFixpoint::start(&out0);

        let ins = engine.insert_fact("E", &["v4", "v5"]).unwrap();
        let gp = engine.grounding().unwrap();
        assert!(maintained.apply_insert(
            gp,
            &unit,
            ins.base_rules,
            engine.budget().unwrap(),
            &telemetry::Noop
        ));
        let fresh = engine.fixpoint::<Tropical, _>(&unit).unwrap();
        assert_eq!(maintained.values(), &fresh.values[..]);

        let del = engine.retract_fact("E", &["v1", "v2"]).unwrap();
        let gp = engine.grounding().unwrap();
        assert!(maintained.apply_retract(
            gp,
            &unit,
            &del.roots,
            engine.budget().unwrap(),
            &telemetry::Noop
        ));
        let fresh = engine.fixpoint::<Tropical, _>(&unit).unwrap();
        assert_eq!(maintained.values(), &fresh.values[..]);
    }
}
