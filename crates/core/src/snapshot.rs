//! Immutable, thread-shareable freezes of an [`Engine`] session.
//!
//! An [`Engine`] is deliberately *not* `Sync`: its lazy caches fill through
//! `OnceCell`/`RefCell` interior mutability, exactly the state that would
//! race under `&Engine` from two threads. [`Engine::snapshot`] resolves the
//! tension by **pre-forcing** the caches a reader needs (grounding,
//! classification, budget) and freezing the shared artifacts behind `Arc`s
//! into an [`EngineSnapshot`]:
//!
//! - physically immutable — no cell is ever written after construction, so
//!   the type is `Send + Sync` by construction (asserted below) and any
//!   number of threads can evaluate concurrently without locks;
//! - cheaply cloneable — a clone is a handful of `Arc` bumps, so a serving
//!   layer can hand every connection its own handle and atomically swap in
//!   a replacement snapshot after a mutation, leaving in-flight readers on
//!   the old one (see `server::session`);
//! - bit-identical to the session — [`EngineSnapshot::eval`] and
//!   [`EngineSnapshot::fixpoint`] run the same
//!   [`par_eval_with_strategy_recorded`] entry points over the same cached
//!   grounding as [`Engine::fixpoint`]/`Query::eval`, so results are the
//!   values the sequential engine would produce.
//!
//! What a snapshot does *not* do: compile new circuits or run provenance
//! fixpoints. Those caches stay on the (single-threaded) session; circuits
//! already compiled before the freeze ride along read-only via
//! [`EngineSnapshot::compiled`].

use std::collections::HashMap;
use std::sync::Arc;

use datalog::{
    magic_point_eval, par_eval_with_strategy_recorded, par_fused_eval_recorded, ConstId, Database,
    EvalOutcome, EvalStrategy, FusedOutcome, GroundedProgram, Program,
};
use provcirc_error::Error;
use semiring::valuation::Valuation;
use semiring::Semiring;
use telemetry::{CacheEvent, PipelineMetrics, Stage};

use crate::classify::Classification;
use crate::compile::{Compiled, Strategy};
use crate::engine::{CircuitKey, Engine};

/// An immutable, `Send + Sync` view over one [`Engine`] session's cached
/// pipeline artifacts — program, database, grounding, classification, and
/// any circuits compiled before the freeze. Built by [`Engine::snapshot`];
/// see the [module docs](self) for the concurrency argument.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    program: Arc<Program>,
    db: Arc<Database>,
    grounding: Arc<GroundedProgram>,
    classification: Arc<Classification>,
    budget: usize,
    eval_strategy: EvalStrategy,
    parallelism: usize,
    epoch: u64,
    circuits: HashMap<CircuitKey, Arc<Compiled>>,
    metrics: Arc<PipelineMetrics>,
}

// The whole point of the type: safe to share across threads. `Compiled`,
// `GroundedProgram`, and friends are plain data; `PipelineMetrics` is
// atomics + mutexed series. If a future field ever reintroduces
// single-threaded interior mutability (`Rc`, `RefCell`, …), this fails to
// compile instead of racing at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
};

impl EngineSnapshot {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: Arc<Program>,
        db: Arc<Database>,
        grounding: Arc<GroundedProgram>,
        classification: Arc<Classification>,
        budget: usize,
        eval_strategy: EvalStrategy,
        parallelism: usize,
        epoch: u64,
        circuits: HashMap<CircuitKey, Arc<Compiled>>,
        metrics: Arc<PipelineMetrics>,
    ) -> Self {
        Self {
            program,
            db,
            grounding,
            classification,
            budget,
            eval_strategy,
            parallelism,
            epoch,
            circuits,
            metrics,
        }
    }

    /// The frozen program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The frozen database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The frozen grounded program every reader evaluates against.
    pub fn grounding(&self) -> &GroundedProgram {
        &self.grounding
    }

    /// The frozen paper-level classification.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The fixpoint iteration budget captured at snapshot time.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The fixpoint algorithm captured at snapshot time.
    pub fn eval_strategy(&self) -> EvalStrategy {
        self.eval_strategy
    }

    /// Threads each *single* evaluation shards across (captured at
    /// snapshot time). A serving layer typically keeps this at 1 and gets
    /// its parallelism from concurrent readers instead — see the
    /// worker-pool sizing discussion in `docs/ARCHITECTURE.md`.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The write epoch of the originating session at freeze time: which
    /// generation of the database this snapshot sees. Bumped by
    /// [`Engine::insert_facts`]/[`Engine::retract_facts`]; a serving layer
    /// compares epochs to tell whether a reader handle predates a write.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The telemetry collector shared with the originating session:
    /// evaluations through the snapshot accumulate into the same stream.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Resolve `pred(tuple…)` to its index in the frozen grounding.
    ///
    /// `Ok(None)` means the fact is not derivable (it evaluates to `0`,
    /// matching the paper's semantics); unknown predicates and arity
    /// mismatches are errors, exactly as in [`Engine::query`].
    pub fn fact_index(&self, pred: &str, tuple: &[&str]) -> Result<Option<usize>, Error> {
        let pred_id = self
            .program
            .preds
            .get(pred)
            .ok_or_else(|| Error::UnknownPredicate(pred.to_owned()))?;
        if let Some(arity) = self.program.arity(pred_id) {
            if arity != tuple.len() {
                return Err(Error::BadQuery(format!(
                    "{pred} has arity {arity}, got {} arguments",
                    tuple.len()
                )));
            }
        }
        let consts: Option<Vec<ConstId>> = tuple.iter().map(|c| self.db.consts.get(c)).collect();
        Ok(consts.and_then(|t| self.grounding.fact(pred_id, &t)))
    }

    /// Run the frozen grounding's fixpoint over any semiring under a
    /// valuation — the snapshot counterpart of [`Engine::fixpoint`], same
    /// entry point, same results. Non-convergence is reported in the
    /// outcome, not as an error.
    pub fn fixpoint<S, V>(&self, valuation: &V) -> EvalOutcome<S>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        let out = telemetry::time(&*self.metrics, Stage::Eval, || {
            par_eval_with_strategy_recorded(
                self.eval_strategy,
                &self.grounding,
                valuation,
                self.budget,
                self.parallelism,
                &*self.metrics,
                Stage::Eval,
            )
        });
        if self.eval_strategy == EvalStrategy::SemiNaive && out.strategy == EvalStrategy::Naive {
            self.metrics.cache_event(CacheEvent::SeminaiveFallback);
        }
        out
    }

    /// Evaluate one fact over any semiring under a valuation — the
    /// snapshot counterpart of `Query::eval`. Underivable facts evaluate
    /// to `0`; a fixpoint that does not converge within the frozen budget
    /// errors with [`Error::Diverged`].
    ///
    /// Each call runs one fixpoint. To evaluate *many* facts under one
    /// valuation (the batched serving path), run
    /// [`fixpoint`](EngineSnapshot::fixpoint) once and index its `values`
    /// by [`fact_index`](EngineSnapshot::fact_index).
    pub fn eval<S, V>(&self, pred: &str, tuple: &[&str], valuation: &V) -> Result<S, Error>
    where
        S: Semiring,
        V: Valuation<S> + Sync + ?Sized,
    {
        let Some(fact) = self.fact_index(pred, tuple)? else {
            return Ok(S::zero());
        };
        let out = self.fixpoint::<S, V>(valuation);
        if !out.converged {
            return Err(Error::Diverged {
                iterations: self.budget,
            });
        }
        Ok(out.values[fact].clone())
    }

    /// Run the fused ground+eval pipeline against the frozen
    /// program/database — the snapshot counterpart of
    /// `Engine::fused_fixpoint`. The frozen **grounding is not touched**:
    /// discovery re-streams every grounded rule into the ⊕-worklist, so
    /// the outcome carries its own (bit-identical) fact list. The frozen
    /// budget caps the fused rounds.
    pub fn fused_fixpoint<S, V>(&self, valuation: &V) -> Result<FusedOutcome<S>, Error>
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        par_fused_eval_recorded(
            &self.program,
            &self.db,
            valuation,
            Some(self.budget),
            self.parallelism,
            &*self.metrics,
        )
    }

    /// Evaluate one goal demand-driven (magic-set rewrite, cone-only
    /// grounding) against the frozen program/database — the snapshot
    /// counterpart of the `Pipeline::Magic` route of `Query::eval`.
    ///
    /// `Ok(None)` means the goal is not eligible for the rewrite (fall
    /// back to the materialized path); constants outside the domain
    /// evaluate to `0`; unknown predicates and arity mismatches are
    /// errors, exactly as in [`fact_index`](EngineSnapshot::fact_index);
    /// a cone fixpoint that does not converge errors with
    /// [`Error::Diverged`].
    pub fn magic_point<S, V>(
        &self,
        pred: &str,
        tuple: &[&str],
        valuation: &V,
    ) -> Result<Option<S>, Error>
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        let pred_id = self
            .program
            .preds
            .get(pred)
            .ok_or_else(|| Error::UnknownPredicate(pred.to_owned()))?;
        if let Some(arity) = self.program.arity(pred_id) {
            if arity != tuple.len() {
                return Err(Error::BadQuery(format!(
                    "{pred} has arity {arity}, got {} arguments",
                    tuple.len()
                )));
            }
        }
        let consts: Option<Vec<ConstId>> = tuple.iter().map(|c| self.db.consts.get(c)).collect();
        let Some(consts) = consts else {
            // Out-of-domain constant: underivable under every pipeline.
            // Still only an answer if the rewrite applies at all — an
            // ineligible goal must fall back whole.
            return Ok(magic_eligible(&self.program, pred_id, tuple.len()).then(S::zero));
        };
        match magic_point_eval::<S, _>(
            &self.program,
            &self.db,
            pred_id,
            &consts,
            valuation,
            None,
            &*self.metrics,
        )? {
            None => Ok(None),
            // Divergence is only an error for derivable goals — an
            // absent goal renders 0 whatever the rest of the cone did,
            // matching the materialized route's resolve-before-eval.
            Some(out) if out.derivable && !out.converged => Err(Error::Diverged {
                iterations: out.iterations,
            }),
            Some(out) => Ok(Some(out.value)),
        }
    }

    /// A circuit compiled on the originating session before the freeze,
    /// if one was cached for exactly this fact and (resolved) strategy.
    /// Snapshots never compile: a miss returns `None` rather than doing
    /// single-threaded work on a shared handle.
    pub fn compiled(
        &self,
        pred: &str,
        tuple: &[&str],
        strategy: Strategy,
    ) -> Option<Arc<Compiled>> {
        let pred_id = self.program.preds.get(pred)?;
        let consts: Option<Vec<ConstId>> = tuple.iter().map(|c| self.db.consts.get(c)).collect();
        let key: CircuitKey = (pred_id, consts?, strategy);
        self.circuits.get(&key).map(Arc::clone)
    }

    /// Number of compiled circuits frozen into this snapshot.
    pub fn compiled_count(&self) -> usize {
        self.circuits.len()
    }
}

/// Mirror of `magic_point_eval`'s eligibility test, for goals whose
/// constants fall outside the domain (there is no tuple to hand the
/// rewrite, but the fallback decision must match).
fn magic_eligible(program: &Program, pred: datalog::PredId, arity: usize) -> bool {
    datalog::classify(program).is_left_linear_chain && program.idbs().contains(&pred) && arity == 2
}

/// Convenience: freeze directly from a reference, equivalent to
/// [`Engine::snapshot`].
impl TryFrom<&Engine> for EngineSnapshot {
    type Error = Error;

    fn try_from(engine: &Engine) -> Result<Self, Error> {
        engine.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use semiring::valuation::{AllOnes, UnitWeights};
    use semiring::{Bool, Counting, Tropical};

    const TC: &str = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";

    fn tc_engine() -> Engine {
        Engine::builder()
            .program_text(TC)
            .graph(&graphgen::generators::path(5, "E"))
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_matches_engine_results() {
        let engine = tc_engine();
        let snap = engine.snapshot().unwrap();
        let from_engine: Tropical = engine
            .query("T", &["v0", "v5"])
            .unwrap()
            .eval(&UnitWeights::new(Tropical::new(1)))
            .unwrap();
        let from_snap: Tropical = snap
            .eval("T", &["v0", "v5"], &UnitWeights::new(Tropical::new(1)))
            .unwrap();
        assert_eq!(from_engine, from_snap);
        assert_eq!(from_snap, Tropical::new(5));
    }

    #[test]
    fn snapshot_grounds_nothing_new() {
        let engine = tc_engine();
        let snap = engine.snapshot().unwrap();
        let before = engine.cache_stats();
        assert_eq!(before.groundings, 1);
        let _: EvalOutcome<Bool> = snap.fixpoint(&AllOnes);
        let _: Counting = snap.eval("T", &["v0", "v3"], &AllOnes).unwrap();
        // Evaluations through the snapshot reuse the frozen grounding.
        assert_eq!(engine.cache_stats().groundings, 1);
    }

    #[test]
    fn snapshot_fact_index_mirrors_query_semantics() {
        let engine = tc_engine();
        let snap = engine.snapshot().unwrap();
        assert!(snap.fact_index("T", &["v0", "v1"]).unwrap().is_some());
        // Out-of-domain constant: underivable, not an error.
        assert!(snap.fact_index("T", &["v0", "nope"]).unwrap().is_none());
        assert!(matches!(
            snap.fact_index("Z", &["v0"]),
            Err(Error::UnknownPredicate(_))
        ));
        assert!(matches!(
            snap.fact_index("T", &["v0"]),
            Err(Error::BadQuery(_))
        ));
        let b: Bool = snap.eval("T", &["v0", "nope"], &AllOnes).unwrap();
        assert_eq!(b, Bool::zero());
    }

    #[test]
    fn precompiled_circuits_ride_along() {
        let engine = tc_engine();
        let empty = engine.snapshot().unwrap();
        assert_eq!(empty.compiled_count(), 0);
        let compiled = engine
            .query("T", &["v0", "v5"])
            .unwrap()
            .circuit(Strategy::Auto)
            .unwrap();
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.compiled_count(), 1);
        let hit = snap
            .compiled("T", &["v0", "v5"], compiled.strategy)
            .expect("compiled circuit frozen into snapshot");
        assert_eq!(hit.stats.num_gates, compiled.stats.num_gates);
        // Misses stay misses: snapshots never compile.
        assert!(snap
            .compiled("T", &["v1", "v5"], compiled.strategy)
            .is_none());
    }

    #[test]
    fn concurrent_readers_agree_with_sequential() {
        let engine = tc_engine();
        let expected = engine.fixpoint::<Tropical, _>(&UnitWeights::new(Tropical::new(1)));
        let expected = expected.unwrap();
        let snap = Arc::new(engine.snapshot().unwrap());
        let outs: Vec<EvalOutcome<Tropical>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let snap = Arc::clone(&snap);
                    s.spawn(move || {
                        snap.fixpoint::<Tropical, _>(&UnitWeights::new(Tropical::new(1)))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in outs {
            assert_eq!(out.values, expected.values);
            assert_eq!(out.iterations, expected.iterations);
        }
    }
}
