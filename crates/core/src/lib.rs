//! `provcirc` — the paper-level API of the `datalog-circuits` workspace:
//! classification and compilation of Datalog provenance into semiring
//! circuits, after *Circuits and Formulas for Datalog over Semirings*
//! (Fan, Koutris, Roy — PODS 2025).
//!
//! Three questions, three modules:
//!
//! * **"Which depth class is my program in?"** — [`classify`] reports the
//!   paper's dichotomies: Θ(log m) vs Θ(log² m) circuit depth and the
//!   polynomial-size-formula verdict (Theorems 4.3, 5.3, 5.4, 6.2, 6.5).
//! * **"Is it bounded?"** — [`boundedness`] decides exactly for basic chain
//!   programs (Prop 5.5), gathers Theorem 4.6 expansion evidence otherwise,
//!   and probes Definition 4.1 empirically (including the Corollary 4.7
//!   cross-semiring agreement).
//! * **"Give me the circuit."** — [`compile`] dispatches to the
//!   construction the classification recommends and returns the circuit
//!   with its size/depth/formula-size statistics.
//!
//! ```
//! use provcirc::prelude::*;
//!
//! // Transitive closure: the paper's running example.
//! let program = datalog::programs::transitive_closure();
//! let graph = graphgen::generators::path(4, "E");
//!
//! // Θ(log² m): infinite regular language (Theorem 5.3).
//! let report = classify_program(&program, 5);
//! assert_eq!(report.depth_upper, DepthBound::LogSquared);
//! assert_eq!(report.formula, FormulaVerdict::SuperPolynomial);
//!
//! // Compile T(v0, v4) and evaluate its provenance over the tropical
//! // semiring: the shortest path has weight 4.
//! let compiled = compile_graph_fact(&program, &graph, 0, 4, Strategy::Auto).unwrap();
//! use semiring::{Semiring, Tropical};
//! assert_eq!(compiled.circuit.eval(&|_| Tropical::new(1)), Tropical::new(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundedness;
pub mod classify;
pub mod compile;

pub use boundedness::{
    cross_semiring_iterations, decide_boundedness, empirical_iterations, BoundednessOptions,
    BoundednessReport, UnboundedReason, Verdict,
};
pub use classify::{classify_program, Classification, DepthBound, FormulaVerdict, GrammarInfo};
pub use compile::{chain_program_dfa, compile_fact, compile_graph_fact, Compiled, Strategy};

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use crate::boundedness::{decide_boundedness, BoundednessOptions, Verdict};
    pub use crate::classify::{classify_program, Classification, DepthBound, FormulaVerdict};
    pub use crate::compile::{compile_fact, compile_graph_fact, Compiled, Strategy};
}
