//! `provcirc` — the paper-level API of the `datalog-circuits` workspace:
//! classification and compilation of Datalog provenance into semiring
//! circuits, after *Circuits and Formulas for Datalog over Semirings*
//! (Fan, Koutris, Roy — PODS 2025).
//!
//! The front door is the [`Engine`] session: one object owning the program,
//! the database, and every lazily cached derived artifact (grounding,
//! classification, provenance, compiled circuits):
//!
//! ```
//! use provcirc::prelude::*;
//! use semiring::{Semiring, Tropical, UnitWeights};
//!
//! // Transitive closure — the paper's running example — on a 5-node path.
//! let engine = Engine::builder()
//!     .program_text("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).")
//!     .graph(&graphgen::generators::path(4, "E"))
//!     .build()
//!     .unwrap();
//!
//! // Θ(log² m): infinite regular language (Theorem 5.3).
//! let report = engine.classification();
//! assert_eq!(report.depth_upper, DepthBound::LogSquared);
//! assert_eq!(report.formula, FormulaVerdict::SuperPolynomial);
//!
//! // Query T(v0, v4): evaluate over the tropical semiring (shortest path
//! // with unit weights = 4) and compile the provenance circuit once.
//! let q = engine.query("T", &["v0", "v4"]).unwrap();
//! let unit = UnitWeights::new(Tropical::new(1));
//! assert_eq!(q.eval(&unit).unwrap(), Tropical::new(4));
//! let compiled = q.circuit(Strategy::Auto).unwrap();
//! assert_eq!(compiled.circuit.eval(&unit), Tropical::new(4));
//! ```
//!
//! Behind the facade, three questions map to three modules:
//!
//! * **"Which depth class is my program in?"** — [`classify`] reports the
//!   paper's dichotomies: Θ(log m) vs Θ(log² m) circuit depth and the
//!   polynomial-size-formula verdict (Theorems 4.3, 5.3, 5.4, 6.2, 6.5).
//! * **"Is it bounded?"** — [`boundedness`] decides exactly for basic chain
//!   programs (Prop 5.5), gathers Theorem 4.6 expansion evidence otherwise,
//!   and probes Definition 4.1 empirically (including the Corollary 4.7
//!   cross-semiring agreement).
//! * **"Give me the circuit."** — [`compile`] dispatches to the
//!   construction the classification recommends; [`engine`] caches the
//!   shared grounding/classification across queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundedness;
pub mod classify;
pub mod compile;
pub mod engine;
pub mod snapshot;

pub use provcirc_error::Error;

pub use boundedness::{
    cross_semiring_iterations, decide_boundedness, empirical_iterations, BoundednessOptions,
    BoundednessReport, UnboundedReason, Verdict,
};
pub use classify::{classify_program, Classification, DepthBound, FormulaVerdict, GrammarInfo};
pub use compile::{chain_program_dfa, compile_fact, compile_graph_fact, Compiled, Strategy};
pub use datalog::EvalStrategy;
pub use engine::{DeltaOutcome, Engine, EngineBuilder, EngineCacheStats, Pipeline, Query};
pub use snapshot::EngineSnapshot;

pub use incremental;
pub use telemetry;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use crate::boundedness::{decide_boundedness, BoundednessOptions, Verdict};
    pub use crate::classify::{classify_program, Classification, DepthBound, FormulaVerdict};
    pub use crate::compile::{compile_fact, compile_graph_fact, Compiled, Strategy};
    pub use crate::engine::{
        DeltaOutcome, Engine, EngineBuilder, EngineCacheStats, Pipeline, Query,
    };
    pub use crate::snapshot::EngineSnapshot;
    pub use datalog::EvalStrategy;
    pub use incremental::MaintainedFixpoint;
    pub use provcirc_error::Error;
}
