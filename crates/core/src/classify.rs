//! Program-level classification into the paper's depth and formula classes.
//!
//! For each fragment the paper pins down, this module reports the best
//! known circuit-depth upper bound, the matching lower bound where one is
//! proven, and the polynomial-size-formula verdict:
//!
//! * bounded programs → Θ(log m), polynomial formulas (Thm 4.3 + Prop 3.3);
//! * basic chain, finite language → Θ(log m) (Thm 5.3/5.4, Prop 5.5);
//! * basic chain, infinite language → Ω(log² m) (Thms 5.9/5.11) with an
//!   O(log² m) upper bound when the program is linear or otherwise has the
//!   polynomial fringe property (Thm 6.2), and the grounded polynomial
//!   upper bound otherwise (Table 1, row 3);
//! * monadic linear connected over Chom semirings → the full dichotomy of
//!   Theorem 6.5, with boundedness decided up to expansion-horizon
//!   evidence (boundedness is undecidable in general, §4).

use datalog::{classify as classify_syntax, Program, ProgramClass};
use grammar::{CfgAnalysis, Cnf, LanguageSize};

use crate::boundedness::{decide_boundedness, BoundednessOptions, BoundednessReport, Verdict};

/// Asymptotic depth classes (in the input size `m`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepthBound {
    /// O(log m) / Ω(log m).
    Log,
    /// O(log² m) / Ω(log² m).
    LogSquared,
    /// O(D log m) where D is the fixpoint iteration count (the general
    /// grounded construction of Theorem 3.1; polynomial depth).
    FixpointTimesLog,
    /// No bound established by the paper.
    Unknown,
}

/// Whether the target admits polynomial-size formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormulaVerdict {
    /// Polynomial-size formulas exist (log-depth circuits, Prop 3.3).
    Polynomial,
    /// Super-polynomial formula size is forced (Thms 5.4, 5.10, 6.5).
    SuperPolynomial,
    /// Open for this program (the paper's §6.1 remark: no full dichotomy).
    Unknown,
}

/// Grammar-level information for chain programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrammarInfo {
    /// Language size of the corresponding CFG.
    pub language: LanguageSize,
    /// Whether the grammar is left- or right-linear (an RPQ).
    pub regular: bool,
    /// Longest word for finite languages (the boundedness constant).
    pub longest_word: Option<u64>,
}

/// The complete classification of a program.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Syntactic fragment flags.
    pub syntax: ProgramClass,
    /// Chain-program grammar analysis, when applicable.
    pub grammar: Option<GrammarInfo>,
    /// Boundedness verdict (exact for chain programs, evidence otherwise).
    pub boundedness: BoundednessReport,
    /// Whether the polynomial fringe property is established (true for
    /// linear programs by Cor 6.3; chain-program grammars like Dyck-1 can
    /// be asserted by the caller when compiling).
    pub poly_fringe: bool,
    /// Best known depth upper bound.
    pub depth_upper: DepthBound,
    /// Best known depth lower bound.
    pub depth_lower: DepthBound,
    /// Formula-size verdict.
    pub formula: FormulaVerdict,
}

/// Classify a program. `horizon` bounds the expansion search used for the
/// (undecidable in general) boundedness evidence on non-chain programs.
pub fn classify_program(program: &Program, horizon: usize) -> Classification {
    let syntax = classify_syntax(program);
    let grammar = if syntax.is_chain {
        datalog::chain_to_cfg(program).ok().map(|cfg| {
            let cnf = Cnf::from_cfg(&cfg);
            let analysis = CfgAnalysis::new(&cnf);
            GrammarInfo {
                language: analysis.language_size().clone(),
                regular: cfg.is_regular(),
                longest_word: analysis.longest_word_len(&cnf),
            }
        })
    } else {
        None
    };
    let boundedness = decide_boundedness(
        program,
        &BoundednessOptions {
            horizon,
            ..BoundednessOptions::default()
        },
    );
    let poly_fringe = syntax.is_linear;

    let bounded = matches!(boundedness.verdict, Verdict::Bounded(_));
    let unbounded = matches!(boundedness.verdict, Verdict::Unbounded(_));
    // For the Theorem 6.5/6.8 dichotomy, expansion-horizon evidence stands
    // in for the (decidable but heavyweight) Cosmadakis et al. procedure;
    // the report records that it is evidence, not proof.
    let evidence_unbounded = matches!(boundedness.verdict, Verdict::LikelyUnbounded(_));
    let evidence_bounded = matches!(boundedness.verdict, Verdict::LikelyBounded(_));

    // Depth upper bound.
    let depth_upper = if bounded || evidence_bounded || !syntax.is_recursive {
        DepthBound::Log
    } else if poly_fringe {
        DepthBound::LogSquared
    } else {
        DepthBound::FixpointTimesLog
    };

    // Depth lower bound. Ω(log m) is information-theoretic (fan-in 2);
    // Ω(log² m) for provably unbounded chain programs (Thms 5.9/5.11) and
    // for unbounded monadic linear connected programs (Thm 6.8).
    let chain_unbounded = syntax.is_chain && unbounded;
    let mlc_unbounded = syntax.is_monadic
        && syntax.is_linear
        && syntax.is_connected
        && (unbounded || evidence_unbounded);
    let depth_lower = if chain_unbounded || mlc_unbounded {
        DepthBound::LogSquared
    } else {
        DepthBound::Log
    };

    // Formula verdict.
    let formula = if bounded || evidence_bounded || !syntax.is_recursive {
        FormulaVerdict::Polynomial
    } else if chain_unbounded || mlc_unbounded {
        FormulaVerdict::SuperPolynomial
    } else {
        FormulaVerdict::Unknown
    };

    Classification {
        syntax,
        grammar,
        boundedness,
        poly_fringe,
        depth_upper,
        depth_lower,
        formula,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::programs;

    #[test]
    fn tc_gets_the_theta_log_squared_dichotomy() {
        let c = classify_program(&programs::transitive_closure(), 5);
        assert_eq!(c.depth_upper, DepthBound::LogSquared);
        assert_eq!(c.depth_lower, DepthBound::LogSquared);
        assert_eq!(c.formula, FormulaVerdict::SuperPolynomial);
        let g = c.grammar.unwrap();
        assert_eq!(g.language, LanguageSize::Infinite);
        assert!(g.regular);
    }

    #[test]
    fn finite_rpq_is_log_depth_with_poly_formulas() {
        let c = classify_program(&programs::three_hops(), 5);
        assert_eq!(c.depth_upper, DepthBound::Log);
        assert_eq!(c.depth_lower, DepthBound::Log);
        assert_eq!(c.formula, FormulaVerdict::Polynomial);
        assert_eq!(c.grammar.unwrap().longest_word, Some(3));
    }

    #[test]
    fn bounded_example_is_log_depth() {
        let c = classify_program(&programs::bounded_example(), 6);
        assert_eq!(c.depth_upper, DepthBound::Log);
        assert_eq!(c.formula, FormulaVerdict::Polynomial);
    }

    #[test]
    fn dyck_is_unbounded_chain_without_linearity() {
        let c = classify_program(&programs::dyck1(), 4);
        // Unbounded chain ⇒ Ω(log²) lower bound and super-poly formulas;
        // upper bound from the classifier is the grounded construction
        // (Dyck's polynomial fringe is not *derived* syntactically).
        assert_eq!(c.depth_lower, DepthBound::LogSquared);
        assert_eq!(c.formula, FormulaVerdict::SuperPolynomial);
        assert!(!c.poly_fringe);
        assert_eq!(c.depth_upper, DepthBound::FixpointTimesLog);
    }

    #[test]
    fn monadic_reachability_gets_theorem_6_5() {
        let c = classify_program(&programs::monadic_reachability(), 5);
        assert!(c.syntax.is_monadic && c.syntax.is_linear && c.syntax.is_connected);
        assert_eq!(c.depth_upper, DepthBound::LogSquared); // Thm 6.2 via linearity
        assert_eq!(c.depth_lower, DepthBound::LogSquared); // Thm 6.8
        assert_eq!(c.formula, FormulaVerdict::SuperPolynomial);
    }

    #[test]
    fn same_generation_is_an_unbounded_chain_program() {
        // SG(x,y) :- U(x,w), SG(w,z), D(z,y) *is* a chain rule, so the full
        // chain dichotomy applies: grammar U* F D* is infinite.
        let c = classify_program(&programs::same_generation(), 4);
        assert!(c.syntax.is_chain && c.syntax.is_linear);
        assert_eq!(c.depth_upper, DepthBound::LogSquared); // Cor 6.3
        assert_eq!(c.depth_lower, DepthBound::LogSquared); // Thm 5.11
        assert_eq!(c.formula, FormulaVerdict::SuperPolynomial); // Thm 5.12
    }

    #[test]
    fn linear_non_chain_binary_gets_upper_bound_only() {
        // Linear, connected, binary (not monadic), not chain (the IDB atom
        // starts with the head's *second* variable): only the Cor 6.3
        // O(log²) upper bound applies; no lower bound, formula open (§6.1
        // remark: no full dichotomy).
        let p = datalog::parse_program("P(X,Y) :- E(X,Y).\nP(X,Y) :- P(Y,Z), E(Z,X).").unwrap();
        let c = classify_program(&p, 4);
        assert!(c.syntax.is_linear && !c.syntax.is_chain && !c.syntax.is_monadic);
        assert_eq!(c.depth_upper, DepthBound::LogSquared);
        assert_eq!(c.depth_lower, DepthBound::Log);
        assert_eq!(c.formula, FormulaVerdict::Unknown);
    }
}
