//! Compilation of Datalog facts into provenance circuits: strategy
//! selection and dispatch over the paper's constructions.

use circuit::{Circuit, CircuitStats};
use datalog::{Database, Program};
use grammar::{Cfg, Dfa};
use graphgen::{LabeledDigraph, NodeId};

use crate::classify::{classify_program, Classification};
use crate::boundedness::Verdict;

/// Which construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Pick based on [`classify_program`].
    Auto,
    /// Theorem 3.1: layered circuit over the grounding, run to fixpoint.
    GroundedFixpoint,
    /// Theorem 4.3: layered circuit truncated at the boundedness constant
    /// (determined by a provenance probe when not supplied).
    BoundedLayered,
    /// Theorem 5.8: magic-set rewriting for finite left-linear RPQs
    /// (graph facts only).
    MagicFiniteRpq,
    /// Theorem 5.6 on the Theorem 5.9 product graph (graph facts only).
    ProductBellmanFord,
    /// Theorem 5.7 on the product graph (graph facts only).
    ProductSquaring,
    /// Theorem 6.2: the Ullman–Van Gelder O(log² m)-depth circuit.
    UllmanVanGelder,
}

/// A compiled fact.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The circuit computing the fact's provenance polynomial.
    pub circuit: Circuit,
    /// The strategy actually used (resolved from `Auto`).
    pub strategy: Strategy,
    /// Live-circuit metrics.
    pub stats: CircuitStats,
    /// The classification that drove `Auto` (always populated).
    pub classification: Classification,
}

/// Compile the provenance circuit of `pred(tuple…)` against a database.
///
/// Graph-specific strategies (`MagicFiniteRpq`, `Product*`) are rejected
/// here; use [`compile_graph_fact`] for chain programs over labeled graphs.
pub fn compile_fact(
    program: &Program,
    db: &Database,
    pred: &str,
    tuple: &[&str],
    strategy: Strategy,
) -> Result<Compiled, String> {
    let classification = classify_program(program, 5);
    let resolved = match strategy {
        Strategy::Auto => {
            if matches!(
                classification.boundedness.verdict,
                Verdict::Bounded(_) | Verdict::LikelyBounded(_)
            ) || !classification.syntax.is_recursive
            {
                Strategy::BoundedLayered
            } else if classification.poly_fringe {
                Strategy::UllmanVanGelder
            } else {
                Strategy::GroundedFixpoint
            }
        }
        s => s,
    };
    let gp = datalog::ground(program, db)?;
    let pred_id = program
        .preds
        .get(pred)
        .ok_or_else(|| format!("unknown predicate {pred}"))?;
    let tuple_ids: Option<Vec<u32>> = tuple.iter().map(|c| db.consts.get(c)).collect();
    let fact = tuple_ids.and_then(|t| gp.fact(pred_id, &t));
    let circuit = match fact {
        None => constant_zero(),
        Some(fact) => match resolved {
            Strategy::GroundedFixpoint => {
                circuit::grounded_circuit(&gp, None).circuit_for(fact)
            }
            Strategy::BoundedLayered => {
                // Provenance probe for the boundedness constant (exact over
                // the universal absorptive semiring).
                let probe = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
                if !probe.converged {
                    return Err("provenance evaluation did not converge".into());
                }
                circuit::grounded_circuit(&gp, Some(probe.iterations)).circuit_for(fact)
            }
            Strategy::UllmanVanGelder => circuit::uvg_circuit(&gp, None).circuit_for(fact),
            other => {
                return Err(format!(
                    "strategy {other:?} needs a graph fact; use compile_graph_fact"
                ))
            }
        },
    };
    let stats = circuit::stats(&circuit);
    Ok(Compiled {
        circuit,
        strategy: resolved,
        stats,
        classification,
    })
}

/// Compile `target(v_src, v_dst)` for a basic chain program over a labeled
/// graph, enabling the graph-specialized constructions.
pub fn compile_graph_fact(
    program: &Program,
    graph: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
    strategy: Strategy,
) -> Result<Compiled, String> {
    let classification = classify_program(program, 5);
    let resolved = match strategy {
        Strategy::Auto => resolve_graph_auto(&classification),
        s => s,
    };
    match resolved {
        Strategy::MagicFiniteRpq => {
            let out = circuit::finite_rpq_circuit(program, graph, src, dst)?;
            let stats = circuit::stats(&out.circuit);
            Ok(Compiled {
                circuit: out.circuit,
                strategy: resolved,
                stats,
                classification,
            })
        }
        Strategy::ProductBellmanFord | Strategy::ProductSquaring => {
            let dfa = chain_program_dfa(program, graph)?;
            let strat = if resolved == Strategy::ProductBellmanFord {
                circuit::TcStrategy::BellmanFord
            } else {
                circuit::TcStrategy::RepeatedSquaring
            };
            let circuit = circuit::rpq_circuit(graph, &dfa, src, dst, strat);
            let stats = circuit::stats(&circuit);
            Ok(Compiled {
                circuit,
                strategy: resolved,
                stats,
                classification,
            })
        }
        other => {
            // Grounding-based strategies reuse compile_fact.
            let mut p = program.clone();
            let (db, _) = Database::from_graph(&mut p, graph);
            let target = p.preds.name(p.target).to_owned();
            let (s, d) = (format!("v{src}"), format!("v{dst}"));
            compile_fact(&p, &db, &target, &[&s, &d], other)
        }
    }
}

fn resolve_graph_auto(c: &Classification) -> Strategy {
    if let Some(g) = &c.grammar {
        if g.regular {
            return if g.language == grammar::LanguageSize::Infinite {
                Strategy::ProductSquaring
            } else {
                Strategy::MagicFiniteRpq
            };
        }
    }
    if matches!(
        c.boundedness.verdict,
        Verdict::Bounded(_) | Verdict::LikelyBounded(_)
    ) {
        Strategy::BoundedLayered
    } else if c.poly_fringe {
        Strategy::UllmanVanGelder
    } else {
        Strategy::GroundedFixpoint
    }
}

/// The minimal DFA of a left-linear chain program, translated onto the
/// graph's alphabet ids.
pub fn chain_program_dfa(program: &Program, graph: &LabeledDigraph) -> Result<Dfa, String> {
    let cfg: Cfg = datalog::chain_to_cfg(program)?;
    let dfa = grammar::left_linear_dfa(&cfg)
        .ok_or("program is not left-linear; no RPQ automaton")?;
    // Translate terminal ids: cfg alphabet → graph alphabet (by name).
    let transitions: Vec<(usize, grammar::Terminal, usize)> = dfa
        .transitions()
        .filter_map(|(q, t, q2)| {
            graph
                .alphabet
                .get(cfg.alphabet.name(t))
                .map(|t2| (q, t2, q2))
        })
        .collect();
    Ok(Dfa::from_parts(
        dfa.num_states,
        dfa.start,
        dfa.accepting.clone(),
        graph.alphabet.len().max(1),
        &transitions,
    ))
}

fn constant_zero() -> Circuit {
    let mut b = circuit::CircuitBuilder::new();
    let z = b.zero();
    b.finish(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::programs;
    use graphgen::generators;
    use semiring::Tropical;

    #[test]
    fn auto_picks_squaring_for_tc() {
        let p = programs::transitive_closure();
        let g = generators::gnm(6, 12, &["E"], 1);
        let c = compile_graph_fact(&p, &g, 0, 4, Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::ProductSquaring);
    }

    #[test]
    fn auto_picks_magic_for_finite_rpq() {
        let p = datalog::parse_program(
            "P3(X,Y) :- P2(X,Z), E(Z,Y).\n\
             P2(X,Y) :- P1(X,Z), E(Z,Y).\n\
             P1(X,Y) :- E(X,Y).\n\
             @target P3",
        )
        .unwrap();
        let g = generators::path(3, "E");
        let c = compile_graph_fact(&p, &g, 0, 3, Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::MagicFiniteRpq);
        assert_eq!(c.circuit.polynomial().len(), 1);
    }

    #[test]
    fn all_graph_strategies_agree_on_tc() {
        let p = programs::transitive_closure();
        for seed in 0..3u64 {
            let g = generators::gnm(6, 13, &["E"], seed);
            let reference = compile_graph_fact(&p, &g, 0, 5, Strategy::GroundedFixpoint)
                .unwrap()
                .circuit
                .polynomial();
            for strat in [
                Strategy::ProductBellmanFord,
                Strategy::ProductSquaring,
                Strategy::UllmanVanGelder,
                Strategy::Auto,
            ] {
                let c = compile_graph_fact(&p, &g, 0, 5, strat).unwrap();
                assert_eq!(c.circuit.polynomial(), reference, "seed {seed} {strat:?}");
            }
        }
    }

    #[test]
    fn compile_fact_on_non_graph_database() {
        // Monadic reachability with a seeded A fact.
        let mut p = programs::monadic_reachability();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        let a = p.preds.get("A").unwrap();
        let v3 = db.node_const(3).unwrap();
        db.insert(a, vec![v3]);
        let c = compile_fact(&p, &db, "U", &["v0"], Strategy::Auto).unwrap();
        // U(v0): reached via the whole path; polynomial = a_{v3}·e01·e12·e23.
        assert_eq!(c.strategy, Strategy::UllmanVanGelder);
        let poly = c.circuit.polynomial();
        assert_eq!(poly.len(), 1);
        assert_eq!(poly.degree(), 4);
        // Tropical check: weight = sum of 4 unit weights.
        assert_eq!(c.circuit.eval(&|_| Tropical::new(1)), Tropical::new(4));
    }

    #[test]
    fn graph_strategies_are_rejected_for_plain_databases() {
        let mut p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        for strat in [Strategy::MagicFiniteRpq, Strategy::ProductSquaring] {
            let err = compile_fact(&p, &db, "T", &["v0", "v2"], strat).unwrap_err();
            assert!(err.contains("compile_graph_fact"), "{err}");
        }
    }

    #[test]
    fn magic_strategy_rejected_for_infinite_language() {
        let p = programs::transitive_closure();
        let g = generators::path(3, "E");
        assert!(compile_graph_fact(&p, &g, 0, 3, Strategy::MagicFiniteRpq).is_err());
    }

    #[test]
    fn unknown_predicates_and_constants_error_cleanly() {
        let mut p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(compile_fact(&p, &db, "Nope", &["v0", "v1"], Strategy::Auto).is_err());
        // Unknown constant: not an error, just the 0 circuit.
        let c = compile_fact(&p, &db, "T", &["v0", "nosuch"], Strategy::GroundedFixpoint)
            .unwrap();
        assert!(c.circuit.polynomial().is_empty());
    }

    #[test]
    fn underivable_facts_compile_to_zero() {
        let p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let c = compile_graph_fact(&p, &g, 2, 0, Strategy::GroundedFixpoint).unwrap();
        assert!(c.circuit.polynomial().is_empty());
        let c2 = compile_graph_fact(&p, &g, 2, 0, Strategy::ProductSquaring).unwrap();
        assert!(c2.circuit.polynomial().is_empty());
    }

    #[test]
    fn bounded_layered_strategy_for_bounded_example() {
        let mut p = programs::bounded_example();
        let g = generators::path(5, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        let a = p.preds.get("A").unwrap();
        let v0 = db.node_const(0).unwrap();
        db.insert(a, vec![v0]);
        let c = compile_fact(&p, &db, "T", &["v0", "v3"], Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::BoundedLayered);
        // Oracle agreement.
        let gp = datalog::ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        let f = gp
            .fact(t, &[v0, db.node_const(3).unwrap()])
            .unwrap();
        let expect = datalog::provenance_polynomial(&gp, f, 100_000).unwrap();
        assert_eq!(c.circuit.polynomial(), expect);
    }
}
