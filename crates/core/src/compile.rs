//! Compilation of Datalog facts into provenance circuits: strategy
//! selection and dispatch over the paper's constructions.
//!
//! The session-level entry point is [`crate::Engine`], which owns and
//! caches the grounding/classification these strategies share. The free
//! functions [`compile_fact`] and [`compile_graph_fact`] remain as thin
//! one-shot shims over a throwaway engine.

use circuit::{Circuit, CircuitStats};
use datalog::{Database, Program};
use grammar::{Cfg, Dfa};
use graphgen::{LabeledDigraph, NodeId};
use provcirc_error::Error;

use crate::boundedness::Verdict;
use crate::classify::Classification;
use crate::engine::Engine;

/// Which construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Pick based on [`crate::classify_program`].
    Auto,
    /// Theorem 3.1: layered circuit over the grounding, run to fixpoint.
    GroundedFixpoint,
    /// Theorem 4.3: layered circuit truncated at the boundedness constant
    /// (determined by a provenance probe when not supplied).
    BoundedLayered,
    /// Theorem 5.8: magic-set rewriting for finite left-linear RPQs
    /// (graph facts only).
    MagicFiniteRpq,
    /// Theorem 5.6 on the Theorem 5.9 product graph (graph facts only).
    ProductBellmanFord,
    /// Theorem 5.7 on the product graph (graph facts only).
    ProductSquaring,
    /// Theorem 6.2: the Ullman–Van Gelder O(log² m)-depth circuit.
    UllmanVanGelder,
}

/// A compiled fact.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The circuit computing the fact's provenance polynomial.
    pub circuit: Circuit,
    /// The strategy actually used (resolved from `Auto`).
    pub strategy: Strategy,
    /// Live-circuit metrics.
    pub stats: CircuitStats,
    /// The classification that drove `Auto` (always populated).
    pub classification: Classification,
}

/// Resolve `Auto` for a database-backed session (no graph strategies).
pub(crate) fn resolve_db_auto(c: &Classification) -> Strategy {
    if matches!(
        c.boundedness.verdict,
        Verdict::Bounded(_) | Verdict::LikelyBounded(_)
    ) || !c.syntax.is_recursive
    {
        Strategy::BoundedLayered
    } else if c.poly_fringe {
        Strategy::UllmanVanGelder
    } else {
        Strategy::GroundedFixpoint
    }
}

/// Resolve `Auto` for a graph-backed session.
pub(crate) fn resolve_graph_auto(c: &Classification) -> Strategy {
    if let Some(g) = &c.grammar {
        if g.regular {
            return if g.language == grammar::LanguageSize::Infinite {
                Strategy::ProductSquaring
            } else {
                Strategy::MagicFiniteRpq
            };
        }
    }
    resolve_db_auto(c)
}

/// Compile the provenance circuit of `pred(tuple…)` against a database.
///
/// One-shot shim over [`Engine`]: sessions with more than one query should
/// build the engine directly to reuse the grounding and classification.
/// Graph-specific strategies (`MagicFiniteRpq`, `Product*`) are rejected
/// here; use [`compile_graph_fact`] for chain programs over labeled graphs.
pub fn compile_fact(
    program: &Program,
    db: &Database,
    pred: &str,
    tuple: &[&str],
    strategy: Strategy,
) -> Result<Compiled, Error> {
    let engine = Engine::builder()
        .program(program.clone())
        .database(db.clone())
        .build()?;
    let compiled = engine.query(pred, tuple)?.circuit(strategy)?;
    drop(engine);
    Ok(std::sync::Arc::try_unwrap(compiled).unwrap_or_else(|rc| (*rc).clone()))
}

/// Compile `target(v_src, v_dst)` for a basic chain program over a labeled
/// graph, enabling the graph-specialized constructions.
///
/// One-shot shim over [`Engine`] (see [`compile_fact`]).
pub fn compile_graph_fact(
    program: &Program,
    graph: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
    strategy: Strategy,
) -> Result<Compiled, Error> {
    let engine = Engine::builder()
        .program(program.clone())
        .graph(graph)
        .build()?;
    let compiled = engine.node_query(src, dst)?.circuit(strategy)?;
    drop(engine);
    Ok(std::sync::Arc::try_unwrap(compiled).unwrap_or_else(|rc| (*rc).clone()))
}

/// The minimal DFA of a left-linear chain program, translated onto the
/// graph's alphabet ids.
pub fn chain_program_dfa(program: &Program, graph: &LabeledDigraph) -> Result<Dfa, Error> {
    let cfg: Cfg = datalog::chain_to_cfg(program)?;
    let dfa = grammar::left_linear_dfa(&cfg)
        .ok_or_else(|| Error::unsupported("program is not left-linear; no RPQ automaton"))?;
    // Translate terminal ids: cfg alphabet → graph alphabet (by name).
    let transitions: Vec<(usize, grammar::Terminal, usize)> = dfa
        .transitions()
        .filter_map(|(q, t, q2)| {
            graph
                .alphabet
                .get(cfg.alphabet.name(t))
                .map(|t2| (q, t2, q2))
        })
        .collect();
    Ok(Dfa::from_parts(
        dfa.num_states,
        dfa.start,
        dfa.accepting.clone(),
        graph.alphabet.len().max(1),
        &transitions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::programs;
    use graphgen::generators;
    use semiring::{Tropical, UnitWeights};

    #[test]
    fn auto_picks_squaring_for_tc() {
        let p = programs::transitive_closure();
        let g = generators::gnm(6, 12, &["E"], 1);
        let c = compile_graph_fact(&p, &g, 0, 4, Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::ProductSquaring);
    }

    #[test]
    fn auto_picks_magic_for_finite_rpq() {
        let p = datalog::parse_program(
            "P3(X,Y) :- P2(X,Z), E(Z,Y).\n\
             P2(X,Y) :- P1(X,Z), E(Z,Y).\n\
             P1(X,Y) :- E(X,Y).\n\
             @target P3",
        )
        .unwrap();
        let g = generators::path(3, "E");
        let c = compile_graph_fact(&p, &g, 0, 3, Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::MagicFiniteRpq);
        assert_eq!(c.circuit.polynomial().len(), 1);
    }

    #[test]
    fn all_graph_strategies_agree_on_tc() {
        let p = programs::transitive_closure();
        for seed in 0..3u64 {
            let g = generators::gnm(6, 13, &["E"], seed);
            let reference = compile_graph_fact(&p, &g, 0, 5, Strategy::GroundedFixpoint)
                .unwrap()
                .circuit
                .polynomial();
            for strat in [
                Strategy::ProductBellmanFord,
                Strategy::ProductSquaring,
                Strategy::UllmanVanGelder,
                Strategy::Auto,
            ] {
                let c = compile_graph_fact(&p, &g, 0, 5, strat).unwrap();
                assert_eq!(c.circuit.polynomial(), reference, "seed {seed} {strat:?}");
            }
        }
    }

    #[test]
    fn compile_fact_on_non_graph_database() {
        // Monadic reachability with a seeded A fact.
        let mut p = programs::monadic_reachability();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        let a = p.preds.get("A").unwrap();
        let v3 = db.node_const(3).unwrap();
        db.insert(a, vec![v3]);
        let c = compile_fact(&p, &db, "U", &["v0"], Strategy::Auto).unwrap();
        // U(v0): reached via the whole path; polynomial = a_{v3}·e01·e12·e23.
        assert_eq!(c.strategy, Strategy::UllmanVanGelder);
        let poly = c.circuit.polynomial();
        assert_eq!(poly.len(), 1);
        assert_eq!(poly.degree(), 4);
        // Tropical check: weight = sum of 4 unit weights.
        assert_eq!(
            c.circuit.eval(&UnitWeights::new(Tropical::new(1))),
            Tropical::new(4)
        );
    }

    #[test]
    fn graph_strategies_are_rejected_for_plain_databases() {
        let mut p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        for strat in [Strategy::MagicFiniteRpq, Strategy::ProductSquaring] {
            let err = compile_fact(&p, &db, "T", &["v0", "v2"], strat).unwrap_err();
            assert!(matches!(err, Error::Unsupported(_)), "{err}");
            assert!(err.to_string().contains("graph"), "{err}");
        }
    }

    #[test]
    fn magic_strategy_rejected_for_infinite_language() {
        let p = programs::transitive_closure();
        let g = generators::path(3, "E");
        assert!(compile_graph_fact(&p, &g, 0, 3, Strategy::MagicFiniteRpq).is_err());
    }

    #[test]
    fn unknown_predicates_and_constants_error_cleanly() {
        let mut p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(matches!(
            compile_fact(&p, &db, "Nope", &["v0", "v1"], Strategy::Auto).unwrap_err(),
            Error::UnknownPredicate(_)
        ));
        // Unknown constant: not an error, just the 0 circuit.
        let c = compile_fact(&p, &db, "T", &["v0", "nosuch"], Strategy::GroundedFixpoint).unwrap();
        assert!(c.circuit.polynomial().is_empty());
    }

    #[test]
    fn underivable_facts_compile_to_zero() {
        let p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let c = compile_graph_fact(&p, &g, 2, 0, Strategy::GroundedFixpoint).unwrap();
        assert!(c.circuit.polynomial().is_empty());
        let c2 = compile_graph_fact(&p, &g, 2, 0, Strategy::ProductSquaring).unwrap();
        assert!(c2.circuit.polynomial().is_empty());
    }

    #[test]
    fn bounded_layered_strategy_for_bounded_example() {
        let mut p = programs::bounded_example();
        let g = generators::path(5, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        let a = p.preds.get("A").unwrap();
        let v0 = db.node_const(0).unwrap();
        db.insert(a, vec![v0]);
        let c = compile_fact(&p, &db, "T", &["v0", "v3"], Strategy::Auto).unwrap();
        assert_eq!(c.strategy, Strategy::BoundedLayered);
        // Oracle agreement.
        let gp = datalog::ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        let f = gp.fact(t, &[v0, db.node_const(3).unwrap()]).unwrap();
        let expect = datalog::provenance_polynomial(&gp, f, 100_000).unwrap();
        assert_eq!(c.circuit.polynomial(), expect);
    }
}
