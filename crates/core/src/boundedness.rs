//! Boundedness of Datalog over semirings (paper §4).
//!
//! Boundedness is undecidable in general (§4, citing Gaifman et al. and
//! Hillebrand et al.), so this module layers three procedures:
//!
//! 1. **Exact** for basic chain programs: bounded ⇔ the CFG language is
//!    finite, over *every* absorptive semiring (Proposition 5.5) — decided
//!    in polynomial time via [`grammar::CfgAnalysis`].
//! 2. **Expansion evidence** (Theorem 4.6, Chom semirings): search for an
//!    `N` such that every expansion up to the horizon is absorbed by an
//!    expansion of depth ≤ `N` via a homomorphism. A hit is strong evidence
//!    of boundedness (and a proof whenever the program is also chain); a
//!    miss at an honest horizon is evidence of unboundedness.
//! 3. **Empirical probe**: iterations-to-fixpoint of naive evaluation on
//!    growing inputs (Definition 4.1 directly), also used to exhibit
//!    Corollary 4.7's cross-semiring agreement.

use datalog::{classify as classify_syntax, Database, Program};
use grammar::{CfgAnalysis, Cnf, LanguageSize};
use provcirc_error::Error;
use semiring::{Bool, Bottleneck, Fuzzy, Semiring};

/// Why we believe a program is (un)bounded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Proven bounded; the payload is the iteration bound when known.
    Bounded(Option<u64>),
    /// Proven unbounded.
    Unbounded(UnboundedReason),
    /// Theorem 4.6 evidence: expansions up to the horizon absorb into
    /// depth ≤ N.
    LikelyBounded(usize),
    /// No absorbing depth found up to the horizon.
    LikelyUnbounded(usize),
    /// Nothing could be established (e.g. expansion explosion).
    Unknown,
}

/// The reason a program is provably unbounded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnboundedReason {
    /// Chain program whose CFG language is infinite (Prop 5.5).
    InfiniteGrammar,
}

/// Options for the decision pipeline.
#[derive(Clone, Debug)]
pub struct BoundednessOptions {
    /// Expansion depth horizon for the Theorem 4.6 evidence.
    pub horizon: usize,
    /// Cap on the number of expansions enumerated.
    pub max_expansions: usize,
}

impl Default for BoundednessOptions {
    fn default() -> Self {
        BoundednessOptions {
            horizon: 5,
            max_expansions: 2_000,
        }
    }
}

/// The report of the decision pipeline.
#[derive(Clone, Debug)]
pub struct BoundednessReport {
    /// The verdict.
    pub verdict: Verdict,
    /// The expansion evidence, when the expansion route was taken.
    pub evidence: Option<datalog::BoundednessEvidence>,
}

/// Decide (or gather evidence about) boundedness.
pub fn decide_boundedness(program: &Program, opts: &BoundednessOptions) -> BoundednessReport {
    let syntax = classify_syntax(program);
    if !syntax.is_recursive {
        // UCQ: trivially bounded (Prop 3.7).
        return BoundednessReport {
            verdict: Verdict::Bounded(Some(1)),
            evidence: None,
        };
    }
    if syntax.is_chain {
        if let Ok(cfg) = datalog::chain_to_cfg(program) {
            let cnf = Cnf::from_cfg(&cfg);
            let analysis = CfgAnalysis::new(&cnf);
            return match analysis.language_size() {
                LanguageSize::Infinite => BoundednessReport {
                    verdict: Verdict::Unbounded(UnboundedReason::InfiniteGrammar),
                    evidence: None,
                },
                LanguageSize::Finite | LanguageSize::Empty => BoundednessReport {
                    verdict: Verdict::Bounded(analysis.longest_word_len(&cnf).map(|l| l + 1)),
                    evidence: None,
                },
            };
        }
    }
    // Theorem 4.6 expansion evidence.
    let evidence = datalog::boundedness_evidence(program, opts.horizon, opts.max_expansions);
    let verdict = if evidence.truncated {
        Verdict::Unknown
    } else {
        match evidence.bound {
            Some(n) => Verdict::LikelyBounded(n),
            None => Verdict::LikelyUnbounded(evidence.horizon),
        }
    };
    BoundednessReport {
        verdict,
        evidence: Some(evidence),
    }
}

/// Empirical boundedness probe (Definition 4.1): iterations-to-fixpoint of
/// naive evaluation over a semiring, for each provided database.
pub fn empirical_iterations<S: Semiring>(
    program: &Program,
    databases: &[Database],
) -> Result<Vec<usize>, Error> {
    let mut out = Vec::with_capacity(databases.len());
    for db in databases {
        let gp = datalog::ground(program, db)?;
        let budget = datalog::default_budget(&gp).max(64);
        let run = datalog::eval_all_ones::<S>(&gp, budget);
        if !run.converged {
            return Err(Error::Diverged { iterations: budget });
        }
        out.push(run.iterations);
    }
    Ok(out)
}

/// Corollary 4.7 in action: iterations-to-fixpoint agree across the Boolean
/// semiring and absorptive ⊗-idempotent semirings on the same inputs.
/// Returns `(bool_iters, fuzzy_iters, bottleneck_iters)` per database.
pub fn cross_semiring_iterations(
    program: &Program,
    databases: &[Database],
) -> Result<Vec<(usize, usize, usize)>, Error> {
    let b = empirical_iterations::<Bool>(program, databases)?;
    let f = empirical_iterations::<Fuzzy>(program, databases)?;
    let k = empirical_iterations::<Bottleneck>(program, databases)?;
    Ok(b.into_iter()
        .zip(f)
        .zip(k)
        .map(|((x, y), z)| (x, y, z))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::programs;
    use graphgen::generators;

    #[test]
    fn chain_boundedness_is_exact() {
        let r = decide_boundedness(&programs::transitive_closure(), &Default::default());
        assert_eq!(
            r.verdict,
            Verdict::Unbounded(UnboundedReason::InfiniteGrammar)
        );
        // Non-recursive: the UCQ fast path.
        let r2 = decide_boundedness(&programs::three_hops(), &Default::default());
        assert_eq!(r2.verdict, Verdict::Bounded(Some(1)));
        // Recursive chain program with a finite language {a b}: bounded with
        // the grammar-derived constant (longest word + 1).
        let p = datalog::parse_program("S(X,Y) :- A(X,Z), B2(Z,Y).\nB2(X,Y) :- B(X,Y).").unwrap();
        let r3 = decide_boundedness(&p, &Default::default());
        assert_eq!(r3.verdict, Verdict::Bounded(Some(3)));
    }

    #[test]
    fn example_4_2_is_likely_bounded_via_expansions() {
        let r = decide_boundedness(&programs::bounded_example(), &Default::default());
        assert_eq!(r.verdict, Verdict::LikelyBounded(2));
    }

    #[test]
    fn monadic_reachability_is_likely_unbounded() {
        let r = decide_boundedness(&programs::monadic_reachability(), &Default::default());
        assert_eq!(r.verdict, Verdict::LikelyUnbounded(5));
    }

    #[test]
    fn empirical_probe_matches_theory() {
        let mut p = programs::transitive_closure();
        let dbs: Vec<Database> = [4usize, 8, 16]
            .iter()
            .map(|&n| {
                let g = generators::path(n, "E");
                Database::from_graph(&mut p, &g).0
            })
            .collect();
        let iters = empirical_iterations::<Bool>(&p, &dbs).unwrap();
        assert!(iters[0] < iters[1] && iters[1] < iters[2], "{iters:?}");
    }

    #[test]
    fn corollary_4_7_iterations_agree_across_chom_semirings() {
        let mut p = programs::transitive_closure();
        let dbs: Vec<Database> = [3usize, 6]
            .iter()
            .map(|&n| {
                let g = generators::gnm(n + 2, 2 * n, &["E"], n as u64);
                Database::from_graph(&mut p, &g).0
            })
            .collect();
        for (b, f, k) in cross_semiring_iterations(&p, &dbs).unwrap() {
            assert_eq!(b, f);
            assert_eq!(b, k);
        }
    }
}
