//! Magic-set rewriting for left-linear chain programs (Theorem 5.8).
//!
//! For an RPQ in left-linear form and a query fact `T(s, t)`, binding the
//! first argument to the constant `s` makes every IDB *unary*: the rewritten
//! program `Π'` has grounding of size only O(m), which is what gives finite
//! RPQs their linear-size, O(log n)-depth circuits. This module implements
//! exactly that specialization (the paper's observation that "after the
//! rewriting `s` will replace the variable in the leftmost position of any
//! IDB").

use provcirc_error::Error;
use semiring::valuation::Valuation;
use semiring::Semiring;
use telemetry::{Counter, Recorder, Stage};

use crate::ast::{Atom, Program, Rule, Term};
use crate::classify::classify;
use crate::database::Database;
use crate::eval::{default_budget, semi_naive_eval_recorded};
use crate::ground::ground;
use crate::symbols::{ConstId, PredId};

/// The result of the rewriting.
#[derive(Clone, Debug)]
pub struct MagicRewrite {
    /// The rewritten monadic program; its target is the seeded target IDB.
    /// It **shares the original program's symbol tables** (extended with
    /// the `_s` predicates and the source constant), so a [`Database`]
    /// built against the original program grounds it directly — EDB
    /// predicate ids line up fact-for-fact.
    pub program: Program,
    /// Name of the source constant used for seeding.
    pub source: String,
}

/// Rewrite a left-linear chain program for the query `target(source, ·)`.
///
/// Every IDB `P(x, y)` becomes `P_s(y)`; the head's first variable is
/// substituted by the constant `source` throughout each rule.
pub fn magic_rewrite(program: &Program, source: &str) -> Result<MagicRewrite, Error> {
    let class = classify(program);
    if !class.is_left_linear_chain {
        return Err(Error::unsupported(
            "magic rewriting requires a left-linear chain program",
        ));
    }
    let idbs = program.idbs();
    let target_name = program.preds.name(program.target).to_owned();
    // Clone the original symbol tables rather than starting fresh: the
    // rewritten program must be groundable against the *same* session
    // database, and grounding resolves EDB facts by `PredId`. A fresh
    // interner would renumber the EDB predicates and silently probe the
    // wrong fact lists (the original IDB ids survive too, now rule-less —
    // harmless, they are simply never referenced).
    let mut out = Program {
        preds: program.preds.clone(),
        vars: program.vars.clone(),
        consts: program.consts.clone(),
        rules: Vec::new(),
        target: program.target,
    };
    out.target = out.preds.intern(&format!("{target_name}_s"));
    let s_const = out.consts.intern(source);

    for rule in &program.rules {
        // Chain head: P(x, y).
        let (hx, hy) = match rule.head.terms[..] {
            [Term::Var(x), Term::Var(y)] => (x, y),
            _ => {
                return Err(Error::unsupported(
                    "chain heads must be binary over variables",
                ))
            }
        };
        let new_head_pred = {
            let name = format!("{}_s", program.preds.name(rule.head.pred));
            out.preds.intern(&name)
        };
        // Shared variable table: ids carry over, only `hx` is substituted.
        let map_var = |v: u32| -> Term {
            if v == hx {
                Term::Const(s_const)
            } else {
                Term::Var(v)
            }
        };
        let new_head = Atom {
            pred: new_head_pred,
            terms: vec![map_var(hy)],
        };
        let mut new_body = Vec::with_capacity(rule.body.len());
        for atom in &rule.body {
            if idbs.contains(&atom.pred) {
                // Left-linear: IDB atom is first, of the form Q(x, z).
                let z = match atom.terms[..] {
                    [Term::Var(x), Term::Var(z)] if x == hx => z,
                    _ => {
                        return Err(Error::unsupported(
                            "left-linear chain rule must start with IDB(head-x, z)",
                        ))
                    }
                };
                let pred = {
                    let name = format!("{}_s", program.preds.name(atom.pred));
                    out.preds.intern(&name)
                };
                new_body.push(Atom {
                    pred,
                    terms: vec![map_var(z)],
                });
            } else {
                // EDB atom: predicate and constant ids are already valid
                // in the shared tables — only variables need mapping.
                let terms = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => map_var(*v),
                        Term::Const(c) => Term::Const(*c),
                    })
                    .collect();
                new_body.push(Atom {
                    pred: atom.pred,
                    terms,
                });
            }
        }
        out.rules.push(Rule {
            head: new_head,
            body: new_body,
        });
    }
    out.validate()?;
    Ok(MagicRewrite {
        program: out,
        source: source.to_owned(),
    })
}

/// Result of a demand-driven (magic-set) point query.
#[derive(Clone, Debug)]
pub struct MagicPointOutcome<S> {
    /// The queried value, `S::zero()` if the goal is not derivable.
    pub value: S,
    /// Grounded rules in the *query cone* — what the magic rewrite
    /// materialized instead of the full grounding.
    pub grounded_rules: usize,
    /// Fixpoint iterations the cone evaluation ran.
    pub iterations: usize,
    /// Whether the cone evaluation converged within its budget.
    pub converged: bool,
    /// Whether the goal itself appears in the cone grounding. Callers
    /// should report divergence only for derivable goals — an absent
    /// goal is simply 0, however the rest of the cone behaved — to stay
    /// error-for-error compatible with the materialized pipeline.
    pub derivable: bool,
}

/// Evaluate the single goal `pred(tuple)` demand-driven: rewrite the
/// program for the goal's bound first argument ([`magic_rewrite`]),
/// ground **only the query cone** against the same database, evaluate
/// it, and read off the goal.
///
/// Returns `Ok(None)` when the goal is not eligible for the rewrite —
/// the program is not a left-linear chain, the predicate is not a binary
/// IDB (EDB and unknown predicates included) — so callers can fall back
/// to the materialized pipeline. `budget` caps cone-evaluation rounds
/// (`None`: the cone's own [`default_budget`], which is typically far
/// smaller than the full grounding's).
///
/// Note the demand-driven path can *converge* where full evaluation
/// diverges (e.g. `Counting` with a cycle outside the query cone): the
/// cone simply never sees the divergent component. Cross-path oracles
/// compare convergence flags only on programs where the cone equals the
/// reachable component.
pub fn magic_point_eval<S, V>(
    program: &Program,
    db: &Database,
    pred: PredId,
    tuple: &[ConstId],
    assign: &V,
    budget: Option<usize>,
    rec: &dyn Recorder,
) -> Result<Option<MagicPointOutcome<S>>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    if !classify(program).is_left_linear_chain
        || !program.idbs().contains(&pred)
        || tuple.len() != 2
    {
        return Ok(None);
    }
    let source = db.consts.name(tuple[0]).to_owned();
    let rw = magic_rewrite(program, &source)?;
    rec.counter(Counter::MagicRewrites, 1);
    let gp = ground(&rw.program, db)?;
    let b = budget.unwrap_or_else(|| default_budget(&gp));
    let out = semi_naive_eval_recorded::<S, _>(&gp, assign, b, rec, Stage::Eval);
    let goal_pred = rw
        .program
        .preds
        .get(&format!("{}_s", program.preds.name(pred)))
        .expect("rewrite interns an _s predicate per IDB");
    let goal = gp.fact(goal_pred, &tuple[1..]);
    let value = match goal {
        Some(i) => out.values[i].clone(),
        None => S::zero(),
    };
    Ok(Some(MagicPointOutcome {
        value,
        grounded_rules: gp.rules.len(),
        iterations: out.iterations,
        converged: out.converged,
        derivable: goal.is_some(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::{default_budget, eval_all_ones};
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;
    use semiring::Bool;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn rewritten_tc_is_monadic_and_equivalent() {
        let p = tc();
        let rewritten = magic_rewrite(&p, "v0").unwrap().program;
        let class = classify(&rewritten);
        assert!(class.is_monadic);
        assert!(class.is_linear);

        // Equivalence on a random graph: T(v0, y) iff T_s(y).
        let g = generators::gnm(8, 18, &["E"], 13);
        let mut p_orig = tc();
        let (db, _) = Database::from_graph(&mut p_orig, &g);
        let gp = ground(&p_orig, &db).unwrap();
        let _ = eval_all_ones::<Bool>(&gp, default_budget(&gp));
        let t = p_orig.preds.get("T").unwrap();

        let mut p_magic = rewritten.clone();
        let (db2, _) = Database::from_graph(&mut p_magic, &g);
        let gp2 = ground(&p_magic, &db2).unwrap();
        let ts = p_magic.preds.get("T_s").unwrap();

        let v0 = db.node_const(0).unwrap();
        for y in 0..g.num_nodes() {
            let orig = gp.fact(t, &[v0, db.node_const(y).unwrap()]).is_some();
            let magic = gp2.fact(ts, &[db2.node_const(y).unwrap()]).is_some();
            assert_eq!(orig, magic, "y = {y}");
        }
    }

    #[test]
    fn rewritten_grounding_is_linear_size() {
        // Grounding of the monadic program is O(m), not O(n·m).
        let p = tc();
        let rewritten = magic_rewrite(&p, "v0").unwrap().program;
        for n in [8usize, 16, 32] {
            let g = generators::path(n, "E");
            let mut pm = rewritten.clone();
            let (db, _) = Database::from_graph(&mut pm, &g);
            let gp = ground(&pm, &db).unwrap();
            // One grounded init rule (edge from v0) + one recursive per
            // reachable edge: ≤ 2m total.
            assert!(gp.rules.len() <= 2 * g.num_edges(), "n = {n}");
        }
    }

    #[test]
    fn rejects_non_left_linear_programs() {
        let right = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- E(X,Z), T(Z,Y).").unwrap();
        assert!(magic_rewrite(&right, "v0").is_err());
        let dyck = parse_program("S(X,Y) :- L(X,Z), R(Z,Y).\nS(X,Y) :- S(X,Z), S(Z,Y).").unwrap();
        assert!(magic_rewrite(&dyck, "v0").is_err());
    }

    #[test]
    fn rewritten_program_grounds_against_the_original_database() {
        // Regression: `magic_rewrite` used to build the rewritten program
        // with *fresh* interners, renumbering the EDB predicates — so
        // grounding it against the session database (the only database
        // there is, in the engine) probed the wrong fact lists and
        // silently derived nothing. The rewrite must share symbol tables.
        let mut p = tc();
        let g = generators::gnm(9, 24, &["E"], 41);
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp_full = ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();

        let rw = magic_rewrite(&p, "v0").unwrap();
        // Ground against the SAME db — no parallel rebuild.
        let gp_magic = ground(&rw.program, &db).unwrap();
        let ts = rw.program.preds.get("T_s").unwrap();
        let v0 = db.node_const(0).unwrap();
        let mut cone_nonempty = false;
        for y in 0..g.num_nodes() {
            let yc = db.node_const(y).unwrap();
            let full = gp_full.fact(t, &[v0, yc]).is_some();
            let magic = gp_magic.fact(ts, &[yc]).is_some();
            assert_eq!(full, magic, "y = {y}");
            cone_nonempty |= magic;
        }
        assert!(cone_nonempty, "degenerate instance: v0 reaches nothing");
    }

    #[test]
    fn point_eval_matches_full_eval_on_shared_db() {
        use semiring::valuation::UnitWeights;
        use semiring::Tropical;
        use telemetry::NOOP;

        let mut p = tc();
        let g = generators::gnm(10, 26, &["E"], 7);
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        let w = UnitWeights::new(Tropical::new(1));
        let full = crate::eval::semi_naive_eval::<Tropical, _>(&gp, &w, default_budget(&gp));
        assert!(full.converged);
        for s in 0..g.num_nodes() {
            for y in 0..g.num_nodes() {
                let tuple = [db.node_const(s).unwrap(), db.node_const(y).unwrap()];
                let out = magic_point_eval::<Tropical, _>(&p, &db, t, &tuple, &w, None, &NOOP)
                    .unwrap()
                    .expect("TC is left-linear chain");
                assert!(out.converged);
                let want = match gp.fact(t, &tuple) {
                    Some(i) => full.values[i],
                    None => Tropical::zero(),
                };
                assert_eq!(out.value, want, "T(v{s}, v{y})");
                assert!(out.grounded_rules <= gp.rules.len());
            }
        }
    }

    #[test]
    fn point_eval_declines_ineligible_goals() {
        use semiring::valuation::AllOnes;
        use semiring::Bool;
        use telemetry::NOOP;

        let mut p = tc();
        let g = generators::path(5, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let v0 = db.node_const(0).unwrap();
        let v1 = db.node_const(1).unwrap();

        // Goal over an EDB-only predicate: not rewritable, caller must
        // fall back (regression: used to be unreachable dead code, and
        // the rewrite would have manufactured an `E_s` with no rules).
        let e = p.preds.get("E").unwrap();
        let r = magic_point_eval::<Bool, _>(&p, &db, e, &[v0, v1], &AllOnes, None, &NOOP).unwrap();
        assert!(r.is_none());

        // Wrong goal arity for the chain rewrite.
        let t = p.preds.get("T").unwrap();
        let r = magic_point_eval::<Bool, _>(&p, &db, t, &[v0], &AllOnes, None, &NOOP).unwrap();
        assert!(r.is_none());

        // Non-left-linear program: decline, do not error.
        let mut right = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- E(X,Z), T(Z,Y).").unwrap();
        let (db_r, _) = Database::from_graph(&mut right, &g);
        let tr = right.preds.get("T").unwrap();
        let w0 = db_r.node_const(0).unwrap();
        let w1 = db_r.node_const(1).unwrap();
        let r = magic_point_eval::<Bool, _>(&right, &db_r, tr, &[w0, w1], &AllOnes, None, &NOOP)
            .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn point_eval_yields_zero_off_the_cone() {
        use semiring::valuation::AllOnes;
        use semiring::Bool;
        use telemetry::NOOP;

        // Path v0 → … → v5: nothing is reachable *from* the sink v5, and
        // v3 does not reach v1. Both goals must come back as ⊕-zero with
        // a tiny (or empty) cone, not as an error.
        let mut p = tc();
        let g = generators::path(5, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let t = p.preds.get("T").unwrap();
        let v = |i: usize| db.node_const(i).unwrap();

        let sink = magic_point_eval::<Bool, _>(&p, &db, t, &[v(5), v(0)], &AllOnes, None, &NOOP)
            .unwrap()
            .unwrap();
        assert_eq!(sink.value, Bool::zero());
        assert_eq!(sink.grounded_rules, 0, "empty cone grounds nothing");

        let back = magic_point_eval::<Bool, _>(&p, &db, t, &[v(3), v(1)], &AllOnes, None, &NOOP)
            .unwrap()
            .unwrap();
        assert_eq!(back.value, Bool::zero());
        assert!(back.converged);
    }

    #[test]
    fn non_recursive_goal_predicate_rewrites() {
        use semiring::valuation::AllOnes;
        use semiring::Bool;
        use telemetry::NOOP;

        // A left-linear chain program whose goal IDB has only an
        // initialization rule (regression: the rewrite must not assume a
        // recursive IDB occurrence exists).
        let mut p = parse_program("T(X,Y) :- E(X,Y).").unwrap();
        let g = generators::path(4, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let t = p.preds.get("T").unwrap();
        let v = |i: usize| db.node_const(i).unwrap();
        let hit = magic_point_eval::<Bool, _>(&p, &db, t, &[v(0), v(1)], &AllOnes, None, &NOOP)
            .unwrap()
            .unwrap();
        assert_eq!(hit.value, Bool::one());
        let miss = magic_point_eval::<Bool, _>(&p, &db, t, &[v(0), v(2)], &AllOnes, None, &NOOP)
            .unwrap()
            .unwrap();
        assert_eq!(miss.value, Bool::zero());
    }

    #[test]
    fn multi_label_rpq_rewrites() {
        // T → T a | T b | a  (language (a|b)* a read left-to-right… shape
        // irrelevant — structural test).
        let p = parse_program(
            "T(X,Y) :- A(X,Y).\nT(X,Y) :- T(X,Z), A(Z,Y).\nT(X,Y) :- T(X,Z), B(Z,Y).",
        )
        .unwrap();
        let r = magic_rewrite(&p, "v0").unwrap().program;
        assert!(classify(&r).is_monadic);
        assert_eq!(r.rules.len(), 3);
    }
}
