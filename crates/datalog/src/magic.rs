//! Magic-set rewriting for left-linear chain programs (Theorem 5.8).
//!
//! For an RPQ in left-linear form and a query fact `T(s, t)`, binding the
//! first argument to the constant `s` makes every IDB *unary*: the rewritten
//! program `Π'` has grounding of size only O(m), which is what gives finite
//! RPQs their linear-size, O(log n)-depth circuits. This module implements
//! exactly that specialization (the paper's observation that "after the
//! rewriting `s` will replace the variable in the leftmost position of any
//! IDB").

use provcirc_error::Error;

use crate::ast::{Atom, Program, Rule, Term};
use crate::classify::classify;

/// The result of the rewriting.
#[derive(Clone, Debug)]
pub struct MagicRewrite {
    /// The rewritten monadic program; its target is the seeded target IDB.
    pub program: Program,
    /// Name of the source constant used for seeding.
    pub source: String,
}

/// Rewrite a left-linear chain program for the query `target(source, ·)`.
///
/// Every IDB `P(x, y)` becomes `P_s(y)`; the head's first variable is
/// substituted by the constant `source` throughout each rule.
pub fn magic_rewrite(program: &Program, source: &str) -> Result<MagicRewrite, Error> {
    let class = classify(program);
    if !class.is_left_linear_chain {
        return Err(Error::unsupported(
            "magic rewriting requires a left-linear chain program",
        ));
    }
    let idbs = program.idbs();
    let target_name = program.preds.name(program.target).to_owned();
    let mut out = Program::new(&format!("{target_name}_s"));
    let s_const = out.consts.intern(source);

    for rule in &program.rules {
        // Chain head: P(x, y).
        let (hx, hy) = match rule.head.terms[..] {
            [Term::Var(x), Term::Var(y)] => (x, y),
            _ => {
                return Err(Error::unsupported(
                    "chain heads must be binary over variables",
                ))
            }
        };
        let new_head_pred = {
            let name = format!("{}_s", program.preds.name(rule.head.pred));
            out.preds.intern(&name)
        };
        let map_var = |v: u32, out: &mut Program| -> Term {
            if v == hx {
                Term::Const(s_const)
            } else {
                Term::Var(out.vars.intern(program.vars.name(v)))
            }
        };
        let new_head = Atom {
            pred: new_head_pred,
            terms: vec![map_var(hy, &mut out)],
        };
        let mut new_body = Vec::with_capacity(rule.body.len());
        for atom in &rule.body {
            if idbs.contains(&atom.pred) {
                // Left-linear: IDB atom is first, of the form Q(x, z).
                let z = match atom.terms[..] {
                    [Term::Var(x), Term::Var(z)] if x == hx => z,
                    _ => {
                        return Err(Error::unsupported(
                            "left-linear chain rule must start with IDB(head-x, z)",
                        ))
                    }
                };
                let pred = {
                    let name = format!("{}_s", program.preds.name(atom.pred));
                    out.preds.intern(&name)
                };
                new_body.push(Atom {
                    pred,
                    terms: vec![map_var(z, &mut out)],
                });
            } else {
                let pred = out.preds.intern(program.preds.name(atom.pred));
                let terms = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => map_var(*v, &mut out),
                        Term::Const(c) => Term::Const(out.consts.intern(program.consts.name(*c))),
                    })
                    .collect();
                new_body.push(Atom { pred, terms });
            }
        }
        out.rules.push(Rule {
            head: new_head,
            body: new_body,
        });
    }
    out.validate()?;
    Ok(MagicRewrite {
        program: out,
        source: source.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::{default_budget, eval_all_ones};
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;
    use semiring::Bool;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn rewritten_tc_is_monadic_and_equivalent() {
        let p = tc();
        let rewritten = magic_rewrite(&p, "v0").unwrap().program;
        let class = classify(&rewritten);
        assert!(class.is_monadic);
        assert!(class.is_linear);

        // Equivalence on a random graph: T(v0, y) iff T_s(y).
        let g = generators::gnm(8, 18, &["E"], 13);
        let mut p_orig = tc();
        let (db, _) = Database::from_graph(&mut p_orig, &g);
        let gp = ground(&p_orig, &db).unwrap();
        let _ = eval_all_ones::<Bool>(&gp, default_budget(&gp));
        let t = p_orig.preds.get("T").unwrap();

        let mut p_magic = rewritten.clone();
        let (db2, _) = Database::from_graph(&mut p_magic, &g);
        let gp2 = ground(&p_magic, &db2).unwrap();
        let ts = p_magic.preds.get("T_s").unwrap();

        let v0 = db.node_const(0).unwrap();
        for y in 0..g.num_nodes() {
            let orig = gp.fact(t, &[v0, db.node_const(y).unwrap()]).is_some();
            let magic = gp2.fact(ts, &[db2.node_const(y).unwrap()]).is_some();
            assert_eq!(orig, magic, "y = {y}");
        }
    }

    #[test]
    fn rewritten_grounding_is_linear_size() {
        // Grounding of the monadic program is O(m), not O(n·m).
        let p = tc();
        let rewritten = magic_rewrite(&p, "v0").unwrap().program;
        for n in [8usize, 16, 32] {
            let g = generators::path(n, "E");
            let mut pm = rewritten.clone();
            let (db, _) = Database::from_graph(&mut pm, &g);
            let gp = ground(&pm, &db).unwrap();
            // One grounded init rule (edge from v0) + one recursive per
            // reachable edge: ≤ 2m total.
            assert!(gp.rules.len() <= 2 * g.num_edges(), "n = {n}");
        }
    }

    #[test]
    fn rejects_non_left_linear_programs() {
        let right = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- E(X,Z), T(Z,Y).").unwrap();
        assert!(magic_rewrite(&right, "v0").is_err());
        let dyck = parse_program("S(X,Y) :- L(X,Z), R(Z,Y).\nS(X,Y) :- S(X,Z), S(Z,Y).").unwrap();
        assert!(magic_rewrite(&dyck, "v0").is_err());
    }

    #[test]
    fn multi_label_rpq_rewrites() {
        // T → T a | T b | a  (language (a|b)* a read left-to-right… shape
        // irrelevant — structural test).
        let p = parse_program(
            "T(X,Y) :- A(X,Y).\nT(X,Y) :- T(X,Z), A(Z,Y).\nT(X,Y) :- T(X,Z), B(Z,Y).",
        )
        .unwrap();
        let r = magic_rewrite(&p, "v0").unwrap().program;
        assert!(classify(&r).is_monadic);
        assert_eq!(r.rules.len(), 3);
    }
}
