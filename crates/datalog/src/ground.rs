//! Grounding: from a program and database to the grounded program
//! (paper §2.1), the shared input of naive evaluation and of every circuit
//! construction (Theorems 3.1, 4.3, 6.2).
//!
//! Grounding proceeds in two phases:
//! 1. a **semi-naive** Boolean fixpoint computes the set of *derivable*
//!    IDB facts: each round only instantiates rule bodies that use at
//!    least one fact from the previous round's *delta frontier*, instead
//!    of re-enumerating every match from scratch;
//! 2. every rule is instantiated in all ways whose body holds in
//!    EDB ∪ derivable-IDB, yielding [`GroundedRule`]s.
//!
//! Both phases join through per-predicate **hash indices**: for every
//! `(predicate, bound argument positions)` pair some rule probes, facts are
//! keyed by their projection onto those positions (the private
//! `JoinIndices`). A body atom whose prefix has already bound `k` of its
//! arguments is matched by one hash lookup over exactly the candidate
//! facts agreeing on those arguments — not by scanning the full relation.
//! Because derivable facts are appended round by round, the delta frontier
//! is a contiguous index range and a binary search restricts any index
//! bucket to it.
//!
//! Phase-1 delta joins are **frontier-driven**: the delta atom iterates
//! the frontier facts of its predicate *outermost* (ascending fact index),
//! with the rest of the body joined per frontier fact through the shared
//! indices. That ordering is what makes the phase shardable: the frontier
//! range splits into contiguous sub-ranges evaluated on scoped threads
//! against the read-only indices, and concatenating shard outputs in
//! frontier order replays the sequential enumeration exactly — `FactId`s
//! (and hence the Theorem 4.3 layering probe) are bit-identical whatever
//! the thread count ([`par_ground_with_limit`]). Phase 2 shards by rule,
//! concatenated in rule order, for the same reason.
//!
//! Note on cross-version stability: hoisting the delta atom changed the
//! *discovery order* of phase 1 relative to earlier releases for rules
//! whose recursive atom is not the first body atom (the derived fact
//! *set*, values, and probes are unchanged — only which `FactId` a fact
//! happens to get). `FactId`s are a per-run artifact, not a stable
//! identifier across versions; within a version they are deterministic
//! and thread-count-independent, which is the invariant everything
//! downstream (circuit sharing, provenance variable numbering, caches)
//! actually relies on.
//!
//! Restricting to derivable facts keeps the grounded program — and hence
//! every circuit built from it — free of dead gates.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use crate::fxhash::FxHashMap;
use std::ops::ControlFlow;

use provcirc_error::Error;
use telemetry::{Counter, Recorder, RoundStats, Stage, NOOP};

use crate::ast::{Atom, Program, Rule, Term};
use crate::database::{Database, FactId};
use crate::symbols::{ConstId, PredId, VarSym};

/// A grounded rule `idb_facts[head] :- idb_facts[i]…, x_{edb}…`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundedRule {
    /// Index of the originating rule in the program.
    pub rule_index: usize,
    /// Head fact (index into [`GroundedProgram::idb_facts`]).
    pub head: usize,
    /// IDB body facts (indices into [`GroundedProgram::idb_facts`]).
    pub body_idb: Vec<usize>,
    /// EDB body facts (provenance variables).
    pub body_edb: Vec<FactId>,
}

/// The grounded program.
#[derive(Clone, Debug, Default)]
pub struct GroundedProgram {
    /// All derivable IDB facts.
    pub idb_facts: Vec<(PredId, Vec<ConstId>)>,
    /// Index from fact to its position in `idb_facts`, grouped by
    /// predicate so a lookup can probe with a borrowed `&[ConstId]`
    /// (`Vec<ConstId>: Borrow<[ConstId]>`) instead of cloning the tuple
    /// into a composite key — [`fact`] sits on the per-grounding hot path
    /// of both grounding phases and the fused worklist.
    ///
    /// [`fact`]: GroundedProgram::fact
    pub fact_index: FxHashMap<PredId, FxHashMap<Vec<ConstId>, usize>>,
    /// All grounded rules.
    pub rules: Vec<GroundedRule>,
    /// For each IDB fact, the grounded rules deriving it.
    pub rules_by_head: Vec<Vec<usize>>,
    /// Derivable facts grouped by predicate, each group in `idb_facts`
    /// order — maintained during grounding so [`facts_of`] is a lookup,
    /// not a scan.
    ///
    /// [`facts_of`]: GroundedProgram::facts_of
    pub facts_by_pred: FxHashMap<PredId, Vec<usize>>,
}

impl GroundedProgram {
    /// Number of derivable IDB facts.
    pub fn num_idb_facts(&self) -> usize {
        self.idb_facts.len()
    }

    /// The index of a derivable IDB fact. Allocation-free: probes the
    /// per-predicate map with the borrowed tuple.
    pub fn fact(&self, pred: PredId, tuple: &[ConstId]) -> Option<usize> {
        self.fact_index.get(&pred)?.get(tuple).copied()
    }

    /// Indices of derivable facts of a predicate, in `idb_facts` order.
    ///
    /// O(1): served from the per-predicate index built during grounding
    /// (it used to be an O(#facts) scan per call, which made the grounding
    /// join quadratic on large instances).
    pub fn facts_of(&self, pred: PredId) -> &[usize] {
        self.facts_by_pred.get(&pred).map_or(&[][..], Vec::as_slice)
    }

    /// Total size of the grounded program (the `M` of Theorem 4.3's size
    /// analysis): grounded rules plus their body atoms.
    pub fn size(&self) -> usize {
        self.rules.len()
            + self
                .rules
                .iter()
                .map(|r| r.body_idb.len() + r.body_edb.len())
                .sum::<usize>()
    }

    /// Append a derivable fact, keeping `fact_index` and `facts_by_pred`
    /// coherent. Returns `Some(i)` for a new fact, `None` for a duplicate.
    pub(crate) fn push_fact(&mut self, pred: PredId, tuple: Vec<ConstId>) -> Option<usize> {
        let by_pred = self.fact_index.entry(pred).or_default();
        if by_pred.contains_key(&tuple) {
            return None;
        }
        let i = self.idb_facts.len();
        by_pred.insert(tuple.clone(), i);
        self.facts_by_pred.entry(pred).or_default().push(i);
        self.idb_facts.push((pred, tuple));
        Some(i)
    }
}

/// A match target during joins: either an IDB fact index or an EDB fact id.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BodyMatch {
    /// Index into [`GroundedProgram::idb_facts`].
    Idb(usize),
    /// EDB fact id (a provenance variable).
    Edb(FactId),
}

/// Statically computed join plan of one rule, for the fixed left-to-right
/// body order: which argument positions of each body atom are already
/// bound (constants, or variables bound by an earlier atom) when the
/// matcher reaches it — the probe key of the hash index at that position.
struct RulePlan {
    /// Per body position: the pre-bound argument positions, ascending.
    bound: Vec<Vec<usize>>,
    /// Per body position: slot of the shared index in [`JoinIndices`].
    slot: Vec<usize>,
    /// Body positions holding IDB atoms (delta-constraint candidates).
    idb_positions: Vec<usize>,
    /// A constant in the rule names nothing in the active domain: the rule
    /// can never fire over this database and is skipped wholesale.
    dead: bool,
}

fn plan_rule(
    rule: &Rule,
    idbs: &HashSet<PredId>,
    const_map: &[Option<ConstId>],
    slots: &mut SlotInterner,
) -> RulePlan {
    let mut dead = rule
        .head
        .terms
        .iter()
        .any(|t| matches!(t, Term::Const(c) if const_map[*c as usize].is_none()));
    let mut bound_vars: HashSet<VarSym> = HashSet::new();
    let mut bound = Vec::with_capacity(rule.body.len());
    let mut slot = Vec::with_capacity(rule.body.len());
    let mut idb_positions = Vec::new();
    for (pos, atom) in rule.body.iter().enumerate() {
        let mut pre_bound = Vec::new();
        for (p, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if const_map[*c as usize].is_none() {
                        dead = true;
                    }
                    pre_bound.push(p);
                }
                Term::Var(v) => {
                    if bound_vars.contains(v) {
                        pre_bound.push(p);
                    }
                }
            }
        }
        for term in &atom.terms {
            if let Term::Var(v) = term {
                bound_vars.insert(*v);
            }
        }
        let is_idb = idbs.contains(&atom.pred);
        if is_idb {
            idb_positions.push(pos);
        }
        slot.push(slots.intern(atom.pred, &pre_bound, is_idb));
        bound.push(pre_bound);
    }
    RulePlan {
        bound,
        slot,
        idb_positions,
        dead,
    }
}

/// Join plan of one rule with its IDB atom at body position `dpos` pinned
/// to the delta frontier and **hoisted to the outermost loop**: the
/// frontier facts of that predicate are iterated directly (ascending fact
/// index), and the remaining atoms are joined per frontier fact, in their
/// original body order, with bound-position sets recomputed for the new
/// variable-binding order.
struct DeltaPlan {
    /// Body position of the delta atom.
    dpos: usize,
    /// Remaining body positions, original order, `dpos` excluded.
    rest: Vec<usize>,
    /// Per rest-atom: pre-bound argument positions under the hoisted order.
    bound: Vec<Vec<usize>>,
    /// Per rest-atom: slot of the shared index in [`JoinIndices`].
    slot: Vec<usize>,
}

fn plan_delta(
    rule: &Rule,
    dpos: usize,
    idbs: &HashSet<PredId>,
    slots: &mut SlotInterner,
) -> DeltaPlan {
    let mut bound_vars: HashSet<VarSym> = HashSet::new();
    for term in &rule.body[dpos].terms {
        if let Term::Var(v) = term {
            bound_vars.insert(*v);
        }
    }
    let mut rest = Vec::with_capacity(rule.body.len() - 1);
    let mut bound = Vec::with_capacity(rule.body.len() - 1);
    let mut slot = Vec::with_capacity(rule.body.len() - 1);
    for (pos, atom) in rule.body.iter().enumerate() {
        if pos == dpos {
            continue;
        }
        let mut pre_bound = Vec::new();
        for (p, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(_) => pre_bound.push(p),
                Term::Var(v) => {
                    if bound_vars.contains(v) {
                        pre_bound.push(p);
                    }
                }
            }
        }
        for term in &atom.terms {
            if let Term::Var(v) = term {
                bound_vars.insert(*v);
            }
        }
        slot.push(slots.intern(atom.pred, &pre_bound, idbs.contains(&atom.pred)));
        bound.push(pre_bound);
        rest.push(pos);
    }
    DeltaPlan {
        dpos,
        rest,
        bound,
        slot,
    }
}

/// Interner mapping `(predicate, bound positions)` to an index slot shared
/// across all rules probing the same relation the same way.
#[derive(Default)]
struct SlotInterner {
    by_key: HashMap<(PredId, Vec<usize>), usize>,
    /// Per slot: predicate, bound positions, and whether it indexes IDB.
    specs: Vec<(PredId, Vec<usize>, bool)>,
}

impl SlotInterner {
    fn intern(&mut self, pred: PredId, positions: &[usize], is_idb: bool) -> usize {
        *self
            .by_key
            .entry((pred, positions.to_vec()))
            .or_insert_with(|| {
                self.specs.push((pred, positions.to_vec(), is_idb));
                self.specs.len() - 1
            })
    }
}

/// The hash join indices of one grounding run: one index per interned
/// `(predicate, bound positions)` slot. EDB slots are filled once from the
/// database; IDB slots grow after every semi-naive round.
struct JoinIndices {
    /// Per slot: projection key → matching facts (IDB fact indices or EDB
    /// fact ids, ascending — insertion order).
    maps: Vec<FxHashMap<Vec<ConstId>, Vec<usize>>>,
    /// Per slot: the projected positions (copied out of the interner).
    positions: Vec<Vec<usize>>,
    /// IDB slot numbers grouped by predicate, so extending with a new fact
    /// touches only its own predicate's slots.
    idb_slots_by_pred: FxHashMap<PredId, Vec<usize>>,
    /// Number of `idb_facts` already folded into the IDB slots.
    idb_upto: usize,
}

impl JoinIndices {
    fn build(slots: &SlotInterner, db: &Database) -> Self {
        let mut maps = Vec::with_capacity(slots.specs.len());
        let mut positions = Vec::with_capacity(slots.specs.len());
        let mut idb_slots_by_pred: FxHashMap<PredId, Vec<usize>> = FxHashMap::default();
        for (slot, (pred, pos, idb)) in slots.specs.iter().enumerate() {
            let mut map: FxHashMap<Vec<ConstId>, Vec<usize>> = FxHashMap::default();
            if *idb {
                idb_slots_by_pred.entry(*pred).or_default().push(slot);
            } else {
                for &fid in db.facts_of(*pred) {
                    let tuple = db.fact(fid).1;
                    if pos.iter().all(|&p| p < tuple.len()) {
                        let key: Vec<ConstId> = pos.iter().map(|&p| tuple[p]).collect();
                        map.entry(key).or_default().push(fid as usize);
                    }
                }
            }
            maps.push(map);
            positions.push(pos.clone());
        }
        JoinIndices {
            maps,
            positions,
            idb_slots_by_pred,
            idb_upto: 0,
        }
    }

    /// Fold the facts appended since the last call into the IDB slots of
    /// their predicate.
    fn extend_idb(&mut self, gp: &GroundedProgram) {
        for i in self.idb_upto..gp.idb_facts.len() {
            let (pred, tuple) = &gp.idb_facts[i];
            let Some(slots) = self.idb_slots_by_pred.get(pred) else {
                continue;
            };
            for &slot in slots {
                if self.positions[slot].iter().all(|&p| p < tuple.len()) {
                    let key: Vec<ConstId> =
                        self.positions[slot].iter().map(|&p| tuple[p]).collect();
                    self.maps[slot].entry(key).or_default().push(i);
                }
            }
        }
        self.idb_upto = gp.idb_facts.len();
    }
}

/// Ground `program` against `db`. Fails if the grounding would exceed
/// `max_rules` grounded rules (pass `usize::MAX` for no limit).
pub fn ground_with_limit(
    program: &Program,
    db: &Database,
    max_rules: usize,
) -> Result<GroundedProgram, Error> {
    par_ground_with_limit(program, db, max_rules, 1)
}

/// [`ground_with_limit`] with the join work sharded across `threads`
/// scoped threads.
///
/// Phase-1 delta joins split each round's frontier fact range into
/// contiguous steal-granularity chunks probed concurrently against the
/// (read-only, shared) per-predicate hash indices; phase 2 shards each
/// rule's join by its outer-loop candidate range, so even a single giant
/// rule parallelizes. Uneven tasks are load-balanced by work stealing
/// (`crate::par`), which only changes which worker executes a task, never
/// the task order. Both phases concatenate task outputs in
/// frontier/rule-major order, so the resulting [`GroundedProgram`] — fact
/// order, `FactId`s, grounded-rule order — is **bit-identical** to the
/// sequential run whatever the thread count. `threads <= 1` spawns
/// nothing and is the exact sequential code path.
pub fn par_ground_with_limit(
    program: &Program,
    db: &Database,
    max_rules: usize,
    threads: usize,
) -> Result<GroundedProgram, Error> {
    par_ground_with_limit_recorded(program, db, max_rules, threads, &NOOP)
}

/// [`par_ground_with_limit`] reporting into a telemetry [`Recorder`]:
/// phase spans ([`Stage::GroundPhase1`] / [`Stage::GroundPhase2`]), one
/// [`RoundStats`] per semi-naive round (frontier size, facts discovered,
/// index probes, next-frontier worklist), the [`Counter::IndexProbes`] /
/// [`Counter::FactsDiscovered`] / [`Counter::GroundMergeNanos`] totals,
/// and — at `threads > 1` — per-worker shard stats. With a disabled
/// recorder (the default [`NOOP`]) no clock is read and no probe is
/// counted: the join loops pay one predictable never-taken branch and the
/// result is bit-identical either way.
pub fn par_ground_with_limit_recorded(
    program: &Program,
    db: &Database,
    max_rules: usize,
    threads: usize,
    rec: &dyn Recorder,
) -> Result<GroundedProgram, Error> {
    let enabled = rec.enabled();
    program.validate()?;
    let idbs = program.idbs();

    // Resolve program constants into the database's domain; a rule whose
    // constant is outside the active domain can never fire.
    let const_map: Vec<Option<ConstId>> = (0..program.consts.len() as u32)
        .map(|c| db.consts.get(program.consts.name(c)))
        .collect();

    let mut slots = SlotInterner::default();
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .map(|r| plan_rule(r, &idbs, &const_map, &mut slots))
        .collect();
    // One delta plan per (live rule, IDB body position): the semi-naive
    // re-fire obligations of phase 1, planned with the delta atom hoisted.
    let delta_plans: Vec<Vec<DeltaPlan>> = program
        .rules
        .iter()
        .enumerate()
        .map(|(ri, rule)| {
            if plans[ri].dead {
                return Vec::new();
            }
            plans[ri]
                .idb_positions
                .iter()
                .map(|&dpos| plan_delta(rule, dpos, &idbs, &mut slots))
                .collect()
        })
        .collect();
    let mut indices = JoinIndices::build(&slots, db);

    // Phase 1: derivable IDB facts (semi-naive Boolean fixpoint). Round 0
    // fires every rule against the empty IDB relation (only all-EDB bodies
    // can match); round r > 0 re-fires a rule once per IDB body position,
    // constrained to take a fact from round r-1's delta frontier there.
    // Work items run on up to `threads` threads; outputs are concatenated
    // in item order, which equals the sequential enumeration order.
    let mut gp = GroundedProgram::default();
    let mut delta_start = 0usize;
    let mut first_round = true;
    let mut round = 0u64;
    let phase1_start = enabled.then(std::time::Instant::now);
    loop {
        let matcher_for = |ri: usize| Matcher {
            db,
            gp: &gp,
            const_map: &const_map,
            rule: &program.rules[ri],
            plan: &plans[ri],
            idbs: &idbs,
            indices: &indices,
            count_probes: enabled,
            probes: Cell::new(0),
        };
        // Per work item: the facts it found plus its index-probe count.
        type Found = (Vec<(PredId, Vec<ConstId>)>, u64);
        let produced = |o: &Found| o.0.len() as u64;
        let frontier = if first_round {
            0
        } else {
            gp.idb_facts.len() - delta_start
        };
        let outs: Vec<Found> = if first_round {
            // Round 0: one work item per rule, full (delta-free) join.
            crate::par::run_indexed_recorded(
                program.rules.len(),
                threads,
                rec,
                Stage::GroundPhase1,
                produced,
                |ri| {
                    let mut found: Vec<(PredId, Vec<ConstId>)> = Vec::new();
                    let mut probes = 0;
                    if !plans[ri].dead {
                        let head_atom = &program.rules[ri].head;
                        let m = matcher_for(ri);
                        m.enumerate(&mut |bindings, _| {
                            let head = instantiate(head_atom, bindings, &const_map)
                                .expect("head vars bound by safety; dead rules skipped");
                            if gp.fact(head_atom.pred, &head).is_none() {
                                found.push((head_atom.pred, head));
                            }
                            ControlFlow::Continue(())
                        });
                        probes = m.probes.get();
                    }
                    (found, probes)
                },
            )
        } else {
            // Round r > 0: one work item per (rule, delta position,
            // frontier sub-range), in that lexicographic order. Ranges
            // are steal-granularity chunks (more chunks than workers), so
            // a skewed frontier no longer serializes the round.
            let ranges = crate::par::chunk_bounds(frontier, threads);
            let mut tasks: Vec<(usize, usize, usize, usize)> = Vec::new();
            for (ri, dps) in delta_plans.iter().enumerate() {
                for di in 0..dps.len() {
                    for &(lo, hi) in &ranges {
                        tasks.push((ri, di, delta_start + lo, delta_start + hi));
                    }
                }
            }
            crate::par::run_indexed_recorded(
                tasks.len(),
                threads,
                rec,
                Stage::GroundPhase1,
                produced,
                |t| {
                    let (ri, di, lo, hi) = tasks[t];
                    let mut found: Vec<(PredId, Vec<ConstId>)> = Vec::new();
                    let head_atom = &program.rules[ri].head;
                    let m = matcher_for(ri);
                    m.enumerate_delta(
                        &delta_plans[ri][di],
                        delta_start,
                        lo,
                        hi,
                        &mut |bindings, _| {
                            let head = instantiate(head_atom, bindings, &const_map)
                                .expect("head vars bound by safety; dead rules skipped");
                            if gp.fact(head_atom.pred, &head).is_none() {
                                found.push((head_atom.pred, head));
                            }
                            ControlFlow::Continue(())
                        },
                    );
                    (found, m.probes.get())
                },
            )
        };
        let round_probes: u64 = outs.iter().map(|(_, p)| *p).sum();
        let new_facts = outs.into_iter().flat_map(|(f, _)| f);
        delta_start = gp.idb_facts.len();
        let merge_start = enabled.then(std::time::Instant::now);
        let mut changed = false;
        for (pred, tuple) in new_facts {
            changed |= gp.push_fact(pred, tuple).is_some();
        }
        if changed {
            indices.extend_idb(&gp);
        }
        if let Some(t) = merge_start {
            rec.counter(Counter::GroundMergeNanos, t.elapsed().as_nanos() as u64);
        }
        if enabled {
            let delta = (gp.idb_facts.len() - delta_start) as u64;
            rec.counter(Counter::IndexProbes, round_probes);
            rec.counter(Counter::FactsDiscovered, delta);
            rec.round(
                Stage::GroundPhase1,
                RoundStats {
                    round,
                    frontier: frontier as u64,
                    delta,
                    probes: round_probes,
                    firings: 0,
                    worklist: delta,
                },
            );
        }
        round += 1;
        if !changed {
            break;
        }
        first_round = false;
    }
    if let Some(t) = phase1_start {
        rec.stage_nanos(Stage::GroundPhase1, t.elapsed().as_nanos() as u64);
    }

    // Phase 2: enumerate all groundings against the completed fact set,
    // through the same indices (no delta constraint). At `threads <= 1`
    // one work item per rule runs the exact sequential enumeration; with
    // more threads each live rule's join is split by its *outer-loop
    // candidate range* into steal-granularity sub-ranges, so one giant
    // rule no longer serializes the phase. Task order is rule-major with
    // ranges ascending, so concatenating the outputs reproduces the
    // sequential grounded-rule order either way. A shared counter of
    // emitted rules short-circuits *all* tasks as soon as the cap is hit,
    // so a tight `max_rules` still cuts the enumeration off early instead
    // of paying for (and buffering) the full join before erroring.
    let emitted = std::sync::atomic::AtomicUsize::new(0);
    let limited = max_rules != usize::MAX;
    let phase2_start = enabled.then(std::time::Instant::now);
    type RuleOut = (Vec<GroundedRule>, bool, u64);
    let run_rule = |rule_index: usize, range: Option<(usize, usize)>| -> RuleOut {
        let plan = &plans[rule_index];
        if plan.dead {
            return (Vec::new(), false, 0);
        }
        if limited && emitted.load(std::sync::atomic::Ordering::Relaxed) > max_rules {
            // Another task already blew the cap; skip this one.
            return (Vec::new(), true, 0);
        }
        let rule = &program.rules[rule_index];
        let mut out: Vec<GroundedRule> = Vec::new();
        let mut overflow = false;
        let mut ground_rule = |bindings: &Bindings, matches: &[BodyMatch]| {
            if limited && emitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= max_rules {
                // Abort this task's whole join: the cap is blown
                // globally, so further enumeration is pure waste.
                overflow = true;
                return ControlFlow::Break(());
            }
            let head_tuple = instantiate(&rule.head, bindings, &const_map)
                .expect("head vars bound by safety; dead rules skipped");
            let head = gp
                .fact(rule.head.pred, &head_tuple)
                .expect("head derivable at fixpoint");
            let mut body_idb = Vec::new();
            let mut body_edb = Vec::new();
            for m in matches {
                match *m {
                    BodyMatch::Idb(i) => body_idb.push(i),
                    BodyMatch::Edb(f) => body_edb.push(f),
                }
            }
            out.push(GroundedRule {
                rule_index,
                head,
                body_idb,
                body_edb,
            });
            ControlFlow::Continue(())
        };
        let m = Matcher {
            db,
            gp: &gp,
            const_map: &const_map,
            rule,
            plan,
            idbs: &idbs,
            indices: &indices,
            count_probes: enabled,
            probes: Cell::new(0),
        };
        match range {
            None => m.enumerate(&mut ground_rule),
            Some((lo, hi)) => m.enumerate_outer_range(lo, hi, &mut ground_rule),
        }
        (out, overflow, m.probes.get())
    };
    let produced_rules = |o: &RuleOut| o.0.len() as u64;
    let per_task: Vec<RuleOut> = if threads <= 1 {
        crate::par::run_indexed_recorded(
            program.rules.len(),
            threads,
            rec,
            Stage::GroundPhase2,
            produced_rules,
            |ri| run_rule(ri, None),
        )
    } else {
        // Size each live rule's outer loop up front (the first atom's
        // probe key uses constants only, so no enumeration is needed) and
        // split it into steal-granularity chunks.
        let mut sizing_probes = 0u64;
        let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
        for (rule_index, plan) in plans.iter().enumerate() {
            if plan.dead {
                continue;
            }
            let m = Matcher {
                db,
                gp: &gp,
                const_map: &const_map,
                rule: &program.rules[rule_index],
                plan,
                idbs: &idbs,
                indices: &indices,
                count_probes: enabled,
                probes: Cell::new(0),
            };
            let outer = m.outer_len();
            sizing_probes += m.probes.get();
            for (lo, hi) in crate::par::chunk_bounds(outer, threads) {
                tasks.push((rule_index, lo, hi));
            }
        }
        if enabled {
            rec.counter(Counter::IndexProbes, sizing_probes);
        }
        crate::par::run_indexed_recorded(
            tasks.len(),
            threads,
            rec,
            Stage::GroundPhase2,
            produced_rules,
            |t| {
                let (ri, lo, hi) = tasks[t];
                run_rule(ri, Some((lo, hi)))
            },
        )
    };
    if enabled {
        rec.counter(
            Counter::IndexProbes,
            per_task.iter().map(|(_, _, p)| *p).sum(),
        );
    }
    let mut rules: Vec<GroundedRule> = Vec::new();
    for (mut out, overflow, _) in per_task {
        if overflow || rules.len().saturating_add(out.len()) > max_rules {
            return Err(Error::GroundingLimit { max_rules });
        }
        rules.append(&mut out);
    }

    gp.rules_by_head = vec![Vec::new(); gp.idb_facts.len()];
    for (i, r) in rules.iter().enumerate() {
        gp.rules_by_head[r.head].push(i);
    }
    gp.rules = rules;
    if let Some(t) = phase2_start {
        rec.stage_nanos(Stage::GroundPhase2, t.elapsed().as_nanos() as u64);
    }
    Ok(gp)
}

/// Ground without a rule limit.
pub fn ground(program: &Program, db: &Database) -> Result<GroundedProgram, Error> {
    ground_with_limit(program, db, usize::MAX)
}

/// Ground without a rule limit, sharded across `threads` scoped threads
/// (see [`par_ground_with_limit`] for the determinism guarantee).
pub fn par_ground(
    program: &Program,
    db: &Database,
    threads: usize,
) -> Result<GroundedProgram, Error> {
    par_ground_with_limit(program, db, usize::MAX, threads)
}

/// Old/new boundary of one incremental delta pass: EDB fact ids
/// `>= edb_start` and IDB fact indices `>= idb_start` are "new".
struct PinBounds {
    edb_start: usize,
    idb_start: usize,
}

/// Extend a grounded program **in place** with the consequences of newly
/// inserted EDB facts (ids `>= edb_delta_start`) — the incremental
/// alternative to re-grounding from scratch.
///
/// `gp` must be the grounding of `program` against `db` *minus* the new
/// facts (tombstoned retractions are fine: they no longer join).
/// `old_domain` is the size of `db.consts` before the inserts; constants
/// interned at or after it are "fresh", which is how rules that were dead
/// under the old domain (a constant naming nothing) are detected and
/// revived with a full enumeration.
///
/// The pass mirrors the two grounding phases:
/// 1. **Delta discovery** — each rule is re-fired with one EDB body
///    position pinned to the new facts (earlier positions old-only, so
///    nothing is enumerated twice; see `Matcher::enumerate_pinned`),
///    seeding a semi-naive frontier fixpoint over the newly derivable IDB
///    facts, which are *appended* to `gp.idb_facts` — existing fact
///    indices never move.
/// 2. **Delta rule enumeration** — every grounding whose body uses at
///    least one new fact (inserted EDB or newly derived IDB) is
///    enumerated exactly once, at its first new body position, and
///    appended to `gp.rules`. Revived rules are enumerated in full (they
///    had zero groundings before).
///
/// The union of old and appended rules is exactly the full re-grounding
/// of the current database *plus* any rules whose body references a
/// fact left underivable by earlier retractions — those bodies evaluate
/// to `0`, so they are ⊕-neutral in every fixpoint (the "zombie"
/// invariant of [`retract_facts_from_grounding`]).
///
/// Runs sequentially (deltas are small by design; the full-ground path
/// stays the parallel one) and reports one [`Stage::DeltaGround`] span
/// plus [`Counter::FactsDiscovered`] / [`Counter::IndexProbes`] into
/// `rec`. Fails with [`Error::GroundingLimit`] when the extended program
/// would exceed `max_rules`; `gp` is left partially extended and must be
/// discarded by the caller (the `Engine` falls back to lazy
/// re-grounding).
pub fn extend_grounding(
    program: &Program,
    db: &Database,
    gp: &mut GroundedProgram,
    edb_delta_start: FactId,
    old_domain: usize,
    max_rules: usize,
    rec: &dyn Recorder,
) -> Result<(), Error> {
    let enabled = rec.enabled();
    let span_start = enabled.then(std::time::Instant::now);
    program.validate()?;
    let idbs = program.idbs();
    let const_map: Vec<Option<ConstId>> = (0..program.consts.len() as u32)
        .map(|c| db.consts.get(program.consts.name(c)))
        .collect();
    let mut slots = SlotInterner::default();
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .map(|r| plan_rule(r, &idbs, &const_map, &mut slots))
        .collect();
    let delta_plans: Vec<Vec<DeltaPlan>> = program
        .rules
        .iter()
        .enumerate()
        .map(|(ri, rule)| {
            if plans[ri].dead {
                return Vec::new();
            }
            plans[ri]
                .idb_positions
                .iter()
                .map(|&dpos| plan_delta(rule, dpos, &idbs, &mut slots))
                .collect()
        })
        .collect();
    let mut indices = JoinIndices::build(&slots, db);
    indices.extend_idb(gp);

    // A rule is *revived* when it is live now but referenced a constant
    // absent from the pre-delta domain: it had zero groundings before, so
    // every grounding is new and it gets a full (delta-free) enumeration.
    let revived: Vec<bool> = program
        .rules
        .iter()
        .enumerate()
        .map(|(ri, rule)| {
            !plans[ri].dead
                && std::iter::once(&rule.head)
                    .chain(rule.body.iter())
                    .flat_map(|a| a.terms.iter())
                    .any(|t| {
                        matches!(t, Term::Const(c)
                            if matches!(const_map[*c as usize], Some(id) if (id as usize) >= old_domain))
                    })
        })
        .collect();

    let idb_delta_start = gp.idb_facts.len();
    let edb_start = edb_delta_start as usize;
    let bounds = PinBounds {
        edb_start,
        idb_start: idb_delta_start,
    };

    // Phase 1 (delta discovery): seed with the new EDB facts, then run
    // the usual semi-naive frontier rounds over the newly derived facts.
    let mut probes = 0u64;
    let mut found: Vec<(PredId, Vec<ConstId>)> = Vec::new();
    {
        let gpr: &GroundedProgram = gp;
        for (ri, rule) in program.rules.iter().enumerate() {
            if plans[ri].dead {
                continue;
            }
            let m = Matcher {
                db,
                gp: gpr,
                const_map: &const_map,
                rule,
                plan: &plans[ri],
                idbs: &idbs,
                indices: &indices,
                count_probes: enabled,
                probes: Cell::new(0),
            };
            let mut on = |bindings: &Bindings, _: &[BodyMatch]| {
                let head = instantiate(&rule.head, bindings, &const_map)
                    .expect("head vars bound by safety; dead rules skipped");
                if gpr.fact(rule.head.pred, &head).is_none() {
                    found.push((rule.head.pred, head));
                }
                ControlFlow::Continue(())
            };
            if revived[ri] {
                m.enumerate(&mut on);
            } else {
                for (pos, atom) in rule.body.iter().enumerate() {
                    if idbs.contains(&atom.pred) {
                        continue;
                    }
                    let has_new = db
                        .facts_of(atom.pred)
                        .last()
                        .is_some_and(|&f| (f as usize) >= edb_start);
                    if has_new {
                        m.enumerate_pinned(pos, &bounds, &mut on);
                    }
                }
            }
            probes += m.probes.get();
        }
    }
    let mut changed = false;
    for (pred, tuple) in found.drain(..) {
        changed |= gp.push_fact(pred, tuple).is_some();
    }
    if changed {
        indices.extend_idb(gp);
    }
    let mut delta_start = idb_delta_start;
    while changed {
        let hi = gp.idb_facts.len();
        {
            let gpr: &GroundedProgram = gp;
            for (ri, dps) in delta_plans.iter().enumerate() {
                for dp in dps {
                    let rule = &program.rules[ri];
                    let m = Matcher {
                        db,
                        gp: gpr,
                        const_map: &const_map,
                        rule,
                        plan: &plans[ri],
                        idbs: &idbs,
                        indices: &indices,
                        count_probes: enabled,
                        probes: Cell::new(0),
                    };
                    m.enumerate_delta(dp, delta_start, delta_start, hi, &mut |bindings, _| {
                        let head = instantiate(&rule.head, bindings, &const_map)
                            .expect("head vars bound by safety; dead rules skipped");
                        if gpr.fact(rule.head.pred, &head).is_none() {
                            found.push((rule.head.pred, head));
                        }
                        ControlFlow::Continue(())
                    });
                    probes += m.probes.get();
                }
            }
        }
        delta_start = hi;
        changed = false;
        for (pred, tuple) in found.drain(..) {
            changed |= gp.push_fact(pred, tuple).is_some();
        }
        if changed {
            indices.extend_idb(gp);
        }
    }

    // Phase 2 (delta rule enumeration): every grounding with ≥ 1 new
    // body fact, exactly once, appended in (rule, pinned position) order.
    let base_rules = gp.rules.len();
    let mut new_rules: Vec<GroundedRule> = Vec::new();
    let mut overflow = false;
    {
        let gpr: &GroundedProgram = gp;
        for (ri, rule) in program.rules.iter().enumerate() {
            if plans[ri].dead {
                continue;
            }
            let m = Matcher {
                db,
                gp: gpr,
                const_map: &const_map,
                rule,
                plan: &plans[ri],
                idbs: &idbs,
                indices: &indices,
                count_probes: enabled,
                probes: Cell::new(0),
            };
            let new_rules = &mut new_rules;
            let overflow = &mut overflow;
            let mut emit = |bindings: &Bindings, matches: &[BodyMatch]| {
                if base_rules + new_rules.len() >= max_rules {
                    *overflow = true;
                    return ControlFlow::Break(());
                }
                let head_tuple = instantiate(&rule.head, bindings, &const_map)
                    .expect("head vars bound by safety; dead rules skipped");
                let head = gpr
                    .fact(rule.head.pred, &head_tuple)
                    .expect("head derivable at delta fixpoint");
                let mut body_idb = Vec::new();
                let mut body_edb = Vec::new();
                for bm in matches {
                    match *bm {
                        BodyMatch::Idb(i) => body_idb.push(i),
                        BodyMatch::Edb(f) => body_edb.push(f),
                    }
                }
                new_rules.push(GroundedRule {
                    rule_index: ri,
                    head,
                    body_idb,
                    body_edb,
                });
                ControlFlow::Continue(())
            };
            if revived[ri] {
                m.enumerate(&mut emit);
            } else {
                for (pos, atom) in rule.body.iter().enumerate() {
                    let has_new = if idbs.contains(&atom.pred) {
                        gpr.facts_of(atom.pred)
                            .last()
                            .is_some_and(|&i| i >= idb_delta_start)
                    } else {
                        db.facts_of(atom.pred)
                            .last()
                            .is_some_and(|&f| (f as usize) >= edb_start)
                    };
                    if has_new {
                        m.enumerate_pinned(pos, &bounds, &mut emit);
                    }
                }
            }
            probes += m.probes.get();
            if *overflow {
                return Err(Error::GroundingLimit { max_rules });
            }
        }
    }
    gp.rules_by_head.resize(gp.idb_facts.len(), Vec::new());
    for (i, r) in new_rules.iter().enumerate() {
        gp.rules_by_head[r.head].push(base_rules + i);
    }
    gp.rules.append(&mut new_rules);
    if enabled {
        rec.counter(Counter::IndexProbes, probes);
        rec.counter(
            Counter::FactsDiscovered,
            (gp.idb_facts.len() - idb_delta_start) as u64,
        );
    }
    if let Some(t) = span_start {
        rec.stage_nanos(Stage::DeltaGround, t.elapsed().as_nanos() as u64);
    }
    Ok(())
}

/// Remove — in place — every grounded rule whose EDB body references one
/// of the `retracted` fact ids, renumbering the survivors and rebuilding
/// `rules_by_head`. Returns the head fact indices of the removed rules,
/// deduplicated and ascending: the roots of the DRed cone that
/// [`incremental`-style value maintenance][r] must rederive.
///
/// Derivable facts are **not** removed, even when the retraction leaves
/// them underivable: deleting a fact index would renumber every index
/// after it (invalidating circuits, provenance variables, and cached
/// values wholesale — the very thing incremental maintenance avoids).
/// Instead an underivable fact stays as a *zombie*: it keeps its index,
/// rederivation drives its value to `0`, and any rule still referencing
/// it in a body contributes `0 ⊗ … = 0`, i.e. is ⊕-neutral in every
/// fixpoint on every semiring. Query results are therefore identical to
/// a from-scratch rebuild, which simply never derives the fact.
///
/// [r]: https://docs.rs/provcirc
pub fn retract_facts_from_grounding(gp: &mut GroundedProgram, retracted: &[FactId]) -> Vec<usize> {
    let dead: HashSet<FactId> = retracted.iter().copied().collect();
    let mut roots: Vec<usize> = Vec::new();
    gp.rules.retain(|r| {
        if r.body_edb.iter().any(|f| dead.contains(f)) {
            roots.push(r.head);
            false
        } else {
            true
        }
    });
    roots.sort_unstable();
    roots.dedup();
    gp.rules_by_head = vec![Vec::new(); gp.idb_facts.len()];
    for (i, r) in gp.rules.iter().enumerate() {
        gp.rules_by_head[r.head].push(i);
    }
    roots
}

/// Variable bindings of an in-progress body match. Rule bodies bind a
/// handful of variables, so a linear-scanned vector beats a hash map on
/// every operation, and binding is strictly stack-shaped (atoms bind on
/// descent, unbind on backtrack), so a checkpoint/truncate pair replaces
/// per-variable removal — no `newly_bound` allocation per matched atom.
#[derive(Default)]
struct Bindings(Vec<(VarSym, ConstId)>);

impl Bindings {
    #[inline]
    fn get(&self, v: VarSym) -> Option<ConstId> {
        self.0.iter().find(|&&(b, _)| b == v).map(|&(_, c)| c)
    }

    #[inline]
    fn push(&mut self, v: VarSym, c: ConstId) {
        self.0.push((v, c));
    }

    /// Checkpoint for a later [`truncate`](Bindings::truncate).
    #[inline]
    fn mark(&self) -> usize {
        self.0.len()
    }

    /// Drop every binding made since `mark` (bindings are stack-shaped).
    #[inline]
    fn truncate(&mut self, mark: usize) {
        self.0.truncate(mark);
    }
}

/// Callback invoked for every satisfying assignment of a rule body.
/// Returning [`ControlFlow::Break`] aborts the whole enumeration — how the
/// grounded-rule cap cuts a combinatorially exploding join off early
/// instead of enumerating it to completion with a no-op callback.
///
/// The enumeration methods are generic over the callback (monomorphized,
/// so the per-match invocation inlines) — with tens of millions of
/// matches per grounding run, a `dyn` indirection per match is
/// measurable.
trait OnMatch: FnMut(&Bindings, &[BodyMatch]) -> ControlFlow<()> {}
impl<F: FnMut(&Bindings, &[BodyMatch]) -> ControlFlow<()>> OnMatch for F {}

/// One rule's indexed join over EDB ∪ derivable-IDB.
struct Matcher<'a> {
    db: &'a Database,
    gp: &'a GroundedProgram,
    const_map: &'a [Option<ConstId>],
    rule: &'a Rule,
    plan: &'a RulePlan,
    idbs: &'a HashSet<PredId>,
    indices: &'a JoinIndices,
    /// Telemetry gate: when `false` (disabled recorder) the probe counter
    /// below is never touched — the hot join loop pays one predictable
    /// branch and nothing else.
    count_probes: bool,
    /// Index probes performed, counted per matcher (one matcher per work
    /// item, so the counter is thread-private by construction).
    probes: Cell<u64>,
}

impl Matcher<'_> {
    /// Count one hash-index probe (when telemetry is enabled).
    #[inline]
    fn probe(&self) {
        if self.count_probes {
            self.probes.set(self.probes.get() + 1);
        }
    }
    /// Enumerate all substitutions satisfying the rule's body in body
    /// order, invoking `on_match(bindings, per-atom matches)` — the full
    /// (delta-free) join used by round 0 and phase 2. Stops as soon as
    /// the callback breaks.
    fn enumerate(&self, on_match: &mut impl OnMatch) {
        let mut bindings = Bindings::default();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        let mut key: Vec<ConstId> = Vec::new();
        let _ = self.recurse(0, &mut bindings, &mut matches, &mut key, on_match);
    }

    /// Size of the full join's outer loop: how many candidate facts the
    /// body's first atom matches. Position 0 is probed with a key built
    /// from constants only (no variable is bound before the first atom),
    /// so the count is known before any enumeration — phase 2 uses it to
    /// split one rule's join into
    /// [`enumerate_outer_range`](Matcher::enumerate_outer_range)
    /// sub-ranges so a single giant rule no longer serializes the phase.
    /// Empty bodies count as one virtual candidate.
    fn outer_len(&self) -> usize {
        if self.rule.body.is_empty() {
            return 1;
        }
        let atom = &self.rule.body[0];
        let key: Vec<ConstId> = self.plan.bound[0]
            .iter()
            .map(|&p| match &atom.terms[p] {
                Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
                Term::Var(_) => unreachable!("no variable is bound before the first atom"),
            })
            .collect();
        self.probe();
        self.indices.maps[self.plan.slot[0]]
            .get(key.as_slice())
            .map_or(0, |c| c.len())
    }

    /// [`enumerate`](Matcher::enumerate) restricted to outer-loop
    /// candidates `[lo, hi)` of the body's first atom. The candidate list
    /// is iterated in index order, so concatenating the outputs of
    /// consecutive ranges reproduces the full enumeration exactly — the
    /// phase-2 intra-rule sharding relies on this.
    fn enumerate_outer_range(&self, lo: usize, hi: usize, on_match: &mut impl OnMatch) {
        let mut bindings = Bindings::default();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        if self.rule.body.is_empty() {
            if lo == 0 && hi > 0 {
                let _ = on_match(&bindings, &matches);
            }
            return;
        }
        let atom = &self.rule.body[0];
        let mut key: Vec<ConstId> = self.plan.bound[0]
            .iter()
            .map(|&p| match &atom.terms[p] {
                Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
                Term::Var(_) => unreachable!("no variable is bound before the first atom"),
            })
            .collect();
        self.probe();
        let Some(candidates) = self.indices.maps[self.plan.slot[0]].get(key.as_slice()) else {
            return;
        };
        let is_idb = self.idbs.contains(&atom.pred);
        for &c in &candidates[lo.min(candidates.len())..hi.min(candidates.len())] {
            let (tuple, matched) = if is_idb {
                (&self.gp.idb_facts[c].1[..], BodyMatch::Idb(c))
            } else {
                let fid = c as FactId;
                (self.db.fact(fid).1, BodyMatch::Edb(fid))
            };
            if let Some(mark) = self.bind_atom(atom, tuple, &mut bindings) {
                matches.push(matched);
                let flow = self.recurse(1, &mut bindings, &mut matches, &mut key, on_match);
                matches.pop();
                bindings.truncate(mark);
                if flow.is_break() {
                    return;
                }
            }
        }
    }

    /// Enumerate the substitutions whose IDB atom at `dp.dpos` takes a
    /// frontier fact with index in `[lo, hi)` — the semi-naive re-fire of
    /// one rule at one delta position, restricted to one frontier shard.
    ///
    /// The delta atom iterates its predicate's facts in ascending index
    /// order **outermost**, so the enumeration order is keyed by frontier
    /// fact first: concatenating the outputs of consecutive `[lo, hi)`
    /// shards reproduces the full-frontier enumeration exactly. IDB atoms
    /// at body positions *before* `dp.dpos` are restricted to pre-frontier
    /// facts (`< delta_start`), so a grounding with several frontier facts
    /// is enumerated exactly once — at its first frontier position; later
    /// positions stay unrestricted.
    fn enumerate_delta(
        &self,
        dp: &DeltaPlan,
        delta_start: usize,
        lo: usize,
        hi: usize,
        on_match: &mut impl OnMatch,
    ) {
        let atom = &self.rule.body[dp.dpos];
        let facts = self.gp.facts_of(atom.pred);
        let from = facts.partition_point(|&i| i < lo.max(delta_start));
        let mut bindings = Bindings::default();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        let mut key: Vec<ConstId> = Vec::new();
        for &fi in &facts[from..] {
            if fi >= hi {
                break;
            }
            let tuple = &self.gp.idb_facts[fi].1;
            if let Some(mark) = self.bind_atom(atom, tuple, &mut bindings) {
                matches.push(BodyMatch::Idb(fi));
                let flow = self.recurse_rest(
                    dp,
                    0,
                    delta_start,
                    &mut bindings,
                    &mut matches,
                    &mut key,
                    on_match,
                );
                matches.pop();
                bindings.truncate(mark);
                if flow.is_break() {
                    return;
                }
            }
        }
    }

    /// Descend through the non-delta atoms of a [`DeltaPlan`] (original
    /// body order, delta atom excluded).
    #[allow(clippy::too_many_arguments)]
    fn recurse_rest(
        &self,
        dp: &DeltaPlan,
        k: usize,
        delta_start: usize,
        bindings: &mut Bindings,
        matches: &mut Vec<BodyMatch>,
        key: &mut Vec<ConstId>,
        on_match: &mut impl OnMatch,
    ) -> ControlFlow<()> {
        if k == dp.rest.len() {
            return on_match(bindings, matches);
        }
        let pos = dp.rest[k];
        let atom = &self.rule.body[pos];
        key.clear();
        key.extend(dp.bound[k].iter().map(|&p| match &atom.terms[p] {
            Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
            Term::Var(v) => bindings.get(*v).expect("pre-bound by plan"),
        }));
        self.probe();
        let Some(candidates) = self.indices.maps[dp.slot[k]].get(key.as_slice()) else {
            return ControlFlow::Continue(());
        };
        let is_idb = self.idbs.contains(&atom.pred);
        // Pre-frontier restriction for IDB atoms left of the delta
        // position (buckets are ascending: the pre-frontier facts are a
        // prefix found by binary search).
        let to = if is_idb && pos < dp.dpos {
            candidates.partition_point(|&i| i < delta_start)
        } else {
            candidates.len()
        };
        for &c in &candidates[..to] {
            let (tuple, matched) = if is_idb {
                (&self.gp.idb_facts[c].1[..], BodyMatch::Idb(c))
            } else {
                let fid = c as FactId;
                (self.db.fact(fid).1, BodyMatch::Edb(fid))
            };
            if let Some(mark) = self.bind_atom(atom, tuple, bindings) {
                matches.push(matched);
                let flow =
                    self.recurse_rest(dp, k + 1, delta_start, bindings, matches, key, on_match);
                matches.pop();
                bindings.truncate(mark);
                flow?;
            }
        }
        ControlFlow::Continue(())
    }

    /// Enumerate the substitutions whose IDB atom at `dp.dpos` takes a
    /// fact from `changed` (an ascending list of IDB fact indices) — the
    /// fused pipeline's re-fire pass, covering groundings whose body
    /// *values* changed without any body fact being newly discovered.
    ///
    /// Unlike [`enumerate_delta`](Matcher::enumerate_delta), earlier IDB
    /// positions are **not** restricted: a grounding with several changed
    /// facts is enumerated once per changed position. The duplicates are
    /// sound because the fused worklist only ⊕-accumulates (idempotent ⊕,
    /// which is the fused pipeline's precondition) — they cost work, not
    /// correctness, and the changed set is typically tiny.
    fn enumerate_changed(&self, dp: &DeltaPlan, changed: &[usize], on_match: &mut impl OnMatch) {
        let atom = &self.rule.body[dp.dpos];
        let mut bindings = Bindings::default();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        let mut key: Vec<ConstId> = Vec::new();
        for &fi in changed {
            let (pred, tuple) = &self.gp.idb_facts[fi];
            if *pred != atom.pred {
                continue;
            }
            if let Some(mark) = self.bind_atom(atom, tuple, &mut bindings) {
                matches.push(BodyMatch::Idb(fi));
                // `usize::MAX` as the delta boundary disables the
                // pre-frontier restriction in `recurse_rest`: every
                // candidate index is `< usize::MAX`.
                let flow = self.recurse_rest(
                    dp,
                    0,
                    usize::MAX,
                    &mut bindings,
                    &mut matches,
                    &mut key,
                    on_match,
                );
                matches.pop();
                bindings.truncate(mark);
                if flow.is_break() {
                    return;
                }
            }
        }
    }

    /// Enumerate the substitutions whose body atom at position `pinned`
    /// takes a **new** fact while every atom at an earlier position takes
    /// an **old** one (later positions are unrestricted). Summing over all
    /// `pinned` positions covers every body with at least one new fact,
    /// each exactly once — at its *first* new position. This is the
    /// incremental analogue of the phase-1 delta decomposition,
    /// generalized so the pinned atom may be EDB (a freshly inserted
    /// fact, [`PinBounds::edb_start`]) as well as IDB (a fact first
    /// derived by the current delta pass, [`PinBounds::idb_start`]).
    fn enumerate_pinned(&self, pinned: usize, b: &PinBounds, on_match: &mut impl OnMatch) {
        let mut bindings = Bindings::default();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        let mut key: Vec<ConstId> = Vec::new();
        let _ = self.recurse_pinned(
            0,
            pinned,
            b,
            &mut bindings,
            &mut matches,
            &mut key,
            on_match,
        );
    }

    /// Descend through the body in original order, slicing each index
    /// bucket by the old/new boundary of `b` (buckets are ascending, so
    /// the split is a binary search): old-only before the pinned
    /// position, new-only at it, unrestricted after it.
    #[allow(clippy::too_many_arguments)]
    fn recurse_pinned(
        &self,
        pos: usize,
        pinned: usize,
        b: &PinBounds,
        bindings: &mut Bindings,
        matches: &mut Vec<BodyMatch>,
        key: &mut Vec<ConstId>,
        on_match: &mut impl OnMatch,
    ) -> ControlFlow<()> {
        if pos == self.rule.body.len() {
            return on_match(bindings, matches);
        }
        let atom = &self.rule.body[pos];
        key.clear();
        key.extend(self.plan.bound[pos].iter().map(|&p| match &atom.terms[p] {
            Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
            Term::Var(v) => bindings.get(*v).expect("pre-bound by plan"),
        }));
        self.probe();
        let Some(candidates) = self.indices.maps[self.plan.slot[pos]].get(key.as_slice()) else {
            return ControlFlow::Continue(());
        };
        let is_idb = self.idbs.contains(&atom.pred);
        let start = if is_idb { b.idb_start } else { b.edb_start };
        let (from, to) = match pos.cmp(&pinned) {
            std::cmp::Ordering::Less => (0, candidates.partition_point(|&c| c < start)),
            std::cmp::Ordering::Equal => {
                (candidates.partition_point(|&c| c < start), candidates.len())
            }
            std::cmp::Ordering::Greater => (0, candidates.len()),
        };
        for &c in &candidates[from..to] {
            let (tuple, matched) = if is_idb {
                (&self.gp.idb_facts[c].1[..], BodyMatch::Idb(c))
            } else {
                let fid = c as FactId;
                (self.db.fact(fid).1, BodyMatch::Edb(fid))
            };
            if let Some(mark) = self.bind_atom(atom, tuple, bindings) {
                matches.push(matched);
                let flow =
                    self.recurse_pinned(pos + 1, pinned, b, bindings, matches, key, on_match);
                matches.pop();
                bindings.truncate(mark);
                flow?;
            }
        }
        ControlFlow::Continue(())
    }

    fn recurse(
        &self,
        pos: usize,
        bindings: &mut Bindings,
        matches: &mut Vec<BodyMatch>,
        key: &mut Vec<ConstId>,
        on_match: &mut impl OnMatch,
    ) -> ControlFlow<()> {
        if pos == self.rule.body.len() {
            return on_match(bindings, matches);
        }
        let atom = &self.rule.body[pos];
        // Probe key: current bindings projected onto the pre-bound
        // positions of this atom (constants resolved statically). The
        // scratch buffer is reused across the whole enumeration — the key
        // is dead once the index probe returns, so deeper levels may
        // clobber it freely.
        key.clear();
        key.extend(self.plan.bound[pos].iter().map(|&p| match &atom.terms[p] {
            Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
            Term::Var(v) => bindings.get(*v).expect("pre-bound by plan"),
        }));
        self.probe();
        let Some(candidates) = self.indices.maps[self.plan.slot[pos]].get(key.as_slice()) else {
            return ControlFlow::Continue(());
        };
        let is_idb = self.idbs.contains(&atom.pred);
        for &c in candidates {
            let (tuple, matched) = if is_idb {
                (&self.gp.idb_facts[c].1[..], BodyMatch::Idb(c))
            } else {
                let fid = c as FactId;
                (self.db.fact(fid).1, BodyMatch::Edb(fid))
            };
            if let Some(mark) = self.bind_atom(atom, tuple, bindings) {
                matches.push(matched);
                let flow = self.recurse(pos + 1, bindings, matches, key, on_match);
                matches.pop();
                bindings.truncate(mark);
                flow?;
            }
        }
        ControlFlow::Continue(())
    }

    /// Check the residual positions the index could not pre-filter (fresh
    /// variables, within-atom repeats) and bind the fresh variables. On
    /// success returns the checkpoint to [`Bindings::truncate`] to after
    /// the caller's recursion; on a mismatch rolls back and returns
    /// `None`.
    fn bind_atom(&self, atom: &Atom, tuple: &[ConstId], bindings: &mut Bindings) -> Option<usize> {
        if tuple.len() != atom.terms.len() {
            return None;
        }
        let mark = bindings.mark();
        for (term, &value) in atom.terms.iter().zip(tuple) {
            let ok = match term {
                Term::Const(c) => self.const_map[*c as usize] == Some(value),
                Term::Var(v) => match bindings.get(*v) {
                    Some(bound) => bound == value,
                    None => {
                        bindings.push(*v, value);
                        true
                    }
                },
            };
            if !ok {
                bindings.truncate(mark);
                return None;
            }
        }
        Some(mark)
    }
}

fn instantiate(
    atom: &Atom,
    bindings: &Bindings,
    const_map: &[Option<ConstId>],
) -> Option<Vec<ConstId>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => bindings.get(*v),
            Term::Const(c) => const_map[*c as usize],
        })
        .collect()
}

/// [`instantiate`] into a reused buffer — the fused pipeline instantiates
/// one head per streamed grounding (millions per run), so the per-call
/// allocation is hoisted out; consumers copy the slice only when the head
/// turns out to be a brand-new fact.
fn instantiate_into(
    atom: &Atom,
    bindings: &Bindings,
    const_map: &[Option<ConstId>],
    out: &mut Vec<ConstId>,
) {
    out.clear();
    out.extend(atom.terms.iter().map(|t| match t {
        Term::Var(v) => bindings.get(*v).expect("head vars bound by safety"),
        Term::Const(c) => const_map[*c as usize].expect("dead rules are skipped"),
    }));
}

/// One streamed grounding handed to the fused ⊕-worklist: the callback
/// receives `(rule_index, head predicate, head tuple, body matches)` and
/// the grounding is never stored. The head tuple is borrowed from a
/// buffer the grounder reuses across calls — the sink copies it only if
/// the head is a fact it has not seen before.
pub(crate) trait FusedSink: FnMut(usize, PredId, &[ConstId], &[BodyMatch]) {}
impl<F: FnMut(usize, PredId, &[ConstId], &[BodyMatch])> FusedSink for F {}

/// The grounding half of the fused ground+eval pipeline: the phase-1
/// planning artifacts (rule plans, hoisted delta plans, shared hash join
/// indices) packaged so `fused::fused_eval` can drive discovery rounds
/// itself and consume each grounding as it is enumerated, instead of
/// receiving a materialized [`GroundedProgram::rules`] vector.
///
/// Enumeration order is the contract: [`round0`](FusedGrounder::round0)
/// replays phase 1's round-0 task order (one full join per rule, rule
/// order) and [`delta_round`](FusedGrounder::delta_round) replays the
/// `(rule, delta position)` task order over the full frontier — so a
/// consumer that appends newly derived head facts in first-discovery
/// order reproduces [`par_ground_with_limit`]'s fact interning order
/// **bit-identically**. Everything downstream that indexes by fact
/// position (values, snapshots, oracle tests) relies on that.
pub(crate) struct FusedGrounder<'p> {
    program: &'p Program,
    db: &'p Database,
    idbs: HashSet<PredId>,
    const_map: Vec<Option<ConstId>>,
    plans: Vec<RulePlan>,
    delta_plans: Vec<Vec<DeltaPlan>>,
    indices: JoinIndices,
    count_probes: bool,
}

impl<'p> FusedGrounder<'p> {
    /// Validate the program and build the join plans and EDB-side indices.
    pub(crate) fn new(
        program: &'p Program,
        db: &'p Database,
        count_probes: bool,
    ) -> Result<Self, Error> {
        program.validate()?;
        let idbs = program.idbs();
        let const_map: Vec<Option<ConstId>> = (0..program.consts.len() as u32)
            .map(|c| db.consts.get(program.consts.name(c)))
            .collect();
        let mut slots = SlotInterner::default();
        let plans: Vec<RulePlan> = program
            .rules
            .iter()
            .map(|r| plan_rule(r, &idbs, &const_map, &mut slots))
            .collect();
        let delta_plans: Vec<Vec<DeltaPlan>> = program
            .rules
            .iter()
            .enumerate()
            .map(|(ri, rule)| {
                if plans[ri].dead {
                    return Vec::new();
                }
                plans[ri]
                    .idb_positions
                    .iter()
                    .map(|&dpos| plan_delta(rule, dpos, &idbs, &mut slots))
                    .collect()
            })
            .collect();
        let indices = JoinIndices::build(&slots, db);
        Ok(FusedGrounder {
            program,
            db,
            idbs,
            const_map,
            plans,
            delta_plans,
            indices,
            count_probes,
        })
    }

    fn matcher<'m>(&'m self, ri: usize, gp: &'m GroundedProgram) -> Matcher<'m> {
        Matcher {
            db: self.db,
            gp,
            const_map: &self.const_map,
            rule: &self.program.rules[ri],
            plan: &self.plans[ri],
            idbs: &self.idbs,
            indices: &self.indices,
            count_probes: self.count_probes,
            probes: Cell::new(0),
        }
    }

    /// Round 0 of discovery: the full (delta-free) join of every rule
    /// against the empty IDB relation, in rule order — only all-EDB
    /// bodies can match. Returns the index probes performed.
    pub(crate) fn round0(&self, gp: &GroundedProgram, sink: &mut impl FusedSink) -> u64 {
        let mut probes = 0;
        let mut head = Vec::new();
        for (ri, plan) in self.plans.iter().enumerate() {
            if plan.dead {
                continue;
            }
            let head_atom = &self.program.rules[ri].head;
            let m = self.matcher(ri, gp);
            m.enumerate(&mut |bindings, matches| {
                instantiate_into(head_atom, bindings, &self.const_map, &mut head);
                sink(ri, head_atom.pred, &head, matches);
                ControlFlow::Continue(())
            });
            probes += m.probes.get();
        }
        probes
    }

    /// Discovery round `r > 0`: enumerate every grounding whose **newest**
    /// body fact lies in the frontier `[delta_start, gp.idb_facts.len())`,
    /// in phase 1's `(rule, delta position)` task order — each such
    /// grounding exactly once, at its first frontier position. Returns
    /// the index probes performed.
    pub(crate) fn delta_round(
        &self,
        gp: &GroundedProgram,
        delta_start: usize,
        sink: &mut impl FusedSink,
    ) -> u64 {
        let hi = gp.idb_facts.len();
        let mut probes = 0;
        let mut head = Vec::new();
        for (ri, dps) in self.delta_plans.iter().enumerate() {
            let head_atom = &self.program.rules[ri].head;
            for dp in dps {
                let m = self.matcher(ri, gp);
                m.enumerate_delta(
                    dp,
                    delta_start,
                    delta_start,
                    hi,
                    &mut |bindings, matches| {
                        instantiate_into(head_atom, bindings, &self.const_map, &mut head);
                        sink(ri, head_atom.pred, &head, matches);
                        ControlFlow::Continue(())
                    },
                );
                probes += m.probes.get();
            }
        }
        probes
    }

    /// Re-fire pass: enumerate the groundings with a body fact in
    /// `changed` (ascending IDB fact indices whose *value* changed last
    /// round without being newly discovered). May enumerate a grounding
    /// more than once (see [`Matcher::enumerate_changed`]); never
    /// enumerates a grounding whose head fact does not already exist by
    /// the time the pass runs. Returns the index probes performed.
    pub(crate) fn refire_round(
        &self,
        gp: &GroundedProgram,
        changed: &[usize],
        sink: &mut impl FusedSink,
    ) -> u64 {
        let mut probes = 0;
        let mut head = Vec::new();
        for (ri, dps) in self.delta_plans.iter().enumerate() {
            let head_atom = &self.program.rules[ri].head;
            for dp in dps {
                let m = self.matcher(ri, gp);
                m.enumerate_changed(dp, changed, &mut |bindings, matches| {
                    instantiate_into(head_atom, bindings, &self.const_map, &mut head);
                    sink(ri, head_atom.pred, &head, matches);
                    ControlFlow::Continue(())
                });
                probes += m.probes.get();
            }
        }
        probes
    }

    /// Fold the facts appended since the last call into the IDB join
    /// indices — the fused driver calls this once per round, after
    /// appending the round's discoveries.
    pub(crate) fn extend_indices(&mut self, gp: &GroundedProgram) {
        self.indices.extend_idb(gp);
    }

    /// Parallel [`round0`](FusedGrounder::round0): one task per rule,
    /// each buffering its groundings into a [`FusedBatch`] instead of
    /// sinking them live. Batches come back in rule order, so draining
    /// them in order replays the sequential enumeration exactly. Returns
    /// the batches and the index probes performed.
    pub(crate) fn round0_par(
        &self,
        gp: &GroundedProgram,
        threads: usize,
        rec: &dyn Recorder,
    ) -> (Vec<FusedBatch>, u64) {
        let produced = |o: &(FusedBatch, u64)| o.0.len() as u64;
        let outs = crate::par::run_indexed_recorded(
            self.plans.len(),
            threads,
            rec,
            Stage::FusedEval,
            produced,
            |ri| {
                let mut batch = FusedBatch::default();
                let mut probes = 0;
                if !self.plans[ri].dead {
                    let head_atom = &self.program.rules[ri].head;
                    let m = self.matcher(ri, gp);
                    let mut head = Vec::new();
                    m.enumerate(&mut |bindings, matches| {
                        instantiate_into(head_atom, bindings, &self.const_map, &mut head);
                        batch.push(ri, &head, matches);
                        ControlFlow::Continue(())
                    });
                    probes = m.probes.get();
                }
                (batch, probes)
            },
        );
        let probes = outs.iter().map(|(_, p)| *p).sum();
        (outs.into_iter().map(|(b, _)| b).collect(), probes)
    }

    /// Parallel [`delta_round`](FusedGrounder::delta_round): the frontier
    /// is sharded exactly as phase 1 shards it — one task per `(rule,
    /// delta position, frontier sub-range)` in lexicographic order — and
    /// each task buffers its groundings instead of sinking them live.
    /// Concatenating the batches in task order reproduces the sequential
    /// enumeration bit-identically: the delta atom iterates the frontier
    /// outermost (see [`Matcher::enumerate_delta`]), so consecutive
    /// shards of `[delta_start, len)` concatenate to the full-frontier
    /// enumeration. Returns the batches and the index probes performed.
    pub(crate) fn delta_round_par(
        &self,
        gp: &GroundedProgram,
        delta_start: usize,
        threads: usize,
        rec: &dyn Recorder,
    ) -> (Vec<FusedBatch>, u64) {
        let hi = gp.idb_facts.len();
        // Steal-granularity chunks: oversplit the frontier so a worker
        // that finishes its share early can steal a straggler's chunks.
        let ranges = crate::par::chunk_bounds(hi - delta_start, threads);
        let mut tasks: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (ri, dps) in self.delta_plans.iter().enumerate() {
            for di in 0..dps.len() {
                for &(lo, hi_s) in &ranges {
                    tasks.push((ri, di, delta_start + lo, delta_start + hi_s));
                }
            }
        }
        let produced = |o: &(FusedBatch, u64)| o.0.len() as u64;
        let outs = crate::par::run_indexed_recorded(
            tasks.len(),
            threads,
            rec,
            Stage::FusedEval,
            produced,
            |t| {
                let (ri, di, lo, hi_t) = tasks[t];
                let mut batch = FusedBatch::default();
                let head_atom = &self.program.rules[ri].head;
                let m = self.matcher(ri, gp);
                let mut head = Vec::new();
                m.enumerate_delta(
                    &self.delta_plans[ri][di],
                    delta_start,
                    lo,
                    hi_t,
                    &mut |bindings, matches| {
                        instantiate_into(head_atom, bindings, &self.const_map, &mut head);
                        batch.push(ri, &head, matches);
                        ControlFlow::Continue(())
                    },
                );
                (batch, m.probes.get())
            },
        );
        let probes = outs.iter().map(|(_, p)| *p).sum();
        (outs.into_iter().map(|(b, _)| b).collect(), probes)
    }
}

/// One discovery round's groundings in flat buffers — what the parallel
/// fused discovery tasks hand back for the sequential ⊕-drain. Strides
/// are implicit: a grounding of rule `ri` contributes exactly
/// `head.terms.len()` constants to `heads` and `body.len()` matches to
/// `bodies`, so three flat vectors reconstruct the stream with no
/// per-grounding allocation or length bookkeeping. This is the parallel
/// fused path's only transient rule storage: it holds one round, not the
/// program's full grounding, and is dropped at the round boundary.
#[derive(Default)]
pub(crate) struct FusedBatch {
    /// Rule index per grounding, in enumeration order.
    pub(crate) rules: Vec<u32>,
    /// Head tuples, concatenated.
    pub(crate) heads: Vec<ConstId>,
    /// Body matches, concatenated.
    pub(crate) bodies: Vec<BodyMatch>,
}

impl FusedBatch {
    /// Number of buffered groundings.
    pub(crate) fn len(&self) -> usize {
        self.rules.len()
    }

    #[inline]
    fn push(&mut self, ri: usize, head: &[ConstId], matches: &[BodyMatch]) {
        self.rules.push(ri as u32);
        self.heads.extend_from_slice(head);
        self.bodies.extend_from_slice(matches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use graphgen::generators;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn tc_on_path_derives_all_ordered_pairs() {
        let mut p = tc();
        let g = generators::path(4, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // 5 nodes: pairs (i,j) with i<j → 10 facts.
        assert_eq!(gp.num_idb_facts(), 10);
        let t = p.preds.get("T").unwrap();
        let c = |i: usize| db.node_const(i).unwrap();
        assert!(gp.fact(t, &[c(0), c(4)]).is_some());
        assert!(gp.fact(t, &[c(2), c(1)]).is_none());
    }

    #[test]
    fn grounded_rule_counts_on_path() {
        let mut p = tc();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // Initialization: one per edge (3). Recursive T(x,z),E(z,y): for
        // each derivable T(x,z) and edge (z,y): T(0,1)E(1,2), T(0,1)..no..
        // count: pairs (T(i,j), edge (j,k)) with i<j<k? T facts: (0,1),(0,2),
        // (0,3),(1,2),(1,3),(2,3). Edges: (0,1),(1,2),(2,3).
        // Joins: T(i,j) with edge (j,j+1): (0,1)+(1,2); (0,2)+(2,3);
        // (1,2)+(2,3) → 3 groundings.
        let init = gp.rules.iter().filter(|r| r.rule_index == 0).count();
        let rec = gp.rules.iter().filter(|r| r.rule_index == 1).count();
        assert_eq!(init, 3);
        assert_eq!(rec, 3);
        // Every grounded rule's head is a derivable fact with that rule in
        // its head index.
        for (i, r) in gp.rules.iter().enumerate() {
            assert!(gp.rules_by_head[r.head].contains(&i));
        }
    }

    #[test]
    fn cycle_derives_all_pairs() {
        let mut p = tc();
        let g = generators::cycle(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 9); // all ordered pairs incl. self
    }

    #[test]
    fn constants_in_rules_bind() {
        let mut p = parse_program("R(Y) :- E(v0, Y).\nR(Y) :- R(Z), E(Z,Y).").unwrap();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let r = p.preds.get("R").unwrap();
        // Reachable from v0 by ≥1 edges: v1, v2, v3.
        assert_eq!(gp.facts_of(r).len(), 3);
    }

    #[test]
    fn unknown_constants_never_fire() {
        let mut p = parse_program("R(Y) :- E(nosuch, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
    }

    #[test]
    fn unknown_constants_in_heads_never_fire() {
        // A head constant outside the active domain: the rule is dead (it
        // could only derive a fact outside the domain) instead of a panic.
        let mut p = parse_program("R(nosuch) :- E(X, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
        assert!(gp.rules.is_empty());
    }

    #[test]
    fn limit_is_enforced() {
        let mut p = tc();
        let g = generators::complete(6, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(ground_with_limit(&p, &db, 10).is_err());
        assert!(ground(&p, &db).is_ok());
    }

    #[test]
    fn monadic_program_grounds() {
        // Paper Example 2.1's second program: reachable-from-A.
        let mut p = parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").unwrap();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        // A holds at v3; U(x) reaches backwards along edges (x,y) with U(y).
        let a = p.preds.get("A").unwrap();
        let v3 = db.node_const(3).unwrap();
        db.insert(a, vec![v3]);
        let gp = ground(&p, &db).unwrap();
        let u = p.preds.get("U").unwrap();
        assert_eq!(gp.facts_of(u).len(), 4); // v3, v2, v1, v0
    }

    #[test]
    fn facts_by_pred_index_is_coherent() {
        let mut p = tc();
        let g = generators::gnm(7, 18, &["E"], 3);
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        // The per-predicate index is exactly the filter-scan it replaced.
        let scanned: Vec<usize> = gp
            .idb_facts
            .iter()
            .enumerate()
            .filter_map(|(i, (pred, _))| (*pred == t).then_some(i))
            .collect();
        assert_eq!(gp.facts_of(t), &scanned[..]);
        assert_eq!(gp.facts_of(t).len(), gp.num_idb_facts());
    }

    #[test]
    fn nonlinear_rules_ground_like_linear_tc() {
        // Nonlinear TC has two IDB body atoms: every semi-naive round
        // exercises the pre-frontier restriction at positions before the
        // delta position. Derivable facts must match linear TC exactly.
        let mut nl = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).").unwrap();
        let mut lin = tc();
        for seed in 0..4u64 {
            let g = generators::gnm(8, 18, &["E"], seed);
            let (db_nl, _) = Database::from_graph(&mut nl, &g);
            let gp_nl = ground(&nl, &db_nl).unwrap();
            let (db_lin, _) = Database::from_graph(&mut lin, &g);
            let gp_lin = ground(&lin, &db_lin).unwrap();
            assert_eq!(gp_nl.num_idb_facts(), gp_lin.num_idb_facts(), "seed={seed}");
            let t = lin.preds.get("T").unwrap();
            for (pred, tuple) in &gp_lin.idb_facts {
                if *pred == t {
                    let names: Vec<&str> = tuple.iter().map(|&c| db_lin.consts.name(c)).collect();
                    let mapped: Vec<ConstId> = names
                        .iter()
                        .map(|n| db_nl.consts.get(n).expect("shared domain"))
                        .collect();
                    let t_nl = nl.preds.get("T").unwrap();
                    assert!(
                        gp_nl.fact(t_nl, &mapped).is_some(),
                        "missing {names:?} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_grounding_is_bit_identical_to_sequential() {
        // Fact order (= FactId assignment), grounded-rule order, and every
        // index must match the sequential run for any thread count —
        // including programs whose recursive atom is not the first body
        // atom (delta position > 0 exercises the hoisted enumeration).
        let programs: Vec<Program> = vec![
            tc(),
            parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).").unwrap(),
            parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").unwrap(),
            parse_program(
                "S(X,Y) :- L(X,Z), R(Z,Y).\n\
                 S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).\n\
                 S(X,Y) :- S(X,Z), S(Z,Y).",
            )
            .unwrap(),
        ];
        for mut p in programs {
            for seed in 0..3u64 {
                let labels: Vec<&str> = if p.preds.get("L").is_some() {
                    vec!["L", "R"]
                } else {
                    vec!["E"]
                };
                let g = generators::gnm(8, 18, &labels, seed);
                let (mut db, _) = Database::from_graph(&mut p, &g);
                if let Some(a) = p.preds.get("A") {
                    let v0 = db.node_const(0).unwrap();
                    db.insert(a, vec![v0]);
                }
                let seq = ground(&p, &db).unwrap();
                for threads in [2usize, 4, 8] {
                    let par = par_ground(&p, &db, threads).unwrap();
                    assert_eq!(seq.idb_facts, par.idb_facts, "facts, threads={threads}");
                    assert_eq!(seq.rules, par.rules, "rules, threads={threads}");
                    assert_eq!(seq.fact_index, par.fact_index, "index, threads={threads}");
                    assert_eq!(
                        seq.rules_by_head, par.rules_by_head,
                        "by-head, threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_limit_is_enforced() {
        let mut p = tc();
        let g = generators::complete(6, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(par_ground_with_limit(&p, &db, 10, 4).is_err());
        assert!(par_ground(&p, &db, 4).is_ok());
    }

    #[test]
    fn seminaive_grounding_matches_reachability_on_random_graphs() {
        // The delta-frontier fixpoint must derive exactly the BFS-reachable
        // pairs (≥ 1 edge) on arbitrary graphs, cycles included.
        let mut p = tc();
        for seed in 0..5u64 {
            let g = generators::gnm(9, 22, &["E"], seed);
            let (db, _) = Database::from_graph(&mut p, &g);
            let gp = ground(&p, &db).unwrap();
            let t = p.preds.get("T").unwrap();
            let mut expected = 0usize;
            for u in 0..g.num_nodes() {
                let mut reach = vec![false; g.num_nodes()];
                for &(eu, ev, _) in g.edges() {
                    if eu as usize == u {
                        for (w, r) in g.reachable_from(ev).iter().enumerate() {
                            reach[w] |= r;
                        }
                        reach[ev as usize] = true;
                    }
                }
                for (v, reachable) in reach.iter().enumerate() {
                    if *reachable {
                        expected += 1;
                        let key = [db.node_const(u).unwrap(), db.node_const(v).unwrap()];
                        assert!(gp.fact(t, &key).is_some(), "missing T({u},{v}) seed={seed}");
                    }
                }
            }
            assert_eq!(gp.facts_of(t).len(), expected, "seed={seed}");
        }
    }

    /// Canonical, order-insensitive view of a grounded program: the fact
    /// set plus every grounded rule with head/body-IDB indices resolved to
    /// `(pred, tuple)` pairs (EDB fact ids are comparable directly when
    /// both databases inserted facts in the same order).
    #[allow(clippy::type_complexity)]
    fn canon(
        gp: &GroundedProgram,
    ) -> (
        Vec<(PredId, Vec<ConstId>)>,
        Vec<(
            usize,
            (PredId, Vec<ConstId>),
            Vec<(PredId, Vec<ConstId>)>,
            Vec<FactId>,
        )>,
    ) {
        let mut facts = gp.idb_facts.clone();
        facts.sort();
        let mut rules: Vec<_> = gp
            .rules
            .iter()
            .map(|r| {
                (
                    r.rule_index,
                    gp.idb_facts[r.head].clone(),
                    r.body_idb
                        .iter()
                        .map(|&i| gp.idb_facts[i].clone())
                        .collect::<Vec<_>>(),
                    r.body_edb.clone(),
                )
            })
            .collect();
        rules.sort();
        (facts, rules)
    }

    #[test]
    fn extend_grounding_matches_rebuild_on_random_inserts() {
        // Ground a prefix of the edge set, insert the remaining edges, and
        // extend: facts and grounded rules must equal a from-scratch
        // grounding of the full database (fact ids align because both
        // databases intern constants and insert edges in the same order).
        let programs: Vec<Program> = vec![
            tc(),
            parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).").unwrap(),
        ];
        for mut p in programs {
            for seed in 0..4u64 {
                let g = generators::gnm(8, 18, &["E"], seed);
                // Rebuild target: the full graph in one shot.
                let (db_full, _) = Database::from_graph(&mut p, &g);
                let e = p.preds.get("E").unwrap();
                let gp_full = ground(&p, &db_full).unwrap();
                for hold_back in [1usize, 3, 6] {
                    // Base: same constants, same edge order, last
                    // `hold_back` edges missing.
                    let mut db = Database::new();
                    for i in 0..g.num_nodes() {
                        db.constant(&format!("v{i}"));
                    }
                    let edges = g.edges();
                    let split = edges.len() - hold_back;
                    for &(u, v, _) in &edges[..split] {
                        db.insert(
                            e,
                            vec![
                                db.node_const(u as usize).unwrap(),
                                db.node_const(v as usize).unwrap(),
                            ],
                        );
                    }
                    let mut gp = ground(&p, &db).unwrap();
                    let edb_delta_start = db.num_facts() as FactId;
                    let old_domain = db.domain_size();
                    for &(u, v, _) in &edges[split..] {
                        db.insert(
                            e,
                            vec![
                                db.node_const(u as usize).unwrap(),
                                db.node_const(v as usize).unwrap(),
                            ],
                        );
                    }
                    extend_grounding(
                        &p,
                        &db,
                        &mut gp,
                        edb_delta_start,
                        old_domain,
                        usize::MAX,
                        &NOOP,
                    )
                    .unwrap();
                    assert_eq!(
                        canon(&gp),
                        canon(&gp_full),
                        "seed={seed} hold_back={hold_back}"
                    );
                    // Self-consistency of the maintained indices.
                    assert_eq!(gp.rules_by_head.len(), gp.idb_facts.len());
                    for (i, r) in gp.rules.iter().enumerate() {
                        assert!(gp.rules_by_head[r.head].contains(&i));
                    }
                    for (pred, by_tuple) in &gp.fact_index {
                        for (tuple, &i) in by_tuple {
                            assert_eq!(gp.idb_facts[i], (*pred, tuple.clone()));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn extend_grounding_revives_rules_on_new_constants() {
        // `hub` is outside the initial active domain, so both rules
        // mentioning it are dead at first grounding. Inserting A(hub) and
        // E(hub, v0) interns `hub`; the extension must revive the rules
        // and enumerate them in full.
        let mut p = parse_program("R(Y) :- A(hub), E(hub, Y).\nR(Y) :- R(Z), E(Z,Y).").unwrap();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        let e = p.preds.get("E").unwrap();
        let a = p.preds.get("A").unwrap();
        let mut gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
        let edb_delta_start = db.num_facts() as FactId;
        let old_domain = db.domain_size();
        let hub = db.constant("hub");
        let v0 = db.node_const(0).unwrap();
        db.insert(a, vec![hub]);
        db.insert(e, vec![hub, v0]);
        extend_grounding(
            &p,
            &db,
            &mut gp,
            edb_delta_start,
            old_domain,
            usize::MAX,
            &NOOP,
        )
        .unwrap();
        let gp_full = ground(&p, &db).unwrap();
        assert_eq!(canon(&gp), canon(&gp_full));
        let r = p.preds.get("R").unwrap();
        // hub → v0 → v1 → v2 → v3.
        assert_eq!(gp.facts_of(r).len(), 4);
    }

    #[test]
    fn extend_grounding_enforces_the_rule_limit() {
        let mut p = tc();
        let g = generators::complete(6, "E");
        let e = p.preds.get("E").unwrap();
        let (db_full, _) = Database::from_graph(&mut p, &g);
        let mut db = Database::new();
        for i in 0..g.num_nodes() {
            db.constant(&format!("v{i}"));
        }
        let edges = g.edges();
        let split = edges.len() / 2;
        for &(u, v, _) in &edges[..split] {
            db.insert(
                e,
                vec![
                    db.node_const(u as usize).unwrap(),
                    db.node_const(v as usize).unwrap(),
                ],
            );
        }
        let mut gp = ground(&p, &db).unwrap();
        let edb_delta_start = db.num_facts() as FactId;
        let old_domain = db.domain_size();
        for &(u, v, _) in &edges[split..] {
            db.insert(
                e,
                vec![
                    db.node_const(u as usize).unwrap(),
                    db.node_const(v as usize).unwrap(),
                ],
            );
        }
        let full_rules = ground(&p, &db_full).unwrap().rules.len();
        let err = extend_grounding(
            &p,
            &db,
            &mut gp,
            edb_delta_start,
            old_domain,
            full_rules / 2,
            &NOOP,
        );
        assert!(matches!(err, Err(Error::GroundingLimit { .. })));
    }

    #[test]
    fn retract_removes_exactly_the_rules_citing_the_fact() {
        let mut p = tc();
        let g = generators::path(3, "E");
        let (mut db, edge_facts) = Database::from_graph(&mut p, &g);
        let mut gp = ground(&p, &db).unwrap();
        let before = gp.rules.len();
        let citing = gp
            .rules
            .iter()
            .filter(|r| r.body_edb.contains(&edge_facts[1]))
            .count();
        assert!(citing > 0);
        // Retract the middle edge from both the database and the grounding.
        let (pred, tuple) = db.fact(edge_facts[1]);
        let tuple = tuple.to_vec();
        assert_eq!(db.retract(pred, &tuple), Some(edge_facts[1]));
        let roots = retract_facts_from_grounding(&mut gp, &[edge_facts[1]]);
        assert_eq!(gp.rules.len(), before - citing);
        assert!(!roots.is_empty());
        assert!(gp
            .rules
            .iter()
            .all(|r| !r.body_edb.contains(&edge_facts[1])));
        // Index invariants: rules_by_head rebuilt, roots are valid facts.
        assert_eq!(gp.rules_by_head.len(), gp.idb_facts.len());
        for (i, r) in gp.rules.iter().enumerate() {
            assert!(gp.rules_by_head[r.head].contains(&i));
        }
        for &root in &roots {
            assert!(root < gp.idb_facts.len());
        }
        // Zombie invariant: idb_facts are retained even when underivable.
        let t = p.preds.get("T").unwrap();
        assert_eq!(gp.facts_of(t).len(), 6);
    }
}
