//! Grounding: from a program and database to the grounded program
//! (paper §2.1), the shared input of naive evaluation and of every circuit
//! construction (Theorems 3.1, 4.3, 6.2).
//!
//! Grounding proceeds in two phases:
//! 1. a naive Boolean fixpoint computes the set of *derivable* IDB facts;
//! 2. every rule is instantiated in all ways whose body holds in
//!    EDB ∪ derivable-IDB, yielding [`GroundedRule`]s.
//!
//! Restricting to derivable facts keeps the grounded program — and hence
//! every circuit built from it — free of dead gates.

use std::collections::HashMap;

use provcirc_error::Error;

use crate::ast::{Atom, Program, Rule, Term};
use crate::database::{Database, FactId};
use crate::symbols::{ConstId, PredId, VarSym};

/// A grounded rule `idb_facts[head] :- idb_facts[i]…, x_{edb}…`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundedRule {
    /// Index of the originating rule in the program.
    pub rule_index: usize,
    /// Head fact (index into [`GroundedProgram::idb_facts`]).
    pub head: usize,
    /// IDB body facts (indices into [`GroundedProgram::idb_facts`]).
    pub body_idb: Vec<usize>,
    /// EDB body facts (provenance variables).
    pub body_edb: Vec<FactId>,
}

/// The grounded program.
#[derive(Clone, Debug, Default)]
pub struct GroundedProgram {
    /// All derivable IDB facts.
    pub idb_facts: Vec<(PredId, Vec<ConstId>)>,
    /// Index from fact to its position in `idb_facts`.
    pub fact_index: HashMap<(PredId, Vec<ConstId>), usize>,
    /// All grounded rules.
    pub rules: Vec<GroundedRule>,
    /// For each IDB fact, the grounded rules deriving it.
    pub rules_by_head: Vec<Vec<usize>>,
}

impl GroundedProgram {
    /// Number of derivable IDB facts.
    pub fn num_idb_facts(&self) -> usize {
        self.idb_facts.len()
    }

    /// The index of a derivable IDB fact.
    pub fn fact(&self, pred: PredId, tuple: &[ConstId]) -> Option<usize> {
        self.fact_index.get(&(pred, tuple.to_vec())).copied()
    }

    /// Indices of derivable facts of a predicate.
    pub fn facts_of(&self, pred: PredId) -> Vec<usize> {
        self.idb_facts
            .iter()
            .enumerate()
            .filter_map(|(i, (p, _))| (*p == pred).then_some(i))
            .collect()
    }

    /// Total size of the grounded program (the `M` of Theorem 4.3's size
    /// analysis): grounded rules plus their body atoms.
    pub fn size(&self) -> usize {
        self.rules.len()
            + self
                .rules
                .iter()
                .map(|r| r.body_idb.len() + r.body_edb.len())
                .sum::<usize>()
    }
}

/// A match target during joins: either an IDB fact index or an EDB fact id.
#[derive(Clone, Copy, Debug)]
enum BodyMatch {
    Idb(usize),
    Edb(FactId),
}

/// Ground `program` against `db`. Fails if the grounding would exceed
/// `max_rules` grounded rules (pass `usize::MAX` for no limit).
pub fn ground_with_limit(
    program: &Program,
    db: &Database,
    max_rules: usize,
) -> Result<GroundedProgram, Error> {
    program.validate()?;
    let idbs = program.idbs();

    // Resolve program constants into the database's domain; a rule whose
    // constant is outside the active domain can never fire.
    let const_map: Vec<Option<ConstId>> = (0..program.consts.len() as u32)
        .map(|c| db.consts.get(program.consts.name(c)))
        .collect();

    // Phase 1: derivable IDB facts (naive Boolean fixpoint).
    let mut gp = GroundedProgram::default();
    loop {
        let mut new_facts: Vec<(PredId, Vec<ConstId>)> = Vec::new();
        for rule in &program.rules {
            enumerate_matches(
                program,
                db,
                &gp,
                &const_map,
                rule,
                &idbs,
                &mut |bindings, _| {
                    let head = instantiate(&rule.head, bindings, &const_map)
                        .expect("head vars bound by safety");
                    if gp.fact(rule.head.pred, &head).is_none() {
                        new_facts.push((rule.head.pred, head));
                    }
                },
            );
        }
        let mut changed = false;
        for (pred, tuple) in new_facts {
            let key = (pred, tuple);
            if !gp.fact_index.contains_key(&key) {
                gp.fact_index.insert(key.clone(), gp.idb_facts.len());
                gp.idb_facts.push(key);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: enumerate all groundings against the completed fact set.
    let mut rules: Vec<GroundedRule> = Vec::new();
    for (rule_index, rule) in program.rules.iter().enumerate() {
        let mut overflow = false;
        enumerate_matches(
            program,
            db,
            &gp,
            &const_map,
            rule,
            &idbs,
            &mut |bindings, matches| {
                if overflow {
                    return;
                }
                if rules.len() >= max_rules {
                    overflow = true;
                    return;
                }
                let head_tuple = instantiate(&rule.head, bindings, &const_map)
                    .expect("head vars bound by safety");
                let head = gp
                    .fact(rule.head.pred, &head_tuple)
                    .expect("head derivable at fixpoint");
                let mut body_idb = Vec::new();
                let mut body_edb = Vec::new();
                for m in matches {
                    match *m {
                        BodyMatch::Idb(i) => body_idb.push(i),
                        BodyMatch::Edb(f) => body_edb.push(f),
                    }
                }
                rules.push(GroundedRule {
                    rule_index,
                    head,
                    body_idb,
                    body_edb,
                });
            },
        );
        if overflow {
            return Err(Error::GroundingLimit { max_rules });
        }
    }

    gp.rules_by_head = vec![Vec::new(); gp.idb_facts.len()];
    for (i, r) in rules.iter().enumerate() {
        gp.rules_by_head[r.head].push(i);
    }
    gp.rules = rules;
    Ok(gp)
}

/// Ground without a rule limit.
pub fn ground(program: &Program, db: &Database) -> Result<GroundedProgram, Error> {
    ground_with_limit(program, db, usize::MAX)
}

/// Callback invoked for every satisfying assignment of a rule body.
type OnMatch<'a> = dyn FnMut(&HashMap<VarSym, ConstId>, &[BodyMatch]) + 'a;

/// Enumerate all substitutions satisfying `rule`'s body over
/// EDB ∪ derivable-IDB, invoking `on_match(bindings, per-atom matches)`.
fn enumerate_matches(
    program: &Program,
    db: &Database,
    gp: &GroundedProgram,
    const_map: &[Option<ConstId>],
    rule: &Rule,
    idbs: &std::collections::HashSet<PredId>,
    on_match: &mut OnMatch<'_>,
) {
    let mut bindings: HashMap<VarSym, ConstId> = HashMap::new();
    let mut matches: Vec<BodyMatch> = Vec::with_capacity(rule.body.len());
    recurse(
        program,
        db,
        gp,
        const_map,
        rule,
        idbs,
        0,
        &mut bindings,
        &mut matches,
        on_match,
    );
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    program: &Program,
    db: &Database,
    gp: &GroundedProgram,
    const_map: &[Option<ConstId>],
    rule: &Rule,
    idbs: &std::collections::HashSet<PredId>,
    pos: usize,
    bindings: &mut HashMap<VarSym, ConstId>,
    matches: &mut Vec<BodyMatch>,
    on_match: &mut OnMatch<'_>,
) {
    if pos == rule.body.len() {
        on_match(bindings, matches);
        return;
    }
    let atom = &rule.body[pos];
    if idbs.contains(&atom.pred) {
        for i in gp.facts_of(atom.pred) {
            let tuple = gp.idb_facts[i].1.clone();
            try_match(
                program,
                db,
                gp,
                const_map,
                rule,
                idbs,
                pos,
                atom,
                &tuple,
                BodyMatch::Idb(i),
                bindings,
                matches,
                on_match,
            );
        }
    } else {
        for &fid in db.facts_of(atom.pred) {
            let tuple = db.fact(fid).1.to_vec();
            try_match(
                program,
                db,
                gp,
                const_map,
                rule,
                idbs,
                pos,
                atom,
                &tuple,
                BodyMatch::Edb(fid),
                bindings,
                matches,
                on_match,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_match(
    program: &Program,
    db: &Database,
    gp: &GroundedProgram,
    const_map: &[Option<ConstId>],
    rule: &Rule,
    idbs: &std::collections::HashSet<PredId>,
    pos: usize,
    atom: &Atom,
    tuple: &[ConstId],
    matched: BodyMatch,
    bindings: &mut HashMap<VarSym, ConstId>,
    matches: &mut Vec<BodyMatch>,
    on_match: &mut OnMatch<'_>,
) {
    if tuple.len() != atom.terms.len() {
        return;
    }
    let mut newly_bound: Vec<VarSym> = Vec::new();
    let mut ok = true;
    for (term, &value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if const_map[*c as usize] != Some(value) {
                    ok = false;
                    break;
                }
            }
            Term::Var(v) => match bindings.get(v) {
                Some(&bound) if bound != value => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    bindings.insert(*v, value);
                    newly_bound.push(*v);
                }
            },
        }
    }
    if ok {
        matches.push(matched);
        recurse(
            program,
            db,
            gp,
            const_map,
            rule,
            idbs,
            pos + 1,
            bindings,
            matches,
            on_match,
        );
        matches.pop();
    }
    for v in newly_bound {
        bindings.remove(&v);
    }
}

fn instantiate(
    atom: &Atom,
    bindings: &HashMap<VarSym, ConstId>,
    const_map: &[Option<ConstId>],
) -> Option<Vec<ConstId>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => bindings.get(v).copied(),
            Term::Const(c) => const_map[*c as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use graphgen::generators;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn tc_on_path_derives_all_ordered_pairs() {
        let mut p = tc();
        let g = generators::path(4, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // 5 nodes: pairs (i,j) with i<j → 10 facts.
        assert_eq!(gp.num_idb_facts(), 10);
        let t = p.preds.get("T").unwrap();
        let c = |i: usize| db.node_const(i).unwrap();
        assert!(gp.fact(t, &[c(0), c(4)]).is_some());
        assert!(gp.fact(t, &[c(2), c(1)]).is_none());
    }

    #[test]
    fn grounded_rule_counts_on_path() {
        let mut p = tc();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // Initialization: one per edge (3). Recursive T(x,z),E(z,y): for
        // each derivable T(x,z) and edge (z,y): T(0,1)E(1,2), T(0,1)..no..
        // count: pairs (T(i,j), edge (j,k)) with i<j<k? T facts: (0,1),(0,2),
        // (0,3),(1,2),(1,3),(2,3). Edges: (0,1),(1,2),(2,3).
        // Joins: T(i,j) with edge (j,j+1): (0,1)+(1,2); (0,2)+(2,3);
        // (1,2)+(2,3) → 3 groundings.
        let init = gp.rules.iter().filter(|r| r.rule_index == 0).count();
        let rec = gp.rules.iter().filter(|r| r.rule_index == 1).count();
        assert_eq!(init, 3);
        assert_eq!(rec, 3);
        // Every grounded rule's head is a derivable fact with that rule in
        // its head index.
        for (i, r) in gp.rules.iter().enumerate() {
            assert!(gp.rules_by_head[r.head].contains(&i));
        }
    }

    #[test]
    fn cycle_derives_all_pairs() {
        let mut p = tc();
        let g = generators::cycle(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 9); // all ordered pairs incl. self
    }

    #[test]
    fn constants_in_rules_bind() {
        let mut p = parse_program("R(Y) :- E(v0, Y).\nR(Y) :- R(Z), E(Z,Y).").unwrap();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let r = p.preds.get("R").unwrap();
        // Reachable from v0 by ≥1 edges: v1, v2, v3.
        assert_eq!(gp.facts_of(r).len(), 3);
    }

    #[test]
    fn unknown_constants_never_fire() {
        let mut p = parse_program("R(Y) :- E(nosuch, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
    }

    #[test]
    fn limit_is_enforced() {
        let mut p = tc();
        let g = generators::complete(6, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(ground_with_limit(&p, &db, 10).is_err());
        assert!(ground(&p, &db).is_ok());
    }

    #[test]
    fn monadic_program_grounds() {
        // Paper Example 2.1's second program: reachable-from-A.
        let mut p = parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").unwrap();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        // A holds at v3; U(x) reaches backwards along edges (x,y) with U(y).
        let a = p.preds.get("A").unwrap();
        let v3 = db.node_const(3).unwrap();
        db.insert(a, vec![v3]);
        let gp = ground(&p, &db).unwrap();
        let u = p.preds.get("U").unwrap();
        assert_eq!(gp.facts_of(u).len(), 4); // v3, v2, v1, v0
    }
}
