//! Grounding: from a program and database to the grounded program
//! (paper §2.1), the shared input of naive evaluation and of every circuit
//! construction (Theorems 3.1, 4.3, 6.2).
//!
//! Grounding proceeds in two phases:
//! 1. a **semi-naive** Boolean fixpoint computes the set of *derivable*
//!    IDB facts: each round only instantiates rule bodies that use at
//!    least one fact from the previous round's *delta frontier*, instead
//!    of re-enumerating every match from scratch;
//! 2. every rule is instantiated in all ways whose body holds in
//!    EDB ∪ derivable-IDB, yielding [`GroundedRule`]s.
//!
//! Both phases join through per-predicate **hash indices**: for every
//! `(predicate, bound argument positions)` pair some rule probes, facts are
//! keyed by their projection onto those positions (the private
//! `JoinIndices`). A body atom whose prefix has already bound `k` of its
//! arguments is matched by one hash lookup over exactly the candidate
//! facts agreeing on those arguments — not by scanning the full relation.
//! Because derivable facts are appended round by round, the delta frontier
//! is a contiguous index range and a binary search restricts any index
//! bucket to it.
//!
//! Restricting to derivable facts keeps the grounded program — and hence
//! every circuit built from it — free of dead gates.

use std::collections::{HashMap, HashSet};

use provcirc_error::Error;

use crate::ast::{Atom, Program, Rule, Term};
use crate::database::{Database, FactId};
use crate::symbols::{ConstId, PredId, VarSym};

/// A grounded rule `idb_facts[head] :- idb_facts[i]…, x_{edb}…`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundedRule {
    /// Index of the originating rule in the program.
    pub rule_index: usize,
    /// Head fact (index into [`GroundedProgram::idb_facts`]).
    pub head: usize,
    /// IDB body facts (indices into [`GroundedProgram::idb_facts`]).
    pub body_idb: Vec<usize>,
    /// EDB body facts (provenance variables).
    pub body_edb: Vec<FactId>,
}

/// The grounded program.
#[derive(Clone, Debug, Default)]
pub struct GroundedProgram {
    /// All derivable IDB facts.
    pub idb_facts: Vec<(PredId, Vec<ConstId>)>,
    /// Index from fact to its position in `idb_facts`.
    pub fact_index: HashMap<(PredId, Vec<ConstId>), usize>,
    /// All grounded rules.
    pub rules: Vec<GroundedRule>,
    /// For each IDB fact, the grounded rules deriving it.
    pub rules_by_head: Vec<Vec<usize>>,
    /// Derivable facts grouped by predicate, each group in `idb_facts`
    /// order — maintained during grounding so [`facts_of`] is a lookup,
    /// not a scan.
    ///
    /// [`facts_of`]: GroundedProgram::facts_of
    pub facts_by_pred: HashMap<PredId, Vec<usize>>,
}

impl GroundedProgram {
    /// Number of derivable IDB facts.
    pub fn num_idb_facts(&self) -> usize {
        self.idb_facts.len()
    }

    /// The index of a derivable IDB fact.
    pub fn fact(&self, pred: PredId, tuple: &[ConstId]) -> Option<usize> {
        self.fact_index.get(&(pred, tuple.to_vec())).copied()
    }

    /// Indices of derivable facts of a predicate, in `idb_facts` order.
    ///
    /// O(1): served from the per-predicate index built during grounding
    /// (it used to be an O(#facts) scan per call, which made the grounding
    /// join quadratic on large instances).
    pub fn facts_of(&self, pred: PredId) -> &[usize] {
        self.facts_by_pred.get(&pred).map_or(&[][..], Vec::as_slice)
    }

    /// Total size of the grounded program (the `M` of Theorem 4.3's size
    /// analysis): grounded rules plus their body atoms.
    pub fn size(&self) -> usize {
        self.rules.len()
            + self
                .rules
                .iter()
                .map(|r| r.body_idb.len() + r.body_edb.len())
                .sum::<usize>()
    }

    /// Append a derivable fact, keeping `fact_index` and `facts_by_pred`
    /// coherent. Returns `Some(i)` for a new fact, `None` for a duplicate.
    fn push_fact(&mut self, pred: PredId, tuple: Vec<ConstId>) -> Option<usize> {
        let key = (pred, tuple);
        if self.fact_index.contains_key(&key) {
            return None;
        }
        let i = self.idb_facts.len();
        self.fact_index.insert(key.clone(), i);
        self.facts_by_pred.entry(pred).or_default().push(i);
        self.idb_facts.push(key);
        Some(i)
    }
}

/// A match target during joins: either an IDB fact index or an EDB fact id.
#[derive(Clone, Copy, Debug)]
enum BodyMatch {
    Idb(usize),
    Edb(FactId),
}

/// Statically computed join plan of one rule, for the fixed left-to-right
/// body order: which argument positions of each body atom are already
/// bound (constants, or variables bound by an earlier atom) when the
/// matcher reaches it — the probe key of the hash index at that position.
struct RulePlan {
    /// Per body position: the pre-bound argument positions, ascending.
    bound: Vec<Vec<usize>>,
    /// Per body position: slot of the shared index in [`JoinIndices`].
    slot: Vec<usize>,
    /// Body positions holding IDB atoms (delta-constraint candidates).
    idb_positions: Vec<usize>,
    /// A constant in the rule names nothing in the active domain: the rule
    /// can never fire over this database and is skipped wholesale.
    dead: bool,
}

fn plan_rule(
    rule: &Rule,
    idbs: &HashSet<PredId>,
    const_map: &[Option<ConstId>],
    slots: &mut SlotInterner,
) -> RulePlan {
    let mut dead = rule
        .head
        .terms
        .iter()
        .any(|t| matches!(t, Term::Const(c) if const_map[*c as usize].is_none()));
    let mut bound_vars: HashSet<VarSym> = HashSet::new();
    let mut bound = Vec::with_capacity(rule.body.len());
    let mut slot = Vec::with_capacity(rule.body.len());
    let mut idb_positions = Vec::new();
    for (pos, atom) in rule.body.iter().enumerate() {
        let mut pre_bound = Vec::new();
        for (p, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if const_map[*c as usize].is_none() {
                        dead = true;
                    }
                    pre_bound.push(p);
                }
                Term::Var(v) => {
                    if bound_vars.contains(v) {
                        pre_bound.push(p);
                    }
                }
            }
        }
        for term in &atom.terms {
            if let Term::Var(v) = term {
                bound_vars.insert(*v);
            }
        }
        let is_idb = idbs.contains(&atom.pred);
        if is_idb {
            idb_positions.push(pos);
        }
        slot.push(slots.intern(atom.pred, &pre_bound, is_idb));
        bound.push(pre_bound);
    }
    RulePlan {
        bound,
        slot,
        idb_positions,
        dead,
    }
}

/// Interner mapping `(predicate, bound positions)` to an index slot shared
/// across all rules probing the same relation the same way.
#[derive(Default)]
struct SlotInterner {
    by_key: HashMap<(PredId, Vec<usize>), usize>,
    /// Per slot: predicate, bound positions, and whether it indexes IDB.
    specs: Vec<(PredId, Vec<usize>, bool)>,
}

impl SlotInterner {
    fn intern(&mut self, pred: PredId, positions: &[usize], is_idb: bool) -> usize {
        *self
            .by_key
            .entry((pred, positions.to_vec()))
            .or_insert_with(|| {
                self.specs.push((pred, positions.to_vec(), is_idb));
                self.specs.len() - 1
            })
    }
}

/// The hash join indices of one grounding run: one index per interned
/// `(predicate, bound positions)` slot. EDB slots are filled once from the
/// database; IDB slots grow after every semi-naive round.
struct JoinIndices {
    /// Per slot: projection key → matching facts (IDB fact indices or EDB
    /// fact ids, ascending — insertion order).
    maps: Vec<HashMap<Vec<ConstId>, Vec<usize>>>,
    /// Per slot: the projected positions (copied out of the interner).
    positions: Vec<Vec<usize>>,
    /// IDB slot numbers grouped by predicate, so extending with a new fact
    /// touches only its own predicate's slots.
    idb_slots_by_pred: HashMap<PredId, Vec<usize>>,
    /// Number of `idb_facts` already folded into the IDB slots.
    idb_upto: usize,
}

impl JoinIndices {
    fn build(slots: &SlotInterner, db: &Database) -> Self {
        let mut maps = Vec::with_capacity(slots.specs.len());
        let mut positions = Vec::with_capacity(slots.specs.len());
        let mut idb_slots_by_pred: HashMap<PredId, Vec<usize>> = HashMap::new();
        for (slot, (pred, pos, idb)) in slots.specs.iter().enumerate() {
            let mut map: HashMap<Vec<ConstId>, Vec<usize>> = HashMap::new();
            if *idb {
                idb_slots_by_pred.entry(*pred).or_default().push(slot);
            } else {
                for &fid in db.facts_of(*pred) {
                    let tuple = db.fact(fid).1;
                    if pos.iter().all(|&p| p < tuple.len()) {
                        let key: Vec<ConstId> = pos.iter().map(|&p| tuple[p]).collect();
                        map.entry(key).or_default().push(fid as usize);
                    }
                }
            }
            maps.push(map);
            positions.push(pos.clone());
        }
        JoinIndices {
            maps,
            positions,
            idb_slots_by_pred,
            idb_upto: 0,
        }
    }

    /// Fold the facts appended since the last call into the IDB slots of
    /// their predicate.
    fn extend_idb(&mut self, gp: &GroundedProgram) {
        for i in self.idb_upto..gp.idb_facts.len() {
            let (pred, tuple) = &gp.idb_facts[i];
            let Some(slots) = self.idb_slots_by_pred.get(pred) else {
                continue;
            };
            for &slot in slots {
                if self.positions[slot].iter().all(|&p| p < tuple.len()) {
                    let key: Vec<ConstId> =
                        self.positions[slot].iter().map(|&p| tuple[p]).collect();
                    self.maps[slot].entry(key).or_default().push(i);
                }
            }
        }
        self.idb_upto = gp.idb_facts.len();
    }
}

/// Ground `program` against `db`. Fails if the grounding would exceed
/// `max_rules` grounded rules (pass `usize::MAX` for no limit).
pub fn ground_with_limit(
    program: &Program,
    db: &Database,
    max_rules: usize,
) -> Result<GroundedProgram, Error> {
    program.validate()?;
    let idbs = program.idbs();

    // Resolve program constants into the database's domain; a rule whose
    // constant is outside the active domain can never fire.
    let const_map: Vec<Option<ConstId>> = (0..program.consts.len() as u32)
        .map(|c| db.consts.get(program.consts.name(c)))
        .collect();

    let mut slots = SlotInterner::default();
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .map(|r| plan_rule(r, &idbs, &const_map, &mut slots))
        .collect();
    let mut indices = JoinIndices::build(&slots, db);

    // Phase 1: derivable IDB facts (semi-naive Boolean fixpoint). Round 0
    // fires every rule against the empty IDB relation (only all-EDB bodies
    // can match); round r > 0 re-fires a rule once per IDB body position,
    // constrained to take a fact from round r-1's delta frontier there.
    let mut gp = GroundedProgram::default();
    let mut delta_start = 0usize;
    let mut first_round = true;
    loop {
        let mut new_facts: Vec<(PredId, Vec<ConstId>)> = Vec::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            let plan = &plans[ri];
            if plan.dead {
                continue;
            }
            let mut derive = |bindings: &HashMap<VarSym, ConstId>, _: &[BodyMatch]| {
                let head = instantiate(&rule.head, bindings, &const_map)
                    .expect("head vars bound by safety; dead rules skipped");
                if gp.fact(rule.head.pred, &head).is_none() {
                    new_facts.push((rule.head.pred, head));
                }
            };
            let matcher = Matcher {
                db,
                gp: &gp,
                const_map: &const_map,
                rule,
                plan,
                idbs: &idbs,
                indices: &indices,
            };
            if first_round {
                matcher.enumerate(None, &mut derive);
            } else {
                for &dpos in &plan.idb_positions {
                    matcher.enumerate(Some((dpos, delta_start)), &mut derive);
                }
            }
        }
        delta_start = gp.idb_facts.len();
        let mut changed = false;
        for (pred, tuple) in new_facts {
            changed |= gp.push_fact(pred, tuple).is_some();
        }
        if !changed {
            break;
        }
        indices.extend_idb(&gp);
        first_round = false;
    }

    // Phase 2: enumerate all groundings against the completed fact set,
    // through the same indices (no delta constraint).
    let mut rules: Vec<GroundedRule> = Vec::new();
    for (rule_index, rule) in program.rules.iter().enumerate() {
        let plan = &plans[rule_index];
        if plan.dead {
            continue;
        }
        let mut overflow = false;
        let mut ground_rule = |bindings: &HashMap<VarSym, ConstId>, matches: &[BodyMatch]| {
            if overflow {
                return;
            }
            if rules.len() >= max_rules {
                overflow = true;
                return;
            }
            let head_tuple = instantiate(&rule.head, bindings, &const_map)
                .expect("head vars bound by safety; dead rules skipped");
            let head = gp
                .fact(rule.head.pred, &head_tuple)
                .expect("head derivable at fixpoint");
            let mut body_idb = Vec::new();
            let mut body_edb = Vec::new();
            for m in matches {
                match *m {
                    BodyMatch::Idb(i) => body_idb.push(i),
                    BodyMatch::Edb(f) => body_edb.push(f),
                }
            }
            rules.push(GroundedRule {
                rule_index,
                head,
                body_idb,
                body_edb,
            });
        };
        Matcher {
            db,
            gp: &gp,
            const_map: &const_map,
            rule,
            plan,
            idbs: &idbs,
            indices: &indices,
        }
        .enumerate(None, &mut ground_rule);
        if overflow {
            return Err(Error::GroundingLimit { max_rules });
        }
    }

    gp.rules_by_head = vec![Vec::new(); gp.idb_facts.len()];
    for (i, r) in rules.iter().enumerate() {
        gp.rules_by_head[r.head].push(i);
    }
    gp.rules = rules;
    Ok(gp)
}

/// Ground without a rule limit.
pub fn ground(program: &Program, db: &Database) -> Result<GroundedProgram, Error> {
    ground_with_limit(program, db, usize::MAX)
}

/// Callback invoked for every satisfying assignment of a rule body.
type OnMatch<'a> = dyn FnMut(&HashMap<VarSym, ConstId>, &[BodyMatch]) + 'a;

/// One rule's indexed join over EDB ∪ derivable-IDB.
struct Matcher<'a> {
    db: &'a Database,
    gp: &'a GroundedProgram,
    const_map: &'a [Option<ConstId>],
    rule: &'a Rule,
    plan: &'a RulePlan,
    idbs: &'a HashSet<PredId>,
    indices: &'a JoinIndices,
}

impl Matcher<'_> {
    /// Enumerate all substitutions satisfying the rule's body, invoking
    /// `on_match(bindings, per-atom matches)`. With `delta = Some((pos,
    /// start))`, the IDB atom at body position `pos` only matches facts
    /// with index `≥ start` — the semi-naive frontier constraint.
    fn enumerate(&self, delta: Option<(usize, usize)>, on_match: &mut OnMatch<'_>) {
        let mut bindings: HashMap<VarSym, ConstId> = HashMap::new();
        let mut matches: Vec<BodyMatch> = Vec::with_capacity(self.rule.body.len());
        self.recurse(0, delta, &mut bindings, &mut matches, on_match);
    }

    fn recurse(
        &self,
        pos: usize,
        delta: Option<(usize, usize)>,
        bindings: &mut HashMap<VarSym, ConstId>,
        matches: &mut Vec<BodyMatch>,
        on_match: &mut OnMatch<'_>,
    ) {
        if pos == self.rule.body.len() {
            on_match(bindings, matches);
            return;
        }
        let atom = &self.rule.body[pos];
        // Probe key: current bindings projected onto the pre-bound
        // positions of this atom (constants resolved statically).
        let key: Vec<ConstId> = self.plan.bound[pos]
            .iter()
            .map(|&p| match &atom.terms[p] {
                Term::Const(c) => self.const_map[*c as usize].expect("dead rules are skipped"),
                Term::Var(v) => bindings[v],
            })
            .collect();
        let Some(candidates) = self.indices.maps[self.plan.slot[pos]].get(&key) else {
            return;
        };
        let is_idb = self.idbs.contains(&atom.pred);
        // Frontier constraint: buckets are ascending, so the frontier facts
        // form a suffix whose start a binary search finds. The delta
        // position takes the suffix; *earlier* IDB positions take the
        // prefix (pre-frontier facts only), so a binding with several
        // frontier facts is enumerated exactly once — when `dpos` is its
        // first frontier position. Later positions stay unrestricted.
        let (from, to) = match delta {
            Some((dpos, start)) if dpos == pos => {
                (candidates.partition_point(|&i| i < start), candidates.len())
            }
            Some((dpos, start)) if pos < dpos && is_idb => {
                (0, candidates.partition_point(|&i| i < start))
            }
            _ => (0, candidates.len()),
        };
        for &c in &candidates[from..to] {
            if is_idb {
                let tuple = &self.gp.idb_facts[c].1;
                self.try_match(
                    pos,
                    delta,
                    tuple,
                    BodyMatch::Idb(c),
                    bindings,
                    matches,
                    on_match,
                );
            } else {
                let fid = c as FactId;
                let tuple = self.db.fact(fid).1;
                self.try_match(
                    pos,
                    delta,
                    tuple,
                    BodyMatch::Edb(fid),
                    bindings,
                    matches,
                    on_match,
                );
            }
        }
    }

    /// Check the residual positions the index could not pre-filter
    /// (fresh variables, within-atom repeats), bind them, and descend.
    #[allow(clippy::too_many_arguments)]
    fn try_match(
        &self,
        pos: usize,
        delta: Option<(usize, usize)>,
        tuple: &[ConstId],
        matched: BodyMatch,
        bindings: &mut HashMap<VarSym, ConstId>,
        matches: &mut Vec<BodyMatch>,
        on_match: &mut OnMatch<'_>,
    ) {
        let atom = &self.rule.body[pos];
        if tuple.len() != atom.terms.len() {
            return;
        }
        let mut newly_bound: Vec<VarSym> = Vec::new();
        let mut ok = true;
        for (term, &value) in atom.terms.iter().zip(tuple) {
            match term {
                Term::Const(c) => {
                    if self.const_map[*c as usize] != Some(value) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(&bound) if bound != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        bindings.insert(*v, value);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if ok {
            matches.push(matched);
            self.recurse(pos + 1, delta, bindings, matches, on_match);
            matches.pop();
        }
        for v in newly_bound {
            bindings.remove(&v);
        }
    }
}

fn instantiate(
    atom: &Atom,
    bindings: &HashMap<VarSym, ConstId>,
    const_map: &[Option<ConstId>],
) -> Option<Vec<ConstId>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => bindings.get(v).copied(),
            Term::Const(c) => const_map[*c as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use graphgen::generators;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn tc_on_path_derives_all_ordered_pairs() {
        let mut p = tc();
        let g = generators::path(4, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // 5 nodes: pairs (i,j) with i<j → 10 facts.
        assert_eq!(gp.num_idb_facts(), 10);
        let t = p.preds.get("T").unwrap();
        let c = |i: usize| db.node_const(i).unwrap();
        assert!(gp.fact(t, &[c(0), c(4)]).is_some());
        assert!(gp.fact(t, &[c(2), c(1)]).is_none());
    }

    #[test]
    fn grounded_rule_counts_on_path() {
        let mut p = tc();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        // Initialization: one per edge (3). Recursive T(x,z),E(z,y): for
        // each derivable T(x,z) and edge (z,y): T(0,1)E(1,2), T(0,1)..no..
        // count: pairs (T(i,j), edge (j,k)) with i<j<k? T facts: (0,1),(0,2),
        // (0,3),(1,2),(1,3),(2,3). Edges: (0,1),(1,2),(2,3).
        // Joins: T(i,j) with edge (j,j+1): (0,1)+(1,2); (0,2)+(2,3);
        // (1,2)+(2,3) → 3 groundings.
        let init = gp.rules.iter().filter(|r| r.rule_index == 0).count();
        let rec = gp.rules.iter().filter(|r| r.rule_index == 1).count();
        assert_eq!(init, 3);
        assert_eq!(rec, 3);
        // Every grounded rule's head is a derivable fact with that rule in
        // its head index.
        for (i, r) in gp.rules.iter().enumerate() {
            assert!(gp.rules_by_head[r.head].contains(&i));
        }
    }

    #[test]
    fn cycle_derives_all_pairs() {
        let mut p = tc();
        let g = generators::cycle(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 9); // all ordered pairs incl. self
    }

    #[test]
    fn constants_in_rules_bind() {
        let mut p = parse_program("R(Y) :- E(v0, Y).\nR(Y) :- R(Z), E(Z,Y).").unwrap();
        let g = generators::path(3, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let r = p.preds.get("R").unwrap();
        // Reachable from v0 by ≥1 edges: v1, v2, v3.
        assert_eq!(gp.facts_of(r).len(), 3);
    }

    #[test]
    fn unknown_constants_never_fire() {
        let mut p = parse_program("R(Y) :- E(nosuch, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
    }

    #[test]
    fn unknown_constants_in_heads_never_fire() {
        // A head constant outside the active domain: the rule is dead (it
        // could only derive a fact outside the domain) instead of a panic.
        let mut p = parse_program("R(nosuch) :- E(X, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert_eq!(gp.num_idb_facts(), 0);
        assert!(gp.rules.is_empty());
    }

    #[test]
    fn limit_is_enforced() {
        let mut p = tc();
        let g = generators::complete(6, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        assert!(ground_with_limit(&p, &db, 10).is_err());
        assert!(ground(&p, &db).is_ok());
    }

    #[test]
    fn monadic_program_grounds() {
        // Paper Example 2.1's second program: reachable-from-A.
        let mut p = parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").unwrap();
        let g = generators::path(3, "E");
        let (mut db, _) = Database::from_graph(&mut p, &g);
        // A holds at v3; U(x) reaches backwards along edges (x,y) with U(y).
        let a = p.preds.get("A").unwrap();
        let v3 = db.node_const(3).unwrap();
        db.insert(a, vec![v3]);
        let gp = ground(&p, &db).unwrap();
        let u = p.preds.get("U").unwrap();
        assert_eq!(gp.facts_of(u).len(), 4); // v3, v2, v1, v0
    }

    #[test]
    fn facts_by_pred_index_is_coherent() {
        let mut p = tc();
        let g = generators::gnm(7, 18, &["E"], 3);
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let t = p.preds.get("T").unwrap();
        // The per-predicate index is exactly the filter-scan it replaced.
        let scanned: Vec<usize> = gp
            .idb_facts
            .iter()
            .enumerate()
            .filter_map(|(i, (pred, _))| (*pred == t).then_some(i))
            .collect();
        assert_eq!(gp.facts_of(t), &scanned[..]);
        assert_eq!(gp.facts_of(t).len(), gp.num_idb_facts());
    }

    #[test]
    fn nonlinear_rules_ground_like_linear_tc() {
        // Nonlinear TC has two IDB body atoms: every semi-naive round
        // exercises the pre-frontier restriction at positions before the
        // delta position. Derivable facts must match linear TC exactly.
        let mut nl = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), T(Z,Y).").unwrap();
        let mut lin = tc();
        for seed in 0..4u64 {
            let g = generators::gnm(8, 18, &["E"], seed);
            let (db_nl, _) = Database::from_graph(&mut nl, &g);
            let gp_nl = ground(&nl, &db_nl).unwrap();
            let (db_lin, _) = Database::from_graph(&mut lin, &g);
            let gp_lin = ground(&lin, &db_lin).unwrap();
            assert_eq!(gp_nl.num_idb_facts(), gp_lin.num_idb_facts(), "seed={seed}");
            let t = lin.preds.get("T").unwrap();
            for (pred, tuple) in &gp_lin.idb_facts {
                if *pred == t {
                    let names: Vec<&str> = tuple.iter().map(|&c| db_lin.consts.name(c)).collect();
                    let mapped: Vec<ConstId> = names
                        .iter()
                        .map(|n| db_nl.consts.get(n).expect("shared domain"))
                        .collect();
                    let t_nl = nl.preds.get("T").unwrap();
                    assert!(
                        gp_nl.fact(t_nl, &mapped).is_some(),
                        "missing {names:?} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn seminaive_grounding_matches_reachability_on_random_graphs() {
        // The delta-frontier fixpoint must derive exactly the BFS-reachable
        // pairs (≥ 1 edge) on arbitrary graphs, cycles included.
        let mut p = tc();
        for seed in 0..5u64 {
            let g = generators::gnm(9, 22, &["E"], seed);
            let (db, _) = Database::from_graph(&mut p, &g);
            let gp = ground(&p, &db).unwrap();
            let t = p.preds.get("T").unwrap();
            let mut expected = 0usize;
            for u in 0..g.num_nodes() {
                let mut reach = vec![false; g.num_nodes()];
                for &(eu, ev, _) in g.edges() {
                    if eu as usize == u {
                        for (w, r) in g.reachable_from(ev).iter().enumerate() {
                            reach[w] |= r;
                        }
                        reach[ev as usize] = true;
                    }
                }
                for (v, reachable) in reach.iter().enumerate() {
                    if *reachable {
                        expected += 1;
                        let key = [db.node_const(u).unwrap(), db.node_const(v).unwrap()];
                        assert!(gp.fact(t, &key).is_some(), "missing T({u},{v}) seed={seed}");
                    }
                }
            }
            assert_eq!(gp.facts_of(t).len(), expected, "seed={seed}");
        }
    }
}
