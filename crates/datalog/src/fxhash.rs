//! A fast, non-cryptographic hasher for the grounding data structures.
//!
//! The grounding join probes its hash indices once per candidate body
//! atom and interns every derivable fact — tens of millions of lookups on
//! large instances, all keyed by tiny `u32` tuples produced internally
//! (never by untrusted input). The standard library's SipHash pays for
//! DoS resistance these keys don't need; this is the usual `rustc`-style
//! multiply-rotate hash, word-at-a-time, which benchmarks several times
//! faster on 1–3 element keys and is the difference between the hash
//! probes and the joins themselves dominating the grounding profile.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the [`FxHasher`] — for internal maps with small,
/// trusted keys on hot paths.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// [`BuildHasherDefault`] over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher: each input word is folded into the state with
/// a rotate, xor, and odd-constant multiply. Not collision-resistant
/// against adversarial keys — only for internal interning.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_tuples_hash_apart() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |v: &[u32]| b.hash_one(v);
        // Not a collision-resistance proof — just a smoke check that the
        // word folding distinguishes order, length, and value.
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[1]), h(&[1, 0]));
        assert_ne!(h(&[0]), h(&[1]));
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![3, 4], 7);
        assert_eq!(m.get([3, 4].as_slice()), Some(&7));
        assert_eq!(m.get([4, 3].as_slice()), None);
    }
}
