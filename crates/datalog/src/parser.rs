//! Textual Datalog syntax.
//!
//! ```text
//! @target T          # optional; defaults to the head of the first rule
//! T(X,Y) :- E(X,Y).
//! T(X,Y) :- T(X,Z), E(Z,Y).
//! U(X)   :- A(X).
//! U(X)   :- U(Y), E(X,Y).
//! R(Y)   :- P(s,Y).  # lowercase arguments are constants
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! everything else in argument position is a constant.

use provcirc_error::Error;

use crate::ast::{Atom, Program, Rule, Term};

/// Parse a program. See the module docs for the syntax.
pub fn parse_program(text: &str) -> Result<Program, Error> {
    let mut target_directive: Option<String> = None;
    let mut rule_sources: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@target") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(Error::parse_at(
                    "program",
                    lineno + 1,
                    "@target needs a predicate",
                ));
            }
            target_directive = Some(name.to_owned());
            continue;
        }
        rule_sources.push(line.to_owned());
    }
    // Rules may span lines until the terminating '.'; re-join and re-split.
    let joined = rule_sources.join(" ");
    let rule_texts: Vec<&str> = joined
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if rule_texts.is_empty() {
        return Err(Error::parse("program", "no rules"));
    }

    // Peek the first head name for the default target.
    let first_head = rule_texts[0]
        .split(&[':', '('][..])
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| Error::parse("program", "cannot determine first head"))?;
    let mut program = Program::new(target_directive.as_deref().unwrap_or(first_head));

    for src in rule_texts {
        let (head_src, body_src) = src
            .split_once(":-")
            .ok_or_else(|| Error::parse("program", format!("rule '{src}': missing ':-'")))?;
        let head = parse_atom(&mut program, head_src.trim())?;
        let mut body = Vec::new();
        for atom_src in split_atoms(body_src)? {
            body.push(parse_atom(&mut program, &atom_src)?);
        }
        if body.is_empty() {
            return Err(Error::parse("program", format!("rule '{src}': empty body")));
        }
        program.rules.push(Rule { head, body });
    }
    Ok(program)
}

/// Split `P(a,b), Q(c)` into atom sources, respecting parentheses.
fn split_atoms(src: &str) -> Result<Vec<String>, Error> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| Error::parse("program", "unbalanced ')'"))?;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return Err(Error::parse("program", "unbalanced '('"));
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    Ok(out)
}

fn parse_atom(program: &mut Program, src: &str) -> Result<Atom, Error> {
    let (name, rest) = src
        .split_once('(')
        .ok_or_else(|| Error::parse("program", format!("atom '{src}': missing '('")))?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(Error::parse(
            "program",
            format!("atom '{src}': bad predicate name"),
        ));
    }
    let rest = rest.trim();
    let args_src = rest
        .strip_suffix(')')
        .ok_or_else(|| Error::parse("program", format!("atom '{src}': missing ')'")))?;
    let pred = program.preds.intern(name);
    let mut terms = Vec::new();
    for arg in args_src.split(',') {
        let arg = arg.trim();
        if arg.is_empty() {
            return Err(Error::parse(
                "program",
                format!("atom '{src}': empty argument"),
            ));
        }
        if !arg.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(Error::parse(
                "program",
                format!("atom '{src}': bad argument '{arg}'"),
            ));
        }
        let first = arg.chars().next().expect("nonempty");
        if first.is_uppercase() || first == '_' {
            terms.push(Term::Var(program.vars.intern(arg)));
        } else {
            terms.push(Term::Const(program.consts.intern(arg)));
        }
    }
    Ok(Atom { pred, terms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tc() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body.len(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn target_directive_overrides_first_head() {
        let p = parse_program("@target U\nT(X,Y) :- E(X,Y).\nU(X) :- T(X,X).").unwrap();
        assert_eq!(p.preds.name(p.target), "U");
    }

    #[test]
    fn constants_are_lowercase() {
        let p = parse_program("R(Y) :- P(s, Y).").unwrap();
        match p.rules[0].body[0].terms[0] {
            Term::Const(c) => assert_eq!(p.consts.name(c), "s"),
            _ => panic!("expected constant"),
        }
        match p.rules[0].body[0].terms[1] {
            Term::Var(v) => assert_eq!(p.vars.name(v), "Y"),
            _ => panic!("expected variable"),
        }
    }

    #[test]
    fn multiline_rules_and_comments() {
        let p = parse_program(
            "# transitive closure\nT(X,Y) :-\n  E(X,Y).\nT(X,Y) :- T(X,Z),\n  E(Z,Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn error_on_missing_implication() {
        assert!(parse_program("T(X,Y).").is_err());
    }

    #[test]
    fn error_on_unbalanced_parens() {
        assert!(parse_program("T(X,Y) :- E(X,Y.").is_err());
    }

    #[test]
    fn display_round_trip() {
        let src = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p.rules.len(), p2.rules.len());
        assert_eq!(p.to_string(), p2.to_string());
    }
}
