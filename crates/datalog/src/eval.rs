//! Fixpoint evaluation of grounded programs over semirings (paper §2.3):
//! naive and semi-naive.
//!
//! The immediate consequence operator maps each IDB fact to the ⊕-sum over
//! its grounded rules of the ⊗-product of the rule's body values. [`naive_eval`]
//! iterates it from all-0; on a p-stable semiring it converges, and
//! the number of iterations is the *boundedness* probe of §4 (a bounded
//! program converges in O(1) iterations on every input).
//!
//! [`semi_naive_eval`] reaches the same fixpoint *differentially*: it keeps
//! a frontier of grounded rules whose body values changed last round and
//! re-fires only those, accumulating each rule's fresh contribution into its
//! head with `⊕` instead of recomputing every head's full sum. Accumulation
//! is sound exactly when `⊕` is idempotent ([`Semiring::ADD_IDEMPOTENT`]):
//! a stale contribution `x` computed from earlier (smaller) body values is
//! dominated by the final one `y`, so `x ⊕ y = y` and it never inflates the
//! result. For non-idempotent semirings (e.g. [`semiring::Counting`], where
//! re-added contributions would double-count proof trees) it transparently
//! falls back to [`naive_eval`]. [`EvalStrategy`] names the choice; the
//! `Engine` facade defaults to [`EvalStrategy::SemiNaive`]. The outcome's
//! [`EvalOutcome::strategy`] records which algorithm actually ran.
//!
//! Every stage also has an **owner-sharded parallel** variant
//! ([`par_ico`], [`par_naive_eval`], [`par_semi_naive_eval`], dispatched
//! by [`par_eval_with_strategy`]): grounded rules are embarrassingly
//! rule-parallel — each rule's ⊗-product is independent and head
//! contributions combine with `⊕` — so producer chunks route `(head,
//! contribution)` pairs through per-owner mailboxes
//! ([`crate::par::owner_of`] partitions heads by a fixed hash), and each
//! owner ⊕-folds a disjoint slice of heads in the deterministic chunk
//! order. There is no ⊕-merge step and no cross-worker write; the only
//! sequential residue is scattering the drained slices back into the
//! value vector ([`Counter::EvalDrainNanos`]). Work stealing over the
//! producer chunks keeps uneven frontiers from serializing rounds.
//! `threads <= 1` is always the exact sequential code path; the `Engine`
//! facade's `parallelism` knob picks the count.

use semiring::valuation::{AllOnes, Valuation, VarTags};
use semiring::{Semiring, Sorp};

use telemetry::{Counter, Recorder, RoundStats, Stage, NOOP};

use crate::ground::GroundedProgram;

/// Result of a fixpoint evaluation.
#[derive(Clone, Debug)]
pub struct EvalOutcome<S> {
    /// Value per IDB fact (aligned with [`GroundedProgram::idb_facts`]).
    pub values: Vec<S>,
    /// A *strategy-relative* progress count: naive reports ICO
    /// applications (the §4 boundedness probe); semi-naive reports
    /// **equivalent full passes** — [`rule_firings`] over the number of
    /// grounded rules, rounded up. The two are NOT comparable across
    /// strategies; compare [`rule_firings`] instead.
    ///
    /// [`rule_firings`]: EvalOutcome::rule_firings
    pub iterations: usize,
    /// Raw number of grounded-rule firings performed — the
    /// strategy-independent work measure. Naive fires every grounded rule
    /// once per ICO application (`iterations × #rules`); semi-naive fires
    /// only frontier rules, so the ratio of the two counts is exactly the
    /// work its delta propagation saved.
    pub rule_firings: usize,
    /// Whether a fixpoint was reached within the iteration budget.
    pub converged: bool,
    /// The algorithm that **actually ran**. A [`EvalStrategy::SemiNaive`]
    /// request on a non-⊕-idempotent semiring falls back to naive; this
    /// field records the fallback so callers can observe it instead of
    /// trusting the requested strategy.
    pub strategy: EvalStrategy,
}

/// One application of the immediate consequence operator.
pub fn ico<S, V>(gp: &GroundedProgram, assign: &V, current: &[S]) -> Vec<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    let mut next = vec![S::zero(); current.len()];
    for rule in &gp.rules {
        let mut prod = S::one();
        for &i in &rule.body_idb {
            prod.mul_assign(&current[i]);
        }
        for &f in &rule.body_edb {
            prod.mul_assign(&assign.value(f));
        }
        next[rule.head].add_assign(&prod);
    }
    next
}

/// One application of the immediate consequence operator, owner-sharded
/// across `threads` scoped threads.
///
/// The grounded rules are partitioned into contiguous chunks (work-stolen
/// across workers); each chunk computes its rules' products **in rule
/// order** and deposits every `(head, product)` pair — zeros included —
/// into the mailbox of the head's owner ([`crate::par::owner_of`]). Each
/// owner then folds its disjoint head slice from `0` in chunk order:
/// chunk-ascending + in-chunk-ascending *is* rule creation order, and
/// distinct heads are independent accumulator slots, so every head
/// replays the exact `add_assign` sequence of [`ico`] and the result is bit-identical
/// on *every* semiring — idempotence is not required, and there is no
/// ⊕-merge step. With `threads <= 1` this *is* [`ico`].
pub fn par_ico<S, V>(gp: &GroundedProgram, assign: &V, current: &[S], threads: usize) -> Vec<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    par_ico_recorded(gp, assign, current, threads, &NOOP, Stage::Eval)
}

/// [`par_ico`] reporting into a telemetry [`Recorder`]: per-worker busy
/// time, steal counts, and mailbox volume from the producer chunks; head
/// accumulators produced from the owner drains; plus the sequential
/// transpose/scatter time ([`Counter::EvalDrainNanos`]). `stage` tags the
/// shard samples (the `Engine` facade attributes its provenance fixpoint
/// to [`Stage::Provenance`], everything else to [`Stage::Eval`]).
/// Disabled recorders take the un-instrumented path bit-identically.
pub fn par_ico_recorded<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    current: &[S],
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
) -> Vec<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    let num_rules = gp.rules.len();
    if threads <= 1 || num_rules < 2 {
        return ico(gp, assign, current);
    }
    let owners = threads;
    let chunks = crate::par::chunk_bounds(num_rules, threads);
    let chunks_ref = &chunks;
    let mail: Vec<Vec<Vec<(u32, S)>>> = crate::par::run_indexed_stats(
        chunks.len(),
        threads,
        rec,
        stage,
        |buckets: &Vec<Vec<(u32, S)>>| {
            let pairs: u64 = buckets.iter().map(|b| b.len() as u64).sum();
            (pairs, pairs)
        },
        |c| {
            let (lo, hi) = chunks_ref[c];
            let mut buckets: Vec<Vec<(u32, S)>> = (0..owners).map(|_| Vec::new()).collect();
            for rule in &gp.rules[lo..hi] {
                let mut prod = S::one();
                for &i in &rule.body_idb {
                    prod.mul_assign(&current[i]);
                }
                for &f in &rule.body_edb {
                    prod.mul_assign(&assign.value(f));
                }
                // Zero products are deposited too: the owner's fold then
                // replays the sequential per-head `add_assign` sequence
                // exactly, with no appeal to `x ⊕ 0 = x` being bitwise.
                let head = rule.head as u32;
                buckets[crate::par::owner_of(head, owners)].push((head, prod));
            }
            buckets
        },
    );
    let drained = drain_owner_mailboxes(
        mail,
        current.len(),
        owners,
        threads,
        rec,
        stage,
        |acc: &mut S, prod| {
            acc.add_assign(prod);
            true
        },
    );
    let scatter_start = rec.enabled().then(std::time::Instant::now);
    let mut next = vec![S::zero(); current.len()];
    for out in drained {
        for (h, v, _) in out {
            next[h as usize] = v;
        }
    }
    if let Some(t) = scatter_start {
        rec.counter(Counter::EvalDrainNanos, t.elapsed().as_nanos() as u64);
    }
    next
}

/// Drain per-(chunk, owner) mailboxes: transpose the producer chunks'
/// buckets into per-owner columns (chunk order preserved — sequential
/// contribution order), then fold each owner's disjoint head slice in
/// parallel. Each mailbox has one producer (the worker that executed the
/// chunk) and one consumer (the owner task), so no ⊕ runs outside the
/// owner drains. `apply(acc, prod)` folds one contribution, starting from
/// `seed(head)`; it returns whether the accumulator strictly changed, and
/// the drain output `(head, final, changed)` ORs those per head. Heads
/// are ascending within each owner's output.
fn drain_owner_mailboxes<S, A>(
    mail: Vec<Vec<Vec<(u32, S)>>>,
    num_heads: usize,
    owners: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    apply: A,
) -> Vec<Vec<(u32, S, bool)>>
where
    S: Semiring,
    A: Fn(&mut S, &S) -> bool + Sync,
{
    drain_owner_mailboxes_seeded(
        mail,
        num_heads,
        owners,
        threads,
        rec,
        stage,
        |_| S::zero(),
        apply,
    )
}

/// [`drain_owner_mailboxes`] with a per-head seed (the semi-naive drain
/// seeds each head with its pre-round value; the ICO drain with `0`).
#[allow(clippy::too_many_arguments)]
fn drain_owner_mailboxes_seeded<S, D, A>(
    mail: Vec<Vec<Vec<(u32, S)>>>,
    num_heads: usize,
    owners: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    seed: D,
    apply: A,
) -> Vec<Vec<(u32, S, bool)>>
where
    S: Semiring,
    D: Fn(u32) -> S + Sync,
    A: Fn(&mut S, &S) -> bool + Sync,
{
    let transpose_start = rec.enabled().then(std::time::Instant::now);
    let mut owner_mail: Vec<Vec<Vec<(u32, S)>>> = (0..owners)
        .map(|_| Vec::with_capacity(mail.len()))
        .collect();
    for chunk in mail {
        for (o, bucket) in chunk.into_iter().enumerate() {
            owner_mail[o].push(bucket);
        }
    }
    if let Some(t) = transpose_start {
        rec.counter(Counter::EvalDrainNanos, t.elapsed().as_nanos() as u64);
    }
    let owner_mail_ref = &owner_mail;
    let (seed, apply) = (&seed, &apply);
    crate::par::run_indexed_stats(
        owners,
        threads,
        rec,
        stage,
        |out: &Vec<(u32, S, bool)>| (out.len() as u64, 0),
        move |o| {
            // Chunk-ascending + in-chunk order is the sequential
            // contribution order, and distinct heads are disjoint
            // accumulator slots, so folding the flattened stream in that
            // order replays the sequential ⊕ sequence per head exactly —
            // no sort over the pair volume. A dense first-seen index
            // keeps the per-pair cost at one array probe; only the
            // distinct heads are sorted, to keep the output ascending.
            let mut index: Vec<u32> = vec![u32::MAX; num_heads];
            let mut out: Vec<(u32, S, bool)> = Vec::new();
            for (h, prod) in owner_mail_ref[o].iter().flatten() {
                let slot = index[*h as usize];
                let entry = if slot == u32::MAX {
                    index[*h as usize] = out.len() as u32;
                    out.push((*h, seed(*h), false));
                    out.last_mut().expect("entry just pushed")
                } else {
                    &mut out[slot as usize]
                };
                entry.2 |= apply(&mut entry.1, prod);
            }
            out.sort_unstable_by_key(|e| e.0);
            out
        },
    )
}

/// The naive round loop shared by the sequential and sharded entry
/// points: iterate `step` (one ICO application) from all-0 until a
/// fixpoint or `max_iters` rounds.
fn naive_driver<S, F>(gp: &GroundedProgram, max_iters: usize, step: F) -> EvalOutcome<S>
where
    S: Semiring,
    F: FnMut(&[S]) -> Vec<S>,
{
    naive_driver_recorded(gp, max_iters, &NOOP, Stage::Eval, step)
}

/// [`naive_driver`] reporting into `rec`: one [`RoundStats`] per ICO
/// application (frontier = every grounded rule; `delta` = heads whose
/// value strictly changed) and the [`Counter::RuleFirings`] total. With a
/// disabled recorder the convergence test keeps its short-circuit form
/// and nothing else runs.
fn naive_driver_recorded<S, F>(
    gp: &GroundedProgram,
    max_iters: usize,
    rec: &dyn Recorder,
    stage: Stage,
    mut step: F,
) -> EvalOutcome<S>
where
    S: Semiring,
    F: FnMut(&[S]) -> Vec<S>,
{
    let enabled = rec.enabled();
    let num_rules = gp.rules.len();
    let mut values = vec![S::zero(); gp.num_idb_facts()];
    // With no grounded rules the ICO is constantly 0: the all-zero vector
    // is already the fixpoint, whatever the budget — even a zero budget
    // (it used to report `converged: false` for `max_iters == 0`).
    if gp.rules.is_empty() {
        return EvalOutcome {
            values,
            iterations: 0,
            rule_firings: 0,
            converged: true,
            strategy: EvalStrategy::Naive,
        };
    }
    for iter in 0..max_iters {
        let next = step(&values);
        let converged = if enabled {
            let changed = next
                .iter()
                .zip(values.iter())
                .filter(|(a, b)| !a.sr_eq(b))
                .count() as u64;
            rec.counter(Counter::RuleFirings, num_rules as u64);
            rec.round(
                stage,
                RoundStats {
                    round: iter as u64,
                    frontier: num_rules as u64,
                    delta: changed,
                    probes: 0,
                    firings: num_rules as u64,
                    worklist: if changed == 0 { 0 } else { num_rules as u64 },
                },
            );
            changed == 0
        } else {
            next.iter().zip(values.iter()).all(|(a, b)| a.sr_eq(b))
        };
        values = next;
        if converged {
            return EvalOutcome {
                values,
                iterations: iter + 1,
                rule_firings: (iter + 1) * num_rules,
                converged: true,
                strategy: EvalStrategy::Naive,
            };
        }
    }
    EvalOutcome {
        values,
        iterations: max_iters,
        rule_firings: max_iters.saturating_mul(num_rules),
        converged: false,
        strategy: EvalStrategy::Naive,
    }
}

/// Naive evaluation: iterate the ICO from all-0 until a fixpoint or
/// `max_iters` rounds.
pub fn naive_eval<S, V>(gp: &GroundedProgram, assign: &V, max_iters: usize) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    naive_driver(gp, max_iters, |current| ico(gp, assign, current))
}

/// [`naive_eval`] with each round's ICO sharded across `threads` threads
/// ([`par_ico`]).
///
/// Exactly the same rounds, convergence test, and therefore the same
/// [`EvalOutcome`] — values, `iterations`, and `converged` are identical to
/// the sequential run for every semiring (see [`par_ico`] for why). With
/// `threads <= 1` no thread is spawned and this is [`naive_eval`].
pub fn par_naive_eval<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    par_naive_eval_recorded(gp, assign, max_iters, threads, &NOOP, Stage::Eval)
}

/// [`par_naive_eval`] reporting into a telemetry [`Recorder`]: per-round
/// series from the driver, per-shard stats and merge time from each
/// round's [`par_ico_recorded`]. `stage` tags the samples (the `Engine`
/// facade uses [`Stage::Provenance`] for its provenance fixpoint).
pub fn par_naive_eval_recorded<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    naive_driver_recorded(gp, max_iters, rec, stage, |current| {
        par_ico_recorded(gp, assign, current, threads, rec, stage)
    })
}

/// Which fixpoint algorithm [`eval_with_strategy`] runs.
///
/// The two strategies compute identical values whenever both converge
/// (semi-naive falls back to naive where its delta propagation would be
/// unsound), but their `EvalOutcome::iterations` counters measure
/// different things: naive counts applications of the full immediate
/// consequence operator — the §4 boundedness probe — while semi-naive
/// counts frontier rounds, which can be fewer. Probes that *interpret*
/// the iteration count (boundedness, the Theorem 4.3 layering) must use
/// [`Naive`](EvalStrategy::Naive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalStrategy {
    /// The Jacobi-style naive fixpoint: every round re-fires every
    /// grounded rule against the previous round's values.
    Naive,
    /// Delta-driven evaluation: each round re-fires only the grounded
    /// rules whose body values changed, accumulating contributions with
    /// `⊕`. Sound on `⊕`-idempotent semirings
    /// ([`Semiring::ADD_IDEMPOTENT`]); silently equals `Naive` otherwise.
    #[default]
    SemiNaive,
}

/// Evaluate under the given [`EvalStrategy`] — the single dispatch point
/// the `Engine` facade routes through.
pub fn eval_with_strategy<S, V>(
    strategy: EvalStrategy,
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    match strategy {
        EvalStrategy::Naive => naive_eval(gp, assign, max_iters),
        EvalStrategy::SemiNaive => semi_naive_eval(gp, assign, max_iters),
    }
}

/// [`eval_with_strategy`] with the work of each round sharded across
/// `threads` scoped threads — the dispatch point the `Engine` facade's
/// `parallelism` knob routes through.
///
/// `threads <= 1` runs the exact sequential code path (no thread is
/// spawned). The returned [`EvalOutcome::strategy`] records the algorithm
/// that actually ran, so the semi-naive → naive fallback on
/// non-⊕-idempotent semirings stays observable.
pub fn par_eval_with_strategy<S, V>(
    strategy: EvalStrategy,
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    par_eval_with_strategy_recorded(strategy, gp, assign, max_iters, threads, &NOOP, Stage::Eval)
}

/// [`par_eval_with_strategy`] reporting into a telemetry [`Recorder`] —
/// the dispatch point `Engine` routes its instrumented evaluations
/// through. `stage` tags the per-round/per-shard samples, letting the
/// caller attribute a run to [`Stage::Eval`] or [`Stage::Provenance`].
pub fn par_eval_with_strategy_recorded<S, V>(
    strategy: EvalStrategy,
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    match strategy {
        EvalStrategy::Naive => par_naive_eval_recorded(gp, assign, max_iters, threads, rec, stage),
        EvalStrategy::SemiNaive => {
            par_semi_naive_eval_recorded(gp, assign, max_iters, threads, rec, stage)
        }
    }
}

/// Semi-naive (differential) evaluation: reach the same fixpoint as
/// [`naive_eval`] by propagating value changes along rule dependencies
/// instead of recomputing every fact every round.
///
/// The algorithm is a FIFO worklist over grounded rules. Every rule fires
/// once; when a firing `⊕`-accumulates a *strictly new* value into its
/// head, the rules reading that head are re-enqueued (unless already
/// pending — a pending rule reads the newer value when it fires, so one
/// queue entry absorbs any number of upstream changes). Total work is
/// proportional to the number of value *changes*, not
/// `rounds × total grounded rules` — on transitive closure over `gnm`
/// graphs this is several times faster than naive (see the `seminaive`
/// bench experiment). The fact → dependent-rules lists are laid out in
/// one flat CSR buffer, built in two passes without per-rule allocation.
///
/// Accumulation without recomputation is sound exactly when `⊕` is
/// idempotent: within the idempotent order, body values only grow, `⊗` is
/// monotone, so every stale contribution is dominated by (and absorbed
/// into) the final one. When `S::ADD_IDEMPOTENT` is `false` (e.g.
/// [`semiring::Counting`]) this function **falls back to [`naive_eval`]**,
/// so it is safe to call on any semiring; divergent instances exhaust
/// the budget and report `converged: false` either way.
///
/// `iterations` reports *equivalent full passes* — rule firings divided by
/// the number of grounded rules, rounded up — and the budget caps firings
/// at `max_iters × #rules`, mirroring naive's total work bound. Do not
/// feed the count to the §4 boundedness or layering probes (they
/// interpret naive ICO applications; use [`naive_eval`] there).
pub fn semi_naive_eval<S, V>(gp: &GroundedProgram, assign: &V, max_iters: usize) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    semi_naive_eval_recorded(gp, assign, max_iters, &NOOP, Stage::Eval)
}

/// [`semi_naive_eval`] reporting into a telemetry [`Recorder`].
///
/// The sequential worklist has no natural rounds, so the per-round series
/// is **sampled at equivalent-pass boundaries** (every `#rules` firings):
/// each [`RoundStats`] carries the queue length at the boundary (as both
/// `frontier` and `worklist`) and the head-value changes since the last
/// sample. Round 0 is the initial every-rule pass. [`Counter::RuleFirings`]
/// accumulates the exact total. Disabled recorders leave the worklist loop
/// bit-identical (the only residue is one dead branch per value change).
pub fn semi_naive_eval_recorded<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    rec: &dyn Recorder,
    stage: Stage,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    if !S::ADD_IDEMPOTENT {
        return naive_driver_recorded(gp, max_iters, rec, stage, |current| {
            ico(gp, assign, current)
        });
    }
    let enabled = rec.enabled();
    let n = gp.num_idb_facts();
    let num_rules = gp.rules.len();
    let mut values = vec![S::zero(); n];
    let edb_factor = edb_factors(gp, assign);
    let (start, deps) = dependency_csr(gp);

    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut pending = vec![false; num_rules];
    let max_firings = max_iters.saturating_mul(num_rules.max(1));
    let mut firings = 0usize;
    let mut changes = 0u64;
    let mut sampled_changes = 0u64;
    let equivalent_passes = |firings: usize| firings.div_ceil(num_rules.max(1));
    macro_rules! finish {
        ($converged:expr) => {{
            if enabled {
                rec.counter(Counter::RuleFirings, firings as u64);
            }
            return EvalOutcome {
                values,
                iterations: equivalent_passes(firings),
                rule_firings: firings,
                converged: $converged,
                strategy: EvalStrategy::SemiNaive,
            };
        }};
    }

    // One firing of rule `ri`: ⊕-accumulate its product into the head and
    // re-enqueue the dependent rules that fired before this change (a rule
    // that has not fired yet — or is already queued — reads the newer value
    // when its turn comes, so it needs no entry).
    macro_rules! fire {
        ($ri:expr, $fired:expr) => {{
            let ri = $ri;
            let rule = &gp.rules[ri];
            let mut prod = edb_factor[ri].clone();
            for &i in &rule.body_idb {
                prod.mul_assign(&values[i]);
            }
            if !prod.is_zero() {
                let sum = values[rule.head].add(&prod);
                if !sum.sr_eq(&values[rule.head]) {
                    values[rule.head] = sum;
                    if enabled {
                        changes += 1;
                    }
                    for &dep in &deps[start[rule.head]..start[rule.head + 1]] {
                        let dep = dep as usize;
                        if $fired(dep) && !pending[dep] {
                            pending[dep] = true;
                            queue.push_back(dep as u32);
                        }
                    }
                }
            }
        }};
    }

    // Initial pass: every rule fires once, in creation order — a plain
    // scan, as cache-friendly as one naive round. Only rules at an earlier
    // position (already fired) can need a second look.
    for ri in 0..num_rules.min(max_firings) {
        firings += 1;
        fire!(ri, |dep| dep <= ri);
    }
    if enabled && firings > 0 {
        rec.round(
            stage,
            RoundStats {
                round: 0,
                frontier: firings as u64,
                delta: changes,
                probes: 0,
                firings: firings as u64,
                worklist: queue.len() as u64,
            },
        );
        sampled_changes = changes;
    }
    if num_rules > max_firings {
        finish!(false);
    }
    // Drain: by now every rule has fired, so any dependent of a change is
    // a re-fire candidate unless already queued.
    while let Some(ri) = queue.pop_front() {
        if firings == max_firings {
            finish!(false);
        }
        firings += 1;
        pending[ri as usize] = false;
        fire!(ri as usize, |_dep| true);
        if enabled && firings.is_multiple_of(num_rules.max(1)) {
            rec.round(
                stage,
                RoundStats {
                    round: (firings / num_rules.max(1)) as u64,
                    frontier: queue.len() as u64,
                    delta: changes - sampled_changes,
                    probes: 0,
                    firings: num_rules as u64,
                    worklist: queue.len() as u64,
                },
            );
            sampled_changes = changes;
        }
    }
    finish!(true);
}

/// Delta-driven evaluation with each round's frontier sharded across
/// `threads` scoped threads.
///
/// `threads <= 1` runs the sequential [`semi_naive_eval`] worklist
/// unchanged. With more threads the algorithm becomes **round-based**: the
/// frontier (initially every rule, always sorted by rule id) is split
/// into contiguous work-stolen chunks, each chunk computes its rules'
/// products against the *pre-round* values and routes the nonzero
/// `(head, contribution)` pairs to per-owner mailboxes
/// ([`crate::par::owner_of`]); each owner then ⊕-folds its disjoint head
/// slice in frontier order with the same strict-growth test as the
/// sequential merge. Heads that strictly grow enqueue their dependent
/// rules, and the next frontier is sorted by rule id — so the frontier
/// sequence is deterministic and independent of the thread count, and no
/// ⊕ ever runs outside an owner's own slice (no merge step, no
/// cross-worker writes).
///
/// Soundness is the same ⊕-idempotence argument as the sequential
/// algorithm (stale contributions are dominated by, and absorbed into,
/// final ones); non-idempotent semirings fall back to [`par_naive_eval`],
/// whose sharding is exact on every semiring. The two schedules
/// (worklist vs rounds) fire rules in different orders, so
/// `iterations` — still *equivalent full passes*, total firings over
/// `#rules` — may differ from the sequential count, and at a **tight**
/// budget so may `converged`: the round-based schedule reads pre-round
/// values (Jacobi) where the worklist reads in-place updates
/// (Gauss–Seidel-like), so it can need more firings to drain and may
/// exhaust a budget the worklist squeaked under. Both respect the same
/// `max_iters × #rules` firing bound; at a budget that lets either drain
/// (e.g. [`default_budget`]), `values` and `converged` agree — asserted
/// by the parallel agreement proptests.
pub fn par_semi_naive_eval<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    par_semi_naive_eval_recorded(gp, assign, max_iters, threads, &NOOP, Stage::Eval)
}

/// [`par_semi_naive_eval`] reporting into a telemetry [`Recorder`]: one
/// [`RoundStats`] per frontier round (frontier size, head-value changes,
/// next-frontier worklist), [`Counter::RuleFirings`] /
/// [`Counter::Contributions`] / [`Counter::EvalDrainNanos`] totals, and —
/// at `threads > 1` — per-worker shard stats (busy time, steals, mailbox
/// volume) from each round's producer chunks and owner drains. Disabled
/// recorders take the un-instrumented path bit-identically.
pub fn par_semi_naive_eval_recorded<S, V>(
    gp: &GroundedProgram,
    assign: &V,
    max_iters: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + Sync + ?Sized,
{
    if !S::ADD_IDEMPOTENT {
        return par_naive_eval_recorded(gp, assign, max_iters, threads, rec, stage);
    }
    if threads <= 1 {
        return semi_naive_eval_recorded(gp, assign, max_iters, rec, stage);
    }
    let enabled = rec.enabled();
    let n = gp.num_idb_facts();
    let num_rules = gp.rules.len();
    let mut values = vec![S::zero(); n];
    if num_rules == 0 {
        return EvalOutcome {
            values,
            iterations: 0,
            rule_firings: 0,
            converged: true,
            strategy: EvalStrategy::SemiNaive,
        };
    }
    let edb_factor = edb_factors(gp, assign);
    let (start, deps) = dependency_csr(gp);

    let max_firings = max_iters.saturating_mul(num_rules);
    let mut firings = 0usize;
    let mut frontier: Vec<u32> = (0..num_rules as u32).collect();
    // `pending[r]` ⇔ rule r is already in the *next* frontier.
    let mut pending = vec![false; num_rules];
    let mut exhausted = false;
    let mut round = 0u64;
    while !frontier.is_empty() {
        let budget_left = max_firings - firings;
        if budget_left == 0 {
            exhausted = true;
            break;
        }
        if frontier.len() > budget_left {
            // Fire what the budget allows, then report non-convergence —
            // the truncated rules were never re-fired.
            frontier.truncate(budget_left);
            exhausted = true;
        }
        let frontier_ref = &frontier;
        let values_ref = &values;
        let owners = threads;
        let chunks = crate::par::chunk_bounds(frontier.len(), threads);
        let chunks_ref = &chunks;
        let mail: Vec<Vec<Vec<(u32, S)>>> = crate::par::run_indexed_stats(
            chunks.len(),
            threads,
            rec,
            stage,
            |buckets: &Vec<Vec<(u32, S)>>| {
                let pairs: u64 = buckets.iter().map(|b| b.len() as u64).sum();
                (pairs, pairs)
            },
            |c| {
                let (lo, hi) = chunks_ref[c];
                let mut buckets: Vec<Vec<(u32, S)>> = (0..owners).map(|_| Vec::new()).collect();
                for &ri in &frontier_ref[lo..hi] {
                    let rule = &gp.rules[ri as usize];
                    let mut prod = edb_factor[ri as usize].clone();
                    for &i in &rule.body_idb {
                        prod.mul_assign(&values_ref[i]);
                    }
                    if !prod.is_zero() {
                        let head = rule.head as u32;
                        buckets[crate::par::owner_of(head, owners)].push((head, prod));
                    }
                }
                buckets
            },
        );
        firings += frontier.len();
        if enabled {
            rec.counter(Counter::RuleFirings, frontier.len() as u64);
            rec.counter(
                Counter::Contributions,
                mail.iter()
                    .flat_map(|c| c.iter())
                    .map(|b| b.len() as u64)
                    .sum(),
            );
        }
        // Rules that just fired read pre-round values: if an owner drain
        // below changes one of their inputs they must re-fire next round,
        // so clear their next-frontier membership first.
        for &ri in &frontier {
            pending[ri as usize] = false;
        }
        // Owner drains: each owner folds its disjoint head slice in
        // frontier order, seeded with the pre-round value and using the
        // same strict-growth test as the sequential merge.
        let drained = drain_owner_mailboxes_seeded(
            mail,
            values.len(),
            owners,
            threads,
            rec,
            stage,
            |h| values_ref[h as usize].clone(),
            |acc: &mut S, prod| {
                let sum = acc.add(prod);
                if sum.sr_eq(acc) {
                    false
                } else {
                    *acc = sum;
                    true
                }
            },
        );
        // Apply the drained slices and enqueue dependents in a fixed
        // order — owner-major, heads ascending — then sort the next
        // frontier by rule id, keeping the frontier sequence independent
        // of the thread count.
        let apply_start = enabled.then(std::time::Instant::now);
        let mut changed = 0u64;
        let mut next_frontier: Vec<u32> = Vec::new();
        for out in drained {
            for (head, v, grew) in out {
                if !grew {
                    continue;
                }
                let h = head as usize;
                values[h] = v;
                if enabled {
                    changed += 1;
                }
                for &dep in &deps[start[h]..start[h + 1]] {
                    if !pending[dep as usize] {
                        pending[dep as usize] = true;
                        next_frontier.push(dep);
                    }
                }
            }
        }
        next_frontier.sort_unstable();
        if let Some(t) = apply_start {
            rec.counter(Counter::EvalDrainNanos, t.elapsed().as_nanos() as u64);
        }
        if enabled {
            rec.round(
                stage,
                RoundStats {
                    round,
                    frontier: frontier.len() as u64,
                    delta: changed,
                    probes: 0,
                    firings: frontier.len() as u64,
                    worklist: next_frontier.len() as u64,
                },
            );
        }
        round += 1;
        if exhausted {
            break;
        }
        frontier = next_frontier;
    }
    EvalOutcome {
        values,
        iterations: firings.div_ceil(num_rules),
        rule_firings: firings,
        converged: !exhausted,
        strategy: EvalStrategy::SemiNaive,
    }
}

/// Each rule's EDB factor is loop-invariant across a fixpoint run: the
/// ⊗-product of its EDB body facts' values, computed once. Public so the
/// incremental-maintenance layer can reuse it when seeding delta
/// propagation over an extended grounding.
pub fn edb_factors<S, V>(gp: &GroundedProgram, assign: &V) -> Vec<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    gp.rules
        .iter()
        .map(|r| {
            let mut p = S::one();
            for &f in &r.body_edb {
                p.mul_assign(&assign.value(f));
            }
            p
        })
        .collect()
}

/// Invert the body references into fact → dependent rules, CSR layout:
/// `deps[start[i]..start[i + 1]]` lists the rules reading fact `i`
/// (each rule at most once per fact). Public so the incremental
/// maintenance layer can drive its change-propagation worklist and DRed
/// cone computation off the same table.
pub fn dependency_csr(gp: &GroundedProgram) -> (Vec<usize>, Vec<u32>) {
    let n = gp.num_idb_facts();
    let mut start = vec![0usize; n + 1];
    for r in &gp.rules {
        for_each_distinct_body_fact(r, |i| start[i + 1] += 1);
    }
    for i in 0..n {
        start[i + 1] += start[i];
    }
    let mut deps = vec![0u32; start[n]];
    let mut cursor = start.clone();
    for (ri, r) in gp.rules.iter().enumerate() {
        for_each_distinct_body_fact(r, |i| {
            deps[cursor[i]] = ri as u32;
            cursor[i] += 1;
        });
    }
    (start, deps)
}

/// Visit each IDB fact of a rule body once, even when the body repeats it
/// (bodies are tiny, so the quadratic dedup beats sorting a clone).
fn for_each_distinct_body_fact(r: &crate::ground::GroundedRule, mut f: impl FnMut(usize)) {
    for (k, &i) in r.body_idb.iter().enumerate() {
        if !r.body_idb[..k].contains(&i) {
            f(i);
        }
    }
}

/// Default iteration budget: `#IDB facts + 2` suffices for any absorptive
/// (0-stable) semiring, where each round strictly grows the set of facts at
/// their final value.
pub fn default_budget(gp: &GroundedProgram) -> usize {
    gp.num_idb_facts() + 2
}

/// Evaluate with every EDB fact tagged `1` — Boolean derivability plus the
/// iterations-to-fixpoint probe used by the boundedness experiments.
pub fn eval_all_ones<S: Semiring>(gp: &GroundedProgram, max_iters: usize) -> EvalOutcome<S> {
    naive_eval(gp, &AllOnes, max_iters)
}

/// The provenance polynomial of every IDB fact, computed by naive evaluation
/// over [`Sorp`] with each EDB fact tagged by its own variable.
///
/// By Proposition 2.4 this equals the tight-proof-tree polynomial of §2.4;
/// `prooftree::provenance_polynomial` cross-checks it by enumeration.
pub fn provenance_eval(gp: &GroundedProgram, max_iters: usize) -> EvalOutcome<Sorp> {
    naive_eval(gp, &VarTags, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;
    use semiring::prelude::*;

    fn tc_on(g: &graphgen::LabeledDigraph) -> (crate::ast::Program, Database, GroundedProgram) {
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = ground(&p, &db).unwrap();
        (p, db, gp)
    }

    #[test]
    fn boolean_eval_matches_reachability() {
        let g = generators::gnm(8, 20, &["E"], 3);
        let (p, db, gp) = tc_on(&g);
        let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        // Every derivable fact evaluates to true (grounding keeps only
        // derivable facts), and matches BFS reachability.
        for (i, (pred, tuple)) in gp.idb_facts.iter().enumerate() {
            if *pred != t {
                continue;
            }
            assert!(out.values[i].is_one());
            let (u, v) = (tuple[0], tuple[1]);
            // Find graph node indices back from constants.
            let find = |c| {
                (0..g.num_nodes())
                    .find(|&i| db.node_const(i) == Some(c))
                    .unwrap()
            };
            let (ui, vi) = (find(u), find(v));
            // E+ reachability: at least one edge.
            let mut ok = false;
            for &(eu, ev, _) in g.edges() {
                if eu as usize == ui && g.reachable_from(ev)[vi] {
                    ok = true;
                }
            }
            assert!(ok, "derived T({ui},{vi}) not backed by reachability");
        }
    }

    #[test]
    fn tropical_eval_is_shortest_path_on_unit_weights() {
        let g = generators::gnm(9, 24, &["E"], 7);
        let (p, db, gp) = tc_on(&g);
        let out = naive_eval(
            &gp,
            &UnitWeights::new(Tropical::new(1)),
            default_budget(&gp),
        );
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        for src in 0..g.num_nodes() {
            let dist = g.bfs_distances(src as u32);
            for (dst, &dopt) in dist.iter().enumerate() {
                let key = [db.node_const(src).unwrap(), db.node_const(dst).unwrap()];
                if let Some(i) = gp.fact(t, &key) {
                    let d = dopt.expect("derivable implies reachable");
                    // E+ paths: for src==dst, BFS gives 0 but TC needs a
                    // cycle; skip the diagonal.
                    if src != dst {
                        assert_eq!(out.values[i], Tropical::new(d), "({src},{dst})");
                    }
                }
            }
        }
    }

    #[test]
    fn counting_diverges_on_cycles() {
        let g = generators::cycle(3, "E");
        let (_, _, gp) = tc_on(&g);
        let out = naive_eval(&gp, &UnitWeights::new(Counting::new(1)), 50);
        assert!(
            !out.converged,
            "counting semiring must not converge on a cycle"
        );
    }

    #[test]
    fn counting_counts_paths_on_dags() {
        // Diamond: 0→1→3, 0→2→3 — two paths.
        let mut g = graphgen::LabeledDigraph::new(4);
        g.add_edge(0, 1, "E");
        g.add_edge(0, 2, "E");
        g.add_edge(1, 3, "E");
        g.add_edge(2, 3, "E");
        let (p, db, gp) = tc_on(&g);
        let out = naive_eval(&gp, &UnitWeights::new(Counting::new(1)), 20);
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(3).unwrap()])
            .unwrap();
        assert_eq!(out.values[i], Counting::new(2));
    }

    #[test]
    fn tropk_converges_within_stability_budget() {
        let g = generators::cycle(4, "E");
        let (_, _, gp) = tc_on(&g);
        // Trop_2 is 1-stable: naive evaluation converges despite the cycle.
        let out = naive_eval(&gp, &UnitWeights::new(TropK::<2>::single(1)), 200);
        assert!(out.converged);
    }

    #[test]
    fn provenance_eval_on_figure1() {
        // The paper's Figure 1 graph.
        let mut g = graphgen::LabeledDigraph::new(6);
        // s=0, u1=1, u2=2, v1=3, v2=4, t=5
        let e_su1 = g.add_edge(0, 1, "E");
        let e_su2 = g.add_edge(0, 2, "E");
        let e_u1v1 = g.add_edge(1, 3, "E");
        let e_u1v2 = g.add_edge(1, 4, "E");
        let e_u2v2 = g.add_edge(2, 4, "E");
        let e_v1t = g.add_edge(3, 5, "E");
        let e_v2t = g.add_edge(4, 5, "E");
        let (p, db, gp) = tc_on(&g);
        let out = provenance_eval(&gp, default_budget(&gp));
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(5).unwrap()])
            .unwrap();
        // §2.4: x_{s,u1}x_{u1,v1}x_{v1,t} + x_{s,u1}x_{u1,v2}x_{v2,t}
        //       + x_{s,u2}x_{u2,v2}x_{v2,t}
        let m = |a: u32, b: u32, c: u32| semiring::Monomial::from_pairs([(a, 1), (b, 1), (c, 1)]);
        let expect = Sorp::from_monomials([
            m(e_su1 as u32, e_u1v1 as u32, e_v1t as u32),
            m(e_su1 as u32, e_u1v2 as u32, e_v2t as u32),
            m(e_su2 as u32, e_u2v2 as u32, e_v2t as u32),
        ]);
        assert_eq!(out.values[i], expect);
    }

    #[test]
    fn seminaive_matches_naive_across_semirings() {
        for seed in [1u64, 5, 9] {
            let g = generators::gnm(8, 20, &["E"], seed);
            let (_, _, gp) = tc_on(&g);
            let budget = default_budget(&gp);

            let nb = naive_eval::<Bool, _>(&gp, &AllOnes, budget);
            let sb = semi_naive_eval::<Bool, _>(&gp, &AllOnes, budget);
            assert!(sb.converged && nb.converged);
            assert_eq!(nb.values, sb.values, "Bool seed={seed}");

            let unit = UnitWeights::new(Tropical::new(1));
            let nt = naive_eval::<Tropical, _>(&gp, &unit, budget);
            let st = semi_naive_eval::<Tropical, _>(&gp, &unit, budget);
            assert!(st.converged);
            assert_eq!(nt.values, st.values, "Tropical seed={seed}");
            assert!(
                st.iterations <= nt.iterations,
                "semi-naive rounds ({}) exceed naive iterations ({})",
                st.iterations,
                nt.iterations
            );

            let ns = naive_eval::<Sorp, _>(&gp, &VarTags, budget);
            let ss = semi_naive_eval::<Sorp, _>(&gp, &VarTags, budget);
            assert!(ss.converged);
            assert_eq!(ns.values, ss.values, "Sorp seed={seed}");
        }
    }

    #[test]
    fn seminaive_counting_falls_back_to_naive() {
        // Counting is not ⊕-idempotent: the delta path would double-count,
        // so semi_naive_eval must route through naive and agree exactly —
        // on the DAG it counts paths, on the cycle both diverge.
        let mut g = graphgen::LabeledDigraph::new(4);
        g.add_edge(0, 1, "E");
        g.add_edge(0, 2, "E");
        g.add_edge(1, 3, "E");
        g.add_edge(2, 3, "E");
        let (_, _, gp) = tc_on(&g);
        let unit = UnitWeights::new(Counting::new(1));
        let n = naive_eval::<Counting, _>(&gp, &unit, 20);
        let s = semi_naive_eval::<Counting, _>(&gp, &unit, 20);
        assert!(n.converged && s.converged);
        assert_eq!(n.values, s.values);
        assert_eq!(n.iterations, s.iterations, "fallback must be naive itself");

        let cyc = generators::cycle(3, "E");
        let (_, _, gp) = tc_on(&cyc);
        let s = semi_naive_eval::<Counting, _>(&gp, &unit, 50);
        assert!(!s.converged, "counting must still diverge on a cycle");
    }

    #[test]
    fn seminaive_tropk_converges_on_cycles() {
        // Trop_2 is ⊕-idempotent but only 1-stable: the frontier must
        // still drain (values stop changing) despite the cycle.
        let g = generators::cycle(4, "E");
        let (_, _, gp) = tc_on(&g);
        let unit = UnitWeights::new(TropK::<2>::single(1));
        let n = naive_eval::<TropK<2>, _>(&gp, &unit, 200);
        let s = semi_naive_eval::<TropK<2>, _>(&gp, &unit, 200);
        assert!(n.converged && s.converged);
        assert_eq!(n.values, s.values);
    }

    #[test]
    fn empty_program_and_zero_budget_converge_immediately() {
        // A program with zero grounded rules: the all-zero vector is the
        // fixpoint, whatever the budget — including a zero budget.
        let mut p = parse_program("R(Y) :- E(nosuch, Y).").unwrap();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert!(gp.rules.is_empty());
        for budget in [0usize, 1, 10] {
            let n = naive_eval::<Bool, _>(&gp, &AllOnes, budget);
            assert!(n.converged, "naive budget={budget}");
            assert_eq!(n.iterations, 0);
            let s = semi_naive_eval::<Bool, _>(&gp, &AllOnes, budget);
            assert!(s.converged, "semi-naive budget={budget}");
            assert_eq!(s.iterations, 0);
            // The Counting fallback routes through naive and must agree.
            let c =
                semi_naive_eval::<Counting, _>(&gp, &UnitWeights::new(Counting::new(1)), budget);
            assert!(c.converged, "fallback budget={budget}");
            assert_eq!(c.strategy, EvalStrategy::Naive);
        }
    }

    #[test]
    fn zero_budget_on_nonempty_program_is_honest() {
        // With rules present, a zero budget cannot verify the fixpoint:
        // both algorithms report non-convergence without firing anything.
        let g = generators::path(3, "E");
        let (_, _, gp) = tc_on(&g);
        let n = naive_eval::<Bool, _>(&gp, &AllOnes, 0);
        assert!(!n.converged);
        assert_eq!(n.iterations, 0);
        let s = semi_naive_eval::<Bool, _>(&gp, &AllOnes, 0);
        assert!(!s.converged);
        assert_eq!(s.iterations, 0);
        let p = par_semi_naive_eval::<Bool, _>(&gp, &AllOnes, 0, 4);
        assert!(!p.converged);
        assert_eq!(p.iterations, 0);
    }

    #[test]
    fn outcome_records_the_effective_strategy() {
        let g = generators::path(3, "E");
        let (_, _, gp) = tc_on(&g);
        let budget = default_budget(&gp);
        assert_eq!(
            naive_eval::<Bool, _>(&gp, &AllOnes, budget).strategy,
            EvalStrategy::Naive
        );
        assert_eq!(
            semi_naive_eval::<Bool, _>(&gp, &AllOnes, budget).strategy,
            EvalStrategy::SemiNaive
        );
        // The silent SemiNaive → Naive downgrade on non-idempotent
        // semirings is now visible in the outcome.
        let unit = UnitWeights::new(Counting::new(1));
        let fallback = eval_with_strategy::<Counting, _>(EvalStrategy::SemiNaive, &gp, &unit, 20);
        assert_eq!(fallback.strategy, EvalStrategy::Naive);
        let par_fallback =
            par_eval_with_strategy::<Counting, _>(EvalStrategy::SemiNaive, &gp, &unit, 20, 4);
        assert_eq!(par_fallback.strategy, EvalStrategy::Naive);
    }

    #[test]
    fn par_ico_matches_ico_along_the_whole_fixpoint() {
        for seed in [2u64, 7] {
            let g = generators::gnm(8, 20, &["E"], seed);
            let (_, _, gp) = tc_on(&g);
            let unit = UnitWeights::new(Tropical::new(1));
            let mut current = vec![Tropical::zero(); gp.num_idb_facts()];
            for _ in 0..default_budget(&gp) {
                let seq = ico::<Tropical, _>(&gp, &unit, &current);
                for threads in [2usize, 3, 8] {
                    let par = par_ico::<Tropical, _>(&gp, &unit, &current, threads);
                    assert_eq!(seq, par, "threads={threads} seed={seed}");
                }
                current = seq;
            }
        }
    }

    #[test]
    fn parallel_eval_agrees_with_sequential() {
        for seed in [1u64, 4, 11] {
            let g = generators::gnm(9, 24, &["E"], seed);
            let (_, _, gp) = tc_on(&g);
            let budget = default_budget(&gp);
            let unit = UnitWeights::new(Tropical::new(1));
            let seq_n = naive_eval::<Tropical, _>(&gp, &unit, budget);
            let seq_s = semi_naive_eval::<Tropical, _>(&gp, &unit, budget);
            for threads in [2usize, 4] {
                let par_n = par_naive_eval::<Tropical, _>(&gp, &unit, budget, threads);
                assert_eq!(seq_n.values, par_n.values, "naive t={threads} seed={seed}");
                assert_eq!(seq_n.iterations, par_n.iterations);
                assert!(par_n.converged);
                let par_s = par_semi_naive_eval::<Tropical, _>(&gp, &unit, budget, threads);
                assert_eq!(seq_s.values, par_s.values, "semi t={threads} seed={seed}");
                assert!(par_s.converged);
            }
        }
    }

    #[test]
    fn parallel_counting_falls_back_to_sharded_naive() {
        // Counting on a DAG: the parallel semi-naive entry point must route
        // through (sharded) naive and agree exactly with the sequential run.
        let mut g = graphgen::LabeledDigraph::new(4);
        g.add_edge(0, 1, "E");
        g.add_edge(0, 2, "E");
        g.add_edge(1, 3, "E");
        g.add_edge(2, 3, "E");
        let (_, _, gp) = tc_on(&g);
        let unit = UnitWeights::new(Counting::new(1));
        let seq = naive_eval::<Counting, _>(&gp, &unit, 20);
        let par = par_semi_naive_eval::<Counting, _>(&gp, &unit, 20, 4);
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(par.strategy, EvalStrategy::Naive);
    }

    #[test]
    fn strategy_dispatch_routes_both_ways() {
        let g = generators::gnm(7, 16, &["E"], 2);
        let (_, _, gp) = tc_on(&g);
        let budget = default_budget(&gp);
        let unit = UnitWeights::new(Tropical::new(1));
        let naive = eval_with_strategy::<Tropical, _>(EvalStrategy::Naive, &gp, &unit, budget);
        let semi = eval_with_strategy::<Tropical, _>(EvalStrategy::SemiNaive, &gp, &unit, budget);
        assert_eq!(naive.values, semi.values);
        assert_eq!(EvalStrategy::default(), EvalStrategy::SemiNaive);
    }

    #[test]
    fn bounded_program_converges_in_constant_iterations() {
        // Example 4.2: T(x,y) :- E(x,y); T(x,y) :- A(x), T(z,y) — bounded.
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").unwrap();
        for n in [3usize, 6, 10] {
            let g = generators::path(n, "E");
            let (mut db, _) = Database::from_graph(&mut p, &g);
            let a = p.preds.get("A").unwrap();
            let v0 = db.node_const(0).unwrap();
            db.insert(a, vec![v0]);
            let gp = ground(&p, &db).unwrap();
            let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
            assert!(out.converged);
            assert!(
                out.iterations <= 4,
                "bounded program took {} iterations at n={n}",
                out.iterations
            );
        }
    }

    #[test]
    fn unbounded_tc_iterations_grow_with_input() {
        let mut iters = Vec::new();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let (_, _, gp) = tc_on(&g);
            let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
            assert!(out.converged);
            iters.push(out.iterations);
        }
        assert!(iters[0] < iters[1] && iters[1] < iters[2]);
    }
}
