//! Naive (fixpoint) evaluation of grounded programs over semirings
//! (paper §2.3).
//!
//! The immediate consequence operator maps each IDB fact to the ⊕-sum over
//! its grounded rules of the ⊗-product of the rule's body values. Naive
//! evaluation iterates from all-0; on a p-stable semiring it converges, and
//! the number of iterations is the *boundedness* probe of §4 (a bounded
//! program converges in O(1) iterations on every input).

use semiring::valuation::{AllOnes, Valuation, VarTags};
use semiring::{Semiring, Sorp};

use crate::ground::GroundedProgram;

/// Result of a fixpoint evaluation.
#[derive(Clone, Debug)]
pub struct EvalOutcome<S> {
    /// Value per IDB fact (aligned with [`GroundedProgram::idb_facts`]).
    pub values: Vec<S>,
    /// Number of ICO applications performed.
    pub iterations: usize,
    /// Whether a fixpoint was reached within the iteration budget.
    pub converged: bool,
}

/// One application of the immediate consequence operator.
pub fn ico<S, V>(gp: &GroundedProgram, assign: &V, current: &[S]) -> Vec<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    let mut next = vec![S::zero(); current.len()];
    for rule in &gp.rules {
        let mut prod = S::one();
        for &i in &rule.body_idb {
            prod.mul_assign(&current[i]);
        }
        for &f in &rule.body_edb {
            prod.mul_assign(&assign.value(f));
        }
        next[rule.head].add_assign(&prod);
    }
    next
}

/// Naive evaluation: iterate the ICO from all-0 until a fixpoint or
/// `max_iters` rounds.
pub fn naive_eval<S, V>(gp: &GroundedProgram, assign: &V, max_iters: usize) -> EvalOutcome<S>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    let mut values = vec![S::zero(); gp.num_idb_facts()];
    for iter in 0..max_iters {
        let next = ico(gp, assign, &values);
        let converged = next.iter().zip(values.iter()).all(|(a, b)| a.sr_eq(b));
        values = next;
        if converged {
            return EvalOutcome {
                values,
                iterations: iter + 1,
                converged: true,
            };
        }
    }
    EvalOutcome {
        values,
        iterations: max_iters,
        converged: false,
    }
}

/// Default iteration budget: `#IDB facts + 2` suffices for any absorptive
/// (0-stable) semiring, where each round strictly grows the set of facts at
/// their final value.
pub fn default_budget(gp: &GroundedProgram) -> usize {
    gp.num_idb_facts() + 2
}

/// Evaluate with every EDB fact tagged `1` — Boolean derivability plus the
/// iterations-to-fixpoint probe used by the boundedness experiments.
pub fn eval_all_ones<S: Semiring>(gp: &GroundedProgram, max_iters: usize) -> EvalOutcome<S> {
    naive_eval(gp, &AllOnes, max_iters)
}

/// The provenance polynomial of every IDB fact, computed by naive evaluation
/// over [`Sorp`] with each EDB fact tagged by its own variable.
///
/// By Proposition 2.4 this equals the tight-proof-tree polynomial of §2.4;
/// `prooftree::provenance_polynomial` cross-checks it by enumeration.
pub fn provenance_eval(gp: &GroundedProgram, max_iters: usize) -> EvalOutcome<Sorp> {
    naive_eval(gp, &VarTags, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;
    use semiring::prelude::*;

    fn tc_on(g: &graphgen::LabeledDigraph) -> (crate::ast::Program, Database, GroundedProgram) {
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = ground(&p, &db).unwrap();
        (p, db, gp)
    }

    #[test]
    fn boolean_eval_matches_reachability() {
        let g = generators::gnm(8, 20, &["E"], 3);
        let (p, db, gp) = tc_on(&g);
        let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        // Every derivable fact evaluates to true (grounding keeps only
        // derivable facts), and matches BFS reachability.
        for (i, (pred, tuple)) in gp.idb_facts.iter().enumerate() {
            if *pred != t {
                continue;
            }
            assert!(out.values[i].is_one());
            let (u, v) = (tuple[0], tuple[1]);
            // Find graph node indices back from constants.
            let find = |c| {
                (0..g.num_nodes())
                    .find(|&i| db.node_const(i) == Some(c))
                    .unwrap()
            };
            let (ui, vi) = (find(u), find(v));
            // E+ reachability: at least one edge.
            let mut ok = false;
            for &(eu, ev, _) in g.edges() {
                if eu as usize == ui && g.reachable_from(ev)[vi] {
                    ok = true;
                }
            }
            assert!(ok, "derived T({ui},{vi}) not backed by reachability");
        }
    }

    #[test]
    fn tropical_eval_is_shortest_path_on_unit_weights() {
        let g = generators::gnm(9, 24, &["E"], 7);
        let (p, db, gp) = tc_on(&g);
        let out = naive_eval(
            &gp,
            &UnitWeights::new(Tropical::new(1)),
            default_budget(&gp),
        );
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        for src in 0..g.num_nodes() {
            let dist = g.bfs_distances(src as u32);
            for (dst, &dopt) in dist.iter().enumerate() {
                let key = (
                    t,
                    vec![db.node_const(src).unwrap(), db.node_const(dst).unwrap()],
                );
                if let Some(&i) = gp.fact_index.get(&key) {
                    let d = dopt.expect("derivable implies reachable");
                    // E+ paths: for src==dst, BFS gives 0 but TC needs a
                    // cycle; skip the diagonal.
                    if src != dst {
                        assert_eq!(out.values[i], Tropical::new(d), "({src},{dst})");
                    }
                }
            }
        }
    }

    #[test]
    fn counting_diverges_on_cycles() {
        let g = generators::cycle(3, "E");
        let (_, _, gp) = tc_on(&g);
        let out = naive_eval(&gp, &UnitWeights::new(Counting::new(1)), 50);
        assert!(
            !out.converged,
            "counting semiring must not converge on a cycle"
        );
    }

    #[test]
    fn counting_counts_paths_on_dags() {
        // Diamond: 0→1→3, 0→2→3 — two paths.
        let mut g = graphgen::LabeledDigraph::new(4);
        g.add_edge(0, 1, "E");
        g.add_edge(0, 2, "E");
        g.add_edge(1, 3, "E");
        g.add_edge(2, 3, "E");
        let (p, db, gp) = tc_on(&g);
        let out = naive_eval(&gp, &UnitWeights::new(Counting::new(1)), 20);
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(3).unwrap()])
            .unwrap();
        assert_eq!(out.values[i], Counting::new(2));
    }

    #[test]
    fn tropk_converges_within_stability_budget() {
        let g = generators::cycle(4, "E");
        let (_, _, gp) = tc_on(&g);
        // Trop_2 is 1-stable: naive evaluation converges despite the cycle.
        let out = naive_eval(&gp, &UnitWeights::new(TropK::<2>::single(1)), 200);
        assert!(out.converged);
    }

    #[test]
    fn provenance_eval_on_figure1() {
        // The paper's Figure 1 graph.
        let mut g = graphgen::LabeledDigraph::new(6);
        // s=0, u1=1, u2=2, v1=3, v2=4, t=5
        let e_su1 = g.add_edge(0, 1, "E");
        let e_su2 = g.add_edge(0, 2, "E");
        let e_u1v1 = g.add_edge(1, 3, "E");
        let e_u1v2 = g.add_edge(1, 4, "E");
        let e_u2v2 = g.add_edge(2, 4, "E");
        let e_v1t = g.add_edge(3, 5, "E");
        let e_v2t = g.add_edge(4, 5, "E");
        let (p, db, gp) = tc_on(&g);
        let out = provenance_eval(&gp, default_budget(&gp));
        assert!(out.converged);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(5).unwrap()])
            .unwrap();
        // §2.4: x_{s,u1}x_{u1,v1}x_{v1,t} + x_{s,u1}x_{u1,v2}x_{v2,t}
        //       + x_{s,u2}x_{u2,v2}x_{v2,t}
        let m = |a: u32, b: u32, c: u32| semiring::Monomial::from_pairs([(a, 1), (b, 1), (c, 1)]);
        let expect = Sorp::from_monomials([
            m(e_su1 as u32, e_u1v1 as u32, e_v1t as u32),
            m(e_su1 as u32, e_u1v2 as u32, e_v2t as u32),
            m(e_su2 as u32, e_u2v2 as u32, e_v2t as u32),
        ]);
        assert_eq!(out.values[i], expect);
    }

    #[test]
    fn bounded_program_converges_in_constant_iterations() {
        // Example 4.2: T(x,y) :- E(x,y); T(x,y) :- A(x), T(z,y) — bounded.
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").unwrap();
        for n in [3usize, 6, 10] {
            let g = generators::path(n, "E");
            let (mut db, _) = Database::from_graph(&mut p, &g);
            let a = p.preds.get("A").unwrap();
            let v0 = db.node_const(0).unwrap();
            db.insert(a, vec![v0]);
            let gp = ground(&p, &db).unwrap();
            let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
            assert!(out.converged);
            assert!(
                out.iterations <= 4,
                "bounded program took {} iterations at n={n}",
                out.iterations
            );
        }
    }

    #[test]
    fn unbounded_tc_iterations_grow_with_input() {
        let mut iters = Vec::new();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let (_, _, gp) = tc_on(&g);
            let out = eval_all_ones::<Bool>(&gp, default_budget(&gp));
            assert!(out.converged);
            iters.push(out.iterations);
        }
        assert!(iters[0] < iters[1] && iters[1] < iters[2]);
    }
}
