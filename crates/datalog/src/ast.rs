//! Datalog abstract syntax: terms, atoms, rules, programs (paper §2.1).

use std::collections::HashSet;
use std::fmt;

use provcirc_error::Error;

use crate::symbols::{Interner, PredId, VarSym};

/// A term: a variable or a constant *name* (constant names are resolved
/// against a database's active domain at grounding time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A rule variable.
    Var(VarSym),
    /// A constant, interned in [`Program::consts`].
    Const(u32),
}

/// An atom `P(t₁, …, t_k)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = VarSym> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }
}

/// A rule `head :- body₁ ∧ … ∧ body_k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (empty bodies are facts; unused in this work).
    pub body: Vec<Atom>,
}

/// A Datalog program with interned symbol tables and a designated target IDB
/// (the predicate I/O convention of the paper, §2.1).
#[derive(Clone, Debug)]
pub struct Program {
    /// Predicate names.
    pub preds: Interner,
    /// Variable names.
    pub vars: Interner,
    /// Constant names appearing in rules.
    pub consts: Interner,
    /// The rules.
    pub rules: Vec<Rule>,
    /// The target IDB predicate.
    pub target: PredId,
}

impl Program {
    /// An empty program; `target` is interned eagerly.
    pub fn new(target: &str) -> Program {
        let mut preds = Interner::new();
        let target = preds.intern(target);
        Program {
            preds,
            vars: Interner::new(),
            consts: Interner::new(),
            rules: Vec::new(),
            target,
        }
    }

    /// The set of IDB predicates (those occurring in some head).
    pub fn idbs(&self) -> HashSet<PredId> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// The set of EDB predicates (those occurring only in bodies).
    pub fn edbs(&self) -> HashSet<PredId> {
        let idbs = self.idbs();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.pred))
            .filter(|p| !idbs.contains(p))
            .collect()
    }

    /// Whether a rule is an initialization rule (no IDB in the body, §2.1).
    pub fn is_initialization(&self, rule: &Rule) -> bool {
        let idbs = self.idbs();
        rule.body.iter().all(|a| !idbs.contains(&a.pred))
    }

    /// The arity of each predicate (checked consistent by [`Self::validate`]).
    pub fn arity(&self, pred: PredId) -> Option<usize> {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .find(|a| a.pred == pred)
            .map(|a| a.terms.len())
    }

    /// Validate the program:
    /// * consistent arities,
    /// * safety (every head variable occurs in the body),
    /// * target is an IDB,
    /// * no empty bodies.
    pub fn validate(&self) -> Result<(), Error> {
        let mut arities: Vec<Option<usize>> = vec![None; self.preds.len()];
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.body.is_empty() {
                return Err(Error::InvalidProgram(format!("rule {i}: empty body")));
            }
            for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
                let slot = &mut arities[atom.pred as usize];
                match *slot {
                    None => *slot = Some(atom.terms.len()),
                    Some(a) if a != atom.terms.len() => {
                        return Err(Error::InvalidProgram(format!(
                            "rule {i}: predicate {} used with arities {a} and {}",
                            self.preds.name(atom.pred),
                            atom.terms.len()
                        )));
                    }
                    _ => {}
                }
            }
            let body_vars: HashSet<VarSym> = rule.body.iter().flat_map(|a| a.vars()).collect();
            for v in rule.head.vars() {
                if !body_vars.contains(&v) {
                    return Err(Error::InvalidProgram(format!(
                        "rule {i}: unsafe head variable {}",
                        self.vars.name(v)
                    )));
                }
            }
        }
        if !self.idbs().contains(&self.target) {
            return Err(Error::InvalidProgram(format!(
                "target {} is not an IDB",
                self.preds.name(self.target)
            )));
        }
        Ok(())
    }

    /// Pretty-print one atom.
    pub fn atom_to_string(&self, atom: &Atom) -> String {
        let args: Vec<String> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => self.vars.name(*v).to_owned(),
                Term::Const(c) => self.consts.name(*c).to_owned(),
            })
            .collect();
        format!("{}({})", self.preds.name(atom.pred), args.join(","))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            write!(f, "{} :- ", self.atom_to_string(&rule.head))?;
            for (i, atom) in rule.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.atom_to_string(atom))?;
            }
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn idb_edb_partition() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let t = p.preds.get("T").unwrap();
        let e = p.preds.get("E").unwrap();
        assert!(p.idbs().contains(&t));
        assert!(p.edbs().contains(&e));
        assert_eq!(p.target, t);
    }

    #[test]
    fn validate_catches_unsafe_rules() {
        let p = parse_program("T(X,Y) :- E(X,X).").unwrap();
        assert!(p.validate().unwrap_err().to_string().contains("unsafe"));
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- E(X,Y,Y).").unwrap();
        assert!(p.validate().unwrap_err().to_string().contains("arities"));
    }

    #[test]
    fn initialization_rules_detected() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        assert!(p.is_initialization(&p.rules[0]));
        assert!(!p.is_initialization(&p.rules[1]));
    }
}
