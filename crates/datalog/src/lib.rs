//! A Datalog engine with semiring semantics (paper §2).
//!
//! This crate is the Datalog substrate of the `datalog-circuits` workspace:
//!
//! * [`ast`] / [`parser`] — programs with the predicate-I/O convention;
//! * [`database`] — EDB databases with provenance-tagged facts;
//! * [`mod@ground`] — the grounded program (derivable facts + grounded
//!   rules) computed by an indexed semi-naive fixpoint, the shared input
//!   of evaluation and circuit construction;
//! * [`eval`] — naive and semi-naive fixpoint evaluation over any
//!   [`semiring::Semiring`], with convergence detection (p-stability,
//!   §2.3) and the iterations-to-fixpoint boundedness probe (§4);
//! * [`fused`] — fused ground+eval: streams grounded rules straight into
//!   the semi-naive ⊕-worklist, never materializing the rule vector;
//! * [`csr`] — compact CSR storage for rules that must be retained;
//! * [`prooftree`] — tight proof trees and brute-force provenance
//!   polynomials (§2.4), the small-instance oracle;
//! * [`expansion`] — CQ expansions, homomorphisms, and Theorem 4.6
//!   boundedness evidence;
//! * [`mod@classify`] — the paper's fragments (linear, monadic, chain,
//!   connected);
//! * [`magic`] — the magic-set rewriting behind Theorem 5.8;
//! * [`to_cfg`] — the chain-Datalog ↔ CFG correspondence (Prop 5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classify;
pub mod csr;
pub mod database;
pub mod eval;
pub mod expansion;
pub mod fused;
pub mod fxhash;
pub mod ground;
pub mod magic;
pub mod par;
pub mod parser;
pub mod prooftree;
pub mod symbols;
pub mod to_cfg;

pub use provcirc_error::Error;

pub use ast::{Atom, Program, Rule, Term};
pub use classify::{classify, ProgramClass};
pub use csr::CompactRules;
pub use database::{Database, FactId};
pub use eval::{
    default_budget, dependency_csr, edb_factors, eval_all_ones, eval_with_strategy, ico,
    naive_eval, par_eval_with_strategy, par_eval_with_strategy_recorded, par_ico, par_naive_eval,
    par_naive_eval_recorded, par_semi_naive_eval, par_semi_naive_eval_recorded, provenance_eval,
    semi_naive_eval, semi_naive_eval_recorded, EvalOutcome, EvalStrategy,
};
pub use expansion::{boundedness_evidence, expansions, homomorphism, BoundednessEvidence, Cq};
pub use fused::{
    fused_eval, fused_eval_recorded, fused_eval_retaining, par_fused_eval, par_fused_eval_recorded,
    FusedOutcome,
};
pub use ground::{
    extend_grounding, ground, ground_with_limit, par_ground, par_ground_with_limit,
    par_ground_with_limit_recorded, retract_facts_from_grounding, GroundedProgram, GroundedRule,
};
pub use magic::{magic_point_eval, magic_rewrite, MagicPointOutcome, MagicRewrite};
pub use parser::parse_program;
pub use prooftree::{provenance_polynomial, tight_proof_trees, ProofNode, TightTrees};
pub use symbols::{ConstId, Interner, PredId};
pub use to_cfg::{cfg_to_chain, chain_to_cfg};

/// Well-known example programs from the paper.
pub mod programs {
    use crate::ast::Program;
    use crate::parser::parse_program;

    /// Transitive closure (Example 2.1, first program).
    pub fn transitive_closure() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").expect("static")
    }

    /// Reachability from an `A`-node (Example 2.1, second program) —
    /// monadic linear connected.
    pub fn monadic_reachability() -> Program {
        parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").expect("static")
    }

    /// Example 4.2 — bounded over any absorptive semiring, equivalent to a
    /// UCQ, but *disconnected*.
    pub fn bounded_example() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").expect("static")
    }

    /// Dyck-1 reachability (Example 6.4) — non-linear chain program with
    /// the polynomial fringe property.
    pub fn dyck1() -> Program {
        parse_program(
            "S(X,Y) :- L(X,Z), R(Z,Y).\n\
             S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).\n\
             S(X,Y) :- S(X,Z), S(Z,Y).",
        )
        .expect("static")
    }

    /// Same-generation — the classic non-chain linear program.
    pub fn same_generation() -> Program {
        parse_program(
            "SG(X,Y) :- F(X,Y).\n\
             SG(X,Y) :- U(X,W), SG(W,Z), D(Z,Y).",
        )
        .expect("static")
    }

    /// A finite RPQ `E·E·E` (bounded; Θ(log n)-depth circuits by Thm 5.3).
    pub fn three_hops() -> Program {
        parse_program("P(X,Y) :- E(X,Z1), E(Z1,Z2), E(Z2,Y).").expect("static")
    }
}
