//! Crate-internal scoped-thread task runner shared by the parallel
//! grounding and evaluation paths.
//!
//! No dependencies: plain `std::thread::scope`. Tasks are indexed `0..count`
//! and results are returned **in task order**, whatever interleaving the
//! threads ran them in — every caller relies on this to keep parallel
//! output bit-identical to the sequential enumeration (the task order *is*
//! the sequential order). With `threads <= 1` the tasks run inline on the
//! caller's thread, so the single-threaded configuration spawns nothing and
//! is exactly the sequential code path.

/// Split `len` items into at most `threads` contiguous shards:
/// `(lo, hi)` bounds in ascending order, covering `0..len` exactly, never
/// empty. The single source of the shard-range arithmetic every parallel
/// stage relies on for deterministic, order-preserving concatenation.
pub(crate) fn shard_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = threads.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..shards)
        .map(|s| ((s * chunk).min(len), ((s + 1) * chunk).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Run `f(lo, hi)` over the [`shard_bounds`] of `len` items on up to
/// `threads` workers; results in shard order.
pub(crate) fn run_sharded<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let bounds = shard_bounds(len, threads);
    run_indexed(bounds.len(), threads, move |s| {
        let (lo, hi) = bounds[s];
        f(lo, hi)
    })
}

/// Run `count` indexed tasks on up to `threads` scoped worker threads and
/// return their results in task-index order.
///
/// Workers pick tasks round-robin (`worker w` runs tasks `w, w + workers,
/// …`), which balances shards of uneven cost without any synchronization
/// beyond the final join.
pub(crate) fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < count {
                        out.push((i, f(i)));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel task worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, t) in bucket.drain(..) {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task index is assigned to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1usize, 2, 4, 8] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn zero_and_single_task_edges() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for len in [0usize, 1, 2, 3, 5, 7, 16, 100] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let bounds = shard_bounds(len, threads);
                assert!(bounds.len() <= threads.max(1));
                let mut expect = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect, "len={len} threads={threads}");
                    assert!(lo < hi, "len={len} threads={threads}");
                    expect = hi;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn run_sharded_concatenates_in_order() {
        for threads in [1usize, 3, 8] {
            let out: Vec<Vec<usize>> = run_sharded(17, threads, |lo, hi| (lo..hi).collect());
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..17).collect::<Vec<_>>(), "{threads}");
        }
    }
}
