//! Crate-internal scoped-thread task runner shared by the parallel
//! grounding and evaluation paths.
//!
//! No dependencies: plain `std::thread::scope`. Tasks are indexed `0..count`
//! and results are returned **in task order**, whatever interleaving the
//! threads ran them in — every caller relies on this to keep parallel
//! output bit-identical to the sequential enumeration (the task order *is*
//! the sequential order). With `threads <= 1` the tasks run inline on the
//! caller's thread, so the single-threaded configuration spawns nothing and
//! is exactly the sequential code path.

use telemetry::{Recorder, ShardStats, Stage};

/// Split `len` items into at most `threads` contiguous shards:
/// `(lo, hi)` bounds in ascending order, covering `0..len` exactly, never
/// empty. The single source of the shard-range arithmetic every parallel
/// stage relies on for deterministic, order-preserving concatenation.
pub(crate) fn shard_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = threads.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..shards)
        .map(|s| ((s * chunk).min(len), ((s + 1) * chunk).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Run `f(lo, hi)` over the [`shard_bounds`] of `len` items on up to
/// `threads` workers (results in shard order), with per-worker telemetry:
/// see [`run_indexed_recorded`]. A disabled `rec` (e.g. [`telemetry::NOOP`])
/// runs the plain un-instrumented sharded loop.
pub(crate) fn run_sharded_recorded<T, F, P>(
    len: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    produced: P,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    P: Fn(&T) -> u64,
{
    let bounds = shard_bounds(len, threads);
    run_indexed_recorded(bounds.len(), threads, rec, stage, produced, move |s| {
        let (lo, hi) = bounds[s];
        f(lo, hi)
    })
}

/// [`run_indexed`] with per-worker telemetry: when `rec` is enabled, each
/// task's wall-clock is measured and attributed to the worker that ran it
/// (the round-robin assignment `task i → worker i mod workers` is
/// deterministic, so attribution needs no extra synchronization), and one
/// [`ShardStats`] per participating worker is reported — busy time, task
/// count, and the `produced(result)` sum. Disabled recorders take the
/// un-instrumented [`run_indexed`] path untouched: no clock is read.
pub(crate) fn run_indexed_recorded<T, F, P>(
    count: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    produced: P,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(&T) -> u64,
{
    if !rec.enabled() {
        return run_indexed(count, threads, f);
    }
    let workers = if threads <= 1 || count <= 1 {
        1
    } else {
        threads.min(count)
    };
    let timed: Vec<(T, u64)> = run_indexed(count, threads, |i| {
        let start = std::time::Instant::now();
        let t = f(i);
        (t, start.elapsed().as_nanos() as u64)
    });
    let mut stats = vec![ShardStats::default(); workers];
    for (i, (t, nanos)) in timed.iter().enumerate() {
        let s = &mut stats[i % workers];
        s.busy_nanos += nanos;
        s.tasks += 1;
        s.produced += produced(t);
    }
    for (w, s) in stats.iter_mut().enumerate() {
        if s.tasks > 0 {
            s.worker = w as u64;
            rec.shard(stage, *s);
        }
    }
    timed.into_iter().map(|(t, _)| t).collect()
}

/// Run `count` indexed tasks on up to `threads` scoped worker threads and
/// return their results in task-index order.
///
/// Workers pick tasks round-robin (`worker w` runs tasks `w, w + workers,
/// …`), which balances shards of uneven cost without any synchronization
/// beyond the final join.
pub(crate) fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < count {
                        out.push((i, f(i)));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel task worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, t) in bucket.drain(..) {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task index is assigned to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1usize, 2, 4, 8] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn zero_and_single_task_edges() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for len in [0usize, 1, 2, 3, 5, 7, 16, 100] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let bounds = shard_bounds(len, threads);
                assert!(bounds.len() <= threads.max(1));
                let mut expect = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect, "len={len} threads={threads}");
                    assert!(lo < hi, "len={len} threads={threads}");
                    expect = hi;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn run_sharded_concatenates_in_order() {
        for threads in [1usize, 3, 8] {
            let out: Vec<Vec<usize>> = run_sharded_recorded(
                17,
                threads,
                &telemetry::NOOP,
                Stage::Eval,
                |v: &Vec<usize>| v.len() as u64,
                |lo, hi| (lo..hi).collect(),
            );
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..17).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn recorded_runs_report_per_worker_stats() {
        // Every task must be attributed to exactly one worker, with the
        // produced counts summing to the total across workers.
        for threads in [1usize, 2, 4] {
            let m = telemetry::PipelineMetrics::new(true);
            let out =
                run_indexed_recorded(10, threads, &m, Stage::GroundPhase2, |&x| x as u64, |i| i);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
            let r = m.report();
            let workers = threads.clamp(1, 10);
            assert_eq!(r.shards.len(), workers, "threads={threads}");
            let tasks: u64 = r.shards.iter().map(|(_, a)| a.tasks).sum();
            let produced: u64 = r.shards.iter().map(|(_, a)| a.produced).sum();
            assert_eq!(tasks, 10);
            assert_eq!(produced, (0..10u64).sum::<u64>());
        }
    }

    #[test]
    fn disabled_recorder_reports_nothing() {
        let m = telemetry::PipelineMetrics::new(false);
        let out = run_indexed_recorded(5, 4, &m, Stage::Eval, |_| 1, |i| i);
        assert_eq!(out, (0..5).collect::<Vec<_>>());
        assert!(m.report().shards.is_empty());
    }
}
