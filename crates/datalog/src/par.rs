//! Owner-sharded work-stealing task runner shared by the parallel
//! grounding, evaluation, fused, and circuit-evaluation paths.
//!
//! No dependencies: plain `std::thread::scope` plus per-range atomic
//! cursors. The scheduler executes `count` indexed tasks on up to
//! `threads` workers and returns the results **in task order**, whatever
//! interleaving the threads ran them in — every caller relies on this to
//! keep parallel output bit-identical to the sequential enumeration (the
//! task order *is* the sequential order).
//!
//! Three pieces compose the design:
//!
//! * **Chunked ranges + work stealing.** Each worker owns a contiguous
//!   range of task indices ([`shard_bounds`]) with a shared atomic
//!   cursor. The owner claims indices with `fetch_add`; a worker whose
//!   range is exhausted scans the other ranges and claims leftover
//!   indices with `compare_exchange`. Both are read-modify-write ops on
//!   the same atomic, so every index is claimed exactly once. Stealing
//!   changes *who executes* a task, never which task produces which
//!   result slot — determinism is preserved by reassembling results into
//!   task order. Callers split uneven frontiers into more chunks than
//!   workers ([`chunk_bounds`]) so one expensive chunk no longer
//!   serializes a whole round.
//! * **Owner partitioning.** Accumulating stages (⊕ into per-head
//!   slots) partition heads by [`owner_of`] — a fixed splitmix64 hash,
//!   never a randomized `HashMap` state — so each owner drains a
//!   disjoint accumulator slice with no cross-worker writes and no
//!   ⊕-merge step. Producers deposit `(head, contribution)` pairs into
//!   per-(chunk, owner) mailboxes; each mailbox has one producer (the
//!   worker executing that chunk) and one consumer (the owner), and
//!   owners drain their column in ascending chunk order, which is the
//!   sequential contribution order.
//! * **Honest attribution.** With telemetry enabled, each task is timed
//!   and attributed to the worker that *actually executed it* (stealing
//!   makes `task i mod workers` wrong), including a per-worker steal
//!   count. With telemetry disabled no clock is ever read and the
//!   un-instrumented scheduler runs untouched.
//!
//! With `threads <= 1` the tasks run inline on the caller's thread, so
//! the single-threaded configuration spawns nothing, touches no atomics,
//! and is exactly the sequential code path.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use telemetry::{Recorder, ShardStats, Stage};

/// Split `len` items into at most `threads` contiguous shards:
/// `(lo, hi)` bounds in ascending order, covering `0..len` exactly, never
/// empty. The single source of the shard-range arithmetic every parallel
/// stage relies on for deterministic, order-preserving concatenation.
pub fn shard_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = threads.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..shards)
        .map(|s| ((s * chunk).min(len), ((s + 1) * chunk).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// How many chunks per worker [`chunk_bounds`] aims for. More chunks →
/// finer stealing granularity → better balance under skew, at the cost of
/// more per-chunk overhead.
const CHUNKS_PER_WORKER: usize = 4;

/// Split `len` items into contiguous steal-granularity chunks: about
/// `CHUNKS_PER_WORKER` (4) × `threads` of them, covering `0..len` exactly in
/// ascending order. A pure function of `(len, threads)` — the chunking is
/// part of the deterministic task order, so it must not depend on timing
/// or core count.
pub fn chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    shard_bounds(len, threads.max(1).saturating_mul(CHUNKS_PER_WORKER))
}

/// The owner partition of head-fact `head` among `owners` workers: a
/// fixed splitmix64 hash, identical on every run and every thread count.
/// Each owner ⊕-accumulates a disjoint slice of heads, so owner drains
/// need no locks and no merge step.
pub fn owner_of(head: u32, owners: usize) -> usize {
    debug_assert!(owners > 0);
    let mut z = (head as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % owners as u64) as usize
}

/// One executed task: its index, result, and (when timed) attribution.
struct TaskRun<T> {
    task: usize,
    result: T,
    nanos: u64,
    stolen: bool,
}

fn run_one<T>(task: usize, stolen: bool, timed: bool, f: &impl Fn(usize) -> T) -> TaskRun<T> {
    // `timed` is the only clock gate: the disabled-telemetry path passes
    // `false` and never constructs an `Instant`.
    let start = timed.then(std::time::Instant::now);
    let result = f(task);
    let nanos = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
    TaskRun {
        task,
        result,
        nanos,
        stolen,
    }
}

/// The work-stealing core: execute tasks `0..count` on `workers` scoped
/// threads and return each worker's executed tasks (unordered across
/// workers; reassembled by the callers). Worker `w` owns the `w`-th range
/// of [`shard_bounds`]`(count, workers)` and claims indices from its
/// cursor with `fetch_add`; once exhausted it scans the other ranges
/// `(w+1.., then 0..w)` and claims stragglers with `compare_exchange`.
/// Cursors are monotone, and both claim paths are RMW ops on the same
/// atomic, so every index is executed exactly once; a full scan that
/// observes every cursor at its bound proves no unclaimed work remains.
fn run_stealing<T, F>(count: usize, workers: usize, timed: bool, f: &F) -> Vec<Vec<TaskRun<T>>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let bounds = shard_bounds(count, workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| bounds.get(w).copied().unwrap_or((count, count)))
        .collect();
    let cursors: Vec<AtomicUsize> = ranges.iter().map(|&(lo, _)| AtomicUsize::new(lo)).collect();
    std::thread::scope(|s| {
        let (ranges, cursors) = (&ranges, &cursors);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out: Vec<TaskRun<T>> = Vec::new();
                    let hi = ranges[w].1;
                    loop {
                        let i = cursors[w].fetch_add(1, Relaxed);
                        if i >= hi {
                            break;
                        }
                        out.push(run_one(i, false, timed, f));
                    }
                    loop {
                        let mut claimed = false;
                        for v in (w + 1..workers).chain(0..w) {
                            let vhi = ranges[v].1;
                            loop {
                                let cur = cursors[v].load(Relaxed);
                                if cur >= vhi {
                                    break;
                                }
                                if cursors[v]
                                    .compare_exchange(cur, cur + 1, Relaxed, Relaxed)
                                    .is_ok()
                                {
                                    out.push(run_one(cur, true, timed, f));
                                    claimed = true;
                                }
                            }
                        }
                        if !claimed {
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel task worker panicked"))
            .collect()
    })
}

fn reassemble<T>(count: usize, buckets: Vec<Vec<TaskRun<T>>>) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for bucket in buckets {
        for run in bucket {
            slots[run.task] = Some(run.result);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task index is claimed by exactly one worker"))
        .collect()
}

/// Run `count` indexed tasks on up to `threads` scoped worker threads
/// (work-stealing; see the module docs) and return their results in
/// task-index order. With `threads <= 1` or a single task this is exactly
/// the inline sequential loop.
pub fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    reassemble(count, run_stealing(count, workers, false, &f))
}

/// [`run_indexed`] with per-worker telemetry: when `rec` is enabled, each
/// task's wall-clock is measured and attributed to the worker that
/// **actually executed it** (under stealing the old deterministic
/// `task i mod workers` attribution would lie), together with its steal
/// count and the `(produced, mailbox)` sums `stats_of` extracts from each
/// result. One [`ShardStats`] is reported per worker that executed at
/// least one task — stealing means idle workers are possible and the
/// shard count can be below `threads`. Disabled recorders take the
/// un-instrumented [`run_indexed`] path untouched: no clock is read.
pub fn run_indexed_stats<T, F, P>(
    count: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    stats_of: P,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(&T) -> (u64, u64),
{
    if !rec.enabled() {
        return run_indexed(count, threads, f);
    }
    if threads <= 1 || count <= 1 {
        let mut stats = ShardStats::default();
        let out: Vec<T> = (0..count)
            .map(|i| {
                let run = run_one(i, false, true, &f);
                stats.busy_nanos += run.nanos;
                stats.tasks += 1;
                let (produced, mailbox) = stats_of(&run.result);
                stats.produced += produced;
                stats.mailbox += mailbox;
                run.result
            })
            .collect();
        if stats.tasks > 0 {
            rec.shard(stage, stats);
        }
        return out;
    }
    let workers = threads.min(count);
    let buckets = run_stealing(count, workers, true, &f);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (w, bucket) in buckets.into_iter().enumerate() {
        let mut stats = ShardStats {
            worker: w as u64,
            ..Default::default()
        };
        for run in bucket {
            stats.busy_nanos += run.nanos;
            stats.tasks += 1;
            stats.steals += run.stolen as u64;
            let (produced, mailbox) = stats_of(&run.result);
            stats.produced += produced;
            stats.mailbox += mailbox;
            slots[run.task] = Some(run.result);
        }
        if stats.tasks > 0 {
            rec.shard(stage, stats);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every task index is claimed by exactly one worker"))
        .collect()
}

/// [`run_indexed_stats`] for stages without owner mailboxes: `produced`
/// extracts the per-result item count and the mailbox volume is 0.
pub fn run_indexed_recorded<T, F, P>(
    count: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    produced: P,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(&T) -> u64,
{
    run_indexed_stats(count, threads, rec, stage, move |t| (produced(t), 0), f)
}

/// Run `f(lo, hi)` over the [`chunk_bounds`] of `len` items on up to
/// `threads` workers (results in chunk order, whose concatenation is the
/// sequential `0..len` order), with per-worker telemetry: see
/// [`run_indexed_recorded`]. A disabled `rec` (e.g. [`telemetry::NOOP`])
/// runs the plain un-instrumented scheduler.
pub fn run_sharded_recorded<T, F, P>(
    len: usize,
    threads: usize,
    rec: &dyn Recorder,
    stage: Stage,
    produced: P,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    P: Fn(&T) -> u64,
{
    let bounds = chunk_bounds(len, threads);
    run_indexed_recorded(bounds.len(), threads, rec, stage, produced, move |s| {
        let (lo, hi) = bounds[s];
        f(lo, hi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for threads in [1usize, 2, 4, 8] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn zero_and_single_task_edges() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn skewed_task_costs_still_reassemble_in_order() {
        // One hub task is ~1000× the rest; stealing must not perturb the
        // result order.
        for threads in [2usize, 4, 8] {
            let out = run_indexed(33, threads, |i| {
                let iters = if i == 0 { 100_000u64 } else { 100 };
                (0..iters).fold(i as u64, |a, x| a.wrapping_mul(31).wrapping_add(x))
            });
            let expect: Vec<u64> = (0..33)
                .map(|i| {
                    let iters = if i == 0 { 100_000u64 } else { 100 };
                    (0..iters).fold(i as u64, |a, x| a.wrapping_mul(31).wrapping_add(x))
                })
                .collect();
            assert_eq!(out, expect, "{threads}");
        }
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for len in [0usize, 1, 2, 3, 5, 7, 16, 100] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let bounds = shard_bounds(len, threads);
                assert!(bounds.len() <= threads.max(1));
                let mut expect = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect, "len={len} threads={threads}");
                    assert!(lo < hi, "len={len} threads={threads}");
                    expect = hi;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly_and_oversplit() {
        for len in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 4, 8] {
                let bounds = chunk_bounds(len, threads);
                assert!(bounds.len() <= threads * CHUNKS_PER_WORKER);
                let mut expect = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect, "len={len} threads={threads}");
                    assert!(lo < hi);
                    expect = hi;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
                // Deterministic: pure function of (len, threads).
                assert_eq!(bounds, chunk_bounds(len, threads));
            }
        }
        // Enough chunks to steal from when the input is large.
        assert_eq!(chunk_bounds(1000, 4).len(), 16);
    }

    #[test]
    fn owner_of_is_stable_and_in_range() {
        for owners in [1usize, 2, 3, 8] {
            for head in [0u32, 1, 7, 1000, u32::MAX] {
                let o = owner_of(head, owners);
                assert!(o < owners);
                assert_eq!(o, owner_of(head, owners));
            }
        }
        // The hash spreads consecutive heads across owners (splitmix64,
        // not `head % owners` — contiguous head ranges must not all land
        // on one owner).
        let spread: std::collections::HashSet<usize> = (0..64u32).map(|h| owner_of(h, 4)).collect();
        assert_eq!(spread.len(), 4);
    }

    #[test]
    fn run_sharded_concatenates_in_order() {
        for threads in [1usize, 3, 8] {
            let out: Vec<Vec<usize>> = run_sharded_recorded(
                17,
                threads,
                &telemetry::NOOP,
                Stage::Eval,
                |v: &Vec<usize>| v.len() as u64,
                |lo, hi| (lo..hi).collect(),
            );
            let flat: Vec<usize> = out.into_iter().flatten().collect();
            assert_eq!(flat, (0..17).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn recorded_runs_report_per_worker_stats() {
        // Every task is attributed to the worker that actually executed
        // it; the task/produced sums are exact even though stealing makes
        // the per-worker split timing-dependent.
        for threads in [1usize, 2, 4] {
            let m = telemetry::PipelineMetrics::new(true);
            let out =
                run_indexed_recorded(10, threads, &m, Stage::GroundPhase2, |&x| x as u64, |i| i);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
            let r = m.report();
            let workers = threads.clamp(1, 10);
            assert!(
                !r.shards.is_empty() && r.shards.len() <= workers,
                "threads={threads} shards={}",
                r.shards.len()
            );
            let tasks: u64 = r.shards.iter().map(|(_, a)| a.tasks).sum();
            let produced: u64 = r.shards.iter().map(|(_, a)| a.produced).sum();
            let steals: u64 = r.shards.iter().map(|(_, a)| a.steals).sum();
            assert_eq!(tasks, 10);
            assert_eq!(produced, (0..10u64).sum::<u64>());
            assert!(steals <= tasks);
        }
    }

    #[test]
    fn mailbox_volume_is_summed_per_worker() {
        let m = telemetry::PipelineMetrics::new(true);
        let out = run_indexed_stats(6, 2, &m, Stage::Eval, |&x: &u64| (1, x), |i| i as u64 * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        let r = m.report();
        let mailbox: u64 = r.shards.iter().map(|(_, a)| a.mailbox).sum();
        assert_eq!(mailbox, 150);
    }

    #[test]
    fn disabled_recorder_reports_nothing() {
        let m = telemetry::PipelineMetrics::new(false);
        let out = run_indexed_recorded(5, 4, &m, Stage::Eval, |_| 1, |i| i);
        assert_eq!(out, (0..5).collect::<Vec<_>>());
        assert!(m.report().shards.is_empty());
    }

    #[test]
    fn untimed_stealing_never_reads_the_clock() {
        // The `timed` flag is the only clock gate in the scheduler: the
        // disabled-telemetry path must leave every task's nanos untouched
        // (regression for the attribution rework — timing must not leak
        // into the un-instrumented path).
        let buckets = run_stealing(16, 4, false, &|i| i);
        let mut seen = 0usize;
        for bucket in &buckets {
            for run in bucket {
                assert_eq!(run.nanos, 0);
                seen += 1;
            }
        }
        assert_eq!(seen, 16);
    }

    #[test]
    fn every_task_is_claimed_exactly_once_under_contention() {
        for _ in 0..20 {
            let out = run_indexed(97, 8, |i| i);
            assert_eq!(out, (0..97).collect::<Vec<_>>());
        }
    }
}
