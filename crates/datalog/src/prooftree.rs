//! Tight proof-tree enumeration and brute-force provenance polynomials
//! (paper §2.1 Definition 2.2, §2.4).
//!
//! A proof tree is *tight* if no leaf-to-root path repeats an IDB fact; over
//! absorptive semirings the provenance polynomial restricted to tight trees
//! equals the full (possibly infinite) proof-tree sum (Proposition 2.4).
//! Enumeration is exponential and serves as the small-instance oracle
//! against which circuits and naive evaluation are verified.

use semiring::{Monomial, Sorp};

use crate::database::FactId;
use crate::ground::GroundedProgram;

/// A node of a proof tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofNode {
    /// A leaf: an EDB fact (labeled by its provenance variable).
    Edb(FactId),
    /// An internal node: an IDB fact derived by a grounded rule.
    Idb {
        /// Index into [`GroundedProgram::idb_facts`].
        fact: usize,
        /// Index into [`GroundedProgram::rules`].
        rule: usize,
        /// Children, in rule-body order (IDB subtrees then EDB leaves).
        children: Vec<ProofNode>,
    },
}

impl ProofNode {
    /// Number of leaves (the *fringe* size of §6.1).
    pub fn num_leaves(&self) -> usize {
        match self {
            ProofNode::Edb(_) => 1,
            ProofNode::Idb { children, .. } => children.iter().map(ProofNode::num_leaves).sum(),
        }
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        match self {
            ProofNode::Edb(_) => 0,
            ProofNode::Idb { children, .. } => {
                1 + children.iter().map(ProofNode::height).max().unwrap_or(0)
            }
        }
    }

    /// The monomial of the tree: the product of the leaf variables with
    /// multiplicity (paper §2.4).
    pub fn monomial(&self) -> Monomial {
        let mut leaves = Vec::new();
        self.collect_leaves(&mut leaves);
        Monomial::from_pairs(leaves.into_iter().map(|f| (f, 1)))
    }

    fn collect_leaves(&self, out: &mut Vec<FactId>) {
        match self {
            ProofNode::Edb(f) => out.push(*f),
            ProofNode::Idb { children, .. } => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
        }
    }
}

/// Result of enumeration: the trees found, and whether the cap was hit.
#[derive(Clone, Debug)]
pub struct TightTrees {
    /// The enumerated tight proof trees.
    pub trees: Vec<ProofNode>,
    /// True if enumeration stopped at the cap (the list is incomplete).
    pub truncated: bool,
}

/// Enumerate all tight proof trees of `fact`, up to `cap` trees.
pub fn tight_proof_trees(gp: &GroundedProgram, fact: usize, cap: usize) -> TightTrees {
    let mut path = Vec::new();
    let mut truncated = false;
    let trees = trees_for(gp, fact, &mut path, cap, &mut truncated);
    TightTrees { trees, truncated }
}

fn trees_for(
    gp: &GroundedProgram,
    fact: usize,
    path: &mut Vec<usize>,
    cap: usize,
    truncated: &mut bool,
) -> Vec<ProofNode> {
    let mut out = Vec::new();
    path.push(fact);
    'rules: for &ri in &gp.rules_by_head[fact] {
        let rule = &gp.rules[ri];
        // Tightness: a child equal to an ancestor would repeat a fact on a
        // leaf-to-root path.
        if rule.body_idb.iter().any(|f| path.contains(f)) {
            continue;
        }
        // Subtree options per IDB body fact.
        let mut options: Vec<Vec<ProofNode>> = Vec::with_capacity(rule.body_idb.len());
        for &child in &rule.body_idb {
            let sub = trees_for(gp, child, path, cap, truncated);
            if sub.is_empty() {
                continue 'rules;
            }
            options.push(sub);
        }
        // Cartesian product of subtree choices.
        let mut combos: Vec<Vec<ProofNode>> = vec![Vec::new()];
        for opts in &options {
            let mut next = Vec::new();
            for combo in &combos {
                for opt in opts {
                    let mut c = combo.clone();
                    c.push(opt.clone());
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            if out.len() >= cap {
                *truncated = true;
                break 'rules;
            }
            let mut children = combo;
            children.extend(rule.body_edb.iter().map(|&f| ProofNode::Edb(f)));
            out.push(ProofNode::Idb {
                fact,
                rule: ri,
                children,
            });
        }
    }
    path.pop();
    out
}

/// The provenance polynomial of `fact` by brute-force enumeration
/// (`None` if more than `cap` tight trees exist).
pub fn provenance_polynomial(gp: &GroundedProgram, fact: usize, cap: usize) -> Option<Sorp> {
    let t = tight_proof_trees(gp, fact, cap);
    if t.truncated {
        return None;
    }
    Some(Sorp::from_monomials(
        t.trees.iter().map(ProofNode::monomial),
    ))
}

/// The maximum fringe (leaf count) over all tight proof trees of `fact` —
/// the quantity bounded by the polynomial fringe property (Definition 6.1).
pub fn max_fringe(gp: &GroundedProgram, fact: usize, cap: usize) -> Option<usize> {
    let t = tight_proof_trees(gp, fact, cap);
    if t.truncated {
        return None;
    }
    t.trees.iter().map(ProofNode::num_leaves).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval;
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;

    fn tc_on(g: &graphgen::LabeledDigraph) -> (crate::ast::Program, Database, GroundedProgram) {
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = ground(&p, &db).unwrap();
        (p, db, gp)
    }

    #[test]
    fn figure1_has_three_tight_trees_for_t_s_t() {
        // Figure 1: "There are two other proof trees for T(s,t)" — three
        // total.
        let mut g = graphgen::LabeledDigraph::new(6);
        g.add_edge(0, 1, "E"); // s→u1
        g.add_edge(0, 2, "E"); // s→u2
        g.add_edge(1, 3, "E"); // u1→v1
        g.add_edge(1, 4, "E"); // u1→v2
        g.add_edge(2, 4, "E"); // u2→v2
        g.add_edge(3, 5, "E"); // v1→t
        g.add_edge(4, 5, "E"); // v2→t
        let (p, db, gp) = tc_on(&g);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(5).unwrap()])
            .unwrap();
        let trees = tight_proof_trees(&gp, i, 1000);
        assert!(!trees.truncated);
        assert_eq!(trees.trees.len(), 3);
        // Each tree has 3 leaves (a 3-edge path) and the example's shape.
        for tree in &trees.trees {
            assert_eq!(tree.num_leaves(), 3);
            assert_eq!(tree.height(), 3); // left-deep: T(s,t)→T(s,v)→T(s,u)→E
        }
    }

    #[test]
    fn enumeration_agrees_with_naive_sorp_eval() {
        for seed in 0..5u64 {
            let g = generators::gnm(6, 10, &["E"], seed);
            let (_, _, gp) = tc_on(&g);
            let out = eval::provenance_eval(&gp, eval::default_budget(&gp));
            assert!(out.converged);
            for fact in 0..gp.num_idb_facts() {
                if let Some(poly) = provenance_polynomial(&gp, fact, 20_000) {
                    assert_eq!(poly, out.values[fact], "seed {seed} fact {fact}");
                }
            }
        }
    }

    #[test]
    fn cycles_have_finitely_many_tight_trees() {
        let g = generators::cycle(3, "E");
        let (p, db, gp) = tc_on(&g);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(1).unwrap()])
            .unwrap();
        let trees = tight_proof_trees(&gp, i, 100_000);
        assert!(!trees.truncated, "tight trees must be finite (paper §2.1)");
        assert!(!trees.trees.is_empty());
    }

    #[test]
    fn linear_program_fringe_is_linear() {
        // TC is linear: tight trees are left-deep paths; fringe = path
        // length ≤ m (polynomial fringe property, §6.1).
        let g = generators::path(5, "E");
        let (p, db, gp) = tc_on(&g);
        let t = p.preds.get("T").unwrap();
        let i = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(5).unwrap()])
            .unwrap();
        assert_eq!(max_fringe(&gp, i, 10_000), Some(5));
    }

    #[test]
    fn monomial_counts_leaf_multiplicity() {
        let leaf = ProofNode::Edb(7);
        let node = ProofNode::Idb {
            fact: 0,
            rule: 0,
            children: vec![leaf.clone(), leaf],
        };
        assert_eq!(node.monomial(), Monomial::from_pairs([(7, 2)]));
    }
}
