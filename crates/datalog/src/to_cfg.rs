//! The chain-Datalog ↔ CFG correspondence (paper §5, Proposition 5.2).
//!
//! IDB predicates ↦ non-terminals, EDB predicates ↦ terminals, rules ↦
//! productions with variables erased; the target IDB is the start symbol.

use grammar::{Cfg, Symbol};
use provcirc_error::Error;

use crate::ast::{Atom, Program, Rule, Term};
use crate::classify::classify;

/// Convert a basic chain Datalog program to its CFG.
pub fn chain_to_cfg(program: &Program) -> Result<Cfg, Error> {
    if !classify(program).is_chain {
        return Err(Error::unsupported("program is not basic chain Datalog"));
    }
    let idbs = program.idbs();
    let mut cfg = Cfg::new(program.preds.name(program.target));
    for rule in &program.rules {
        let head = cfg.nonterminal(program.preds.name(rule.head.pred));
        let body = rule
            .body
            .iter()
            .map(|a| {
                if idbs.contains(&a.pred) {
                    Symbol::N(cfg.nonterminal(program.preds.name(a.pred)))
                } else {
                    Symbol::T(cfg.terminal(program.preds.name(a.pred)))
                }
            })
            .collect();
        cfg.add_production(head, body);
    }
    Ok(cfg)
}

/// Convert a CFG (without ε-productions) to the corresponding basic chain
/// Datalog program.
pub fn cfg_to_chain(cfg: &Cfg) -> Result<Program, Error> {
    let mut program = Program::new(cfg.nonterminal_name(cfg.start));
    for production in &cfg.productions {
        if production.body.is_empty() {
            return Err(Error::unsupported(
                "ε-productions have no chain-Datalog counterpart (a safe rule needs a body)",
            ));
        }
        let head_pred = program.preds.intern(cfg.nonterminal_name(production.head));
        let k = production.body.len();
        // Variables X0 … Xk chain through the body.
        let vars: Vec<u32> = (0..=k)
            .map(|i| program.vars.intern(&format!("X{i}")))
            .collect();
        let body = production
            .body
            .iter()
            .enumerate()
            .map(|(i, sym)| {
                let pred = match sym {
                    Symbol::N(n) => program.preds.intern(cfg.nonterminal_name(*n)),
                    Symbol::T(t) => program.preds.intern(cfg.alphabet.name(*t)),
                };
                Atom {
                    pred,
                    terms: vec![Term::Var(vars[i]), Term::Var(vars[i + 1])],
                }
            })
            .collect();
        program.rules.push(Rule {
            head: Atom {
                pred: head_pred,
                terms: vec![Term::Var(vars[0]), Term::Var(vars[k])],
            },
            body,
        });
    }
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use grammar::{CfgAnalysis, Cnf, LanguageSize};

    #[test]
    fn tc_maps_to_its_grammar() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let cfg = chain_to_cfg(&p).unwrap();
        // T ← E | T E, an infinite regular language.
        assert!(cfg.is_left_linear());
        let analysis = CfgAnalysis::new(&Cnf::from_cfg(&cfg));
        assert_eq!(*analysis.language_size(), LanguageSize::Infinite);
    }

    #[test]
    fn round_trip_preserves_shape() {
        let cfg = Cfg::dyck1();
        let p = cfg_to_chain(&cfg).unwrap();
        assert!(classify(&p).is_chain);
        let cfg2 = chain_to_cfg(&p).unwrap();
        assert_eq!(cfg.productions.len(), cfg2.productions.len());
        let analysis = CfgAnalysis::new(&Cnf::from_cfg(&cfg2));
        assert_eq!(*analysis.language_size(), LanguageSize::Infinite);
    }

    #[test]
    fn finite_grammar_round_trips_finite() {
        let cfg = Cfg::parse("S -> a b | c").unwrap();
        let p = cfg_to_chain(&cfg).unwrap();
        let cfg2 = chain_to_cfg(&p).unwrap();
        let analysis = CfgAnalysis::new(&Cnf::from_cfg(&cfg2));
        assert_eq!(*analysis.language_size(), LanguageSize::Finite);
    }

    #[test]
    fn non_chain_programs_are_rejected() {
        let p = parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").unwrap();
        assert!(chain_to_cfg(&p).is_err());
    }

    #[test]
    fn epsilon_productions_are_rejected() {
        let cfg = Cfg::parse("S -> a S b | eps").unwrap();
        assert!(cfg_to_chain(&cfg).is_err());
    }
}
