//! Syntactic classification of Datalog programs into the paper's fragments.
//!
//! * **linear** (§2.1): every rule body has at most one IDB atom — implies
//!   the polynomial fringe property, hence O(log² m)-depth circuits
//!   (Corollary 6.3);
//! * **monadic** (§2.1): every IDB has arity 1 (Theorem 6.5's fragment,
//!   together with linear + connected);
//! * **basic chain** (§5): recursive rules are chain rules — the fragment
//!   with the full Table-1 dichotomy;
//! * **connected** (§6.2): each rule's variable graph is connected.

use std::collections::{HashMap, HashSet};

use crate::ast::{Program, Rule, Term};
use crate::symbols::VarSym;

/// The classification summary of a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramClass {
    /// Every rule has ≤ 1 IDB body atom.
    pub is_linear: bool,
    /// Every IDB predicate has arity 1.
    pub is_monadic: bool,
    /// Every rule is a chain rule (basic chain Datalog).
    pub is_chain: bool,
    /// Chain and every recursive rule is left-linear (IDB first),
    /// i.e. the program is an RPQ (Proposition 5.2).
    pub is_left_linear_chain: bool,
    /// Every rule's variable graph is connected.
    pub is_connected: bool,
    /// The program has at least one recursive rule.
    pub is_recursive: bool,
}

/// Classify a program.
pub fn classify(program: &Program) -> ProgramClass {
    let idbs = program.idbs();
    let is_linear = program
        .rules
        .iter()
        .all(|r| r.body.iter().filter(|a| idbs.contains(&a.pred)).count() <= 1);
    let is_monadic = idbs.iter().all(|&p| program.arity(p) == Some(1));
    let is_chain = program.rules.iter().all(|r| is_chain_rule(program, r));
    let is_left_linear_chain = is_chain
        && program.rules.iter().all(|r| {
            // Recursive chain rules must have their (single) IDB atom first.
            let idb_positions: Vec<usize> = r
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, a)| idbs.contains(&a.pred).then_some(i))
                .collect();
            idb_positions.is_empty() || idb_positions == [0]
        });
    let is_connected = program.rules.iter().all(is_connected_rule);
    let is_recursive = program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|a| idbs.contains(&a.pred)));
    ProgramClass {
        is_linear,
        is_monadic,
        is_chain,
        is_left_linear_chain,
        is_connected,
        is_recursive,
    }
}

/// A chain rule (paper §5): `P(x, y) :- Q₀(x, z₁), Q₁(z₁, z₂), …, Q_k(z_k, y)`
/// with all predicates binary and all variables distinct.
pub fn is_chain_rule(program: &Program, rule: &Rule) -> bool {
    let _ = program;
    // Head is binary over two distinct variables.
    let (hx, hy) = match rule.head.terms[..] {
        [Term::Var(x), Term::Var(y)] if x != y => (x, y),
        _ => return false,
    };
    // Body atoms are binary over variables and chain up.
    let mut expected = hx;
    let mut seen: HashSet<VarSym> = HashSet::from([hx]);
    for (i, atom) in rule.body.iter().enumerate() {
        let (a, b) = match atom.terms[..] {
            [Term::Var(a), Term::Var(b)] => (a, b),
            _ => return false,
        };
        if a != expected {
            return false;
        }
        let last = i + 1 == rule.body.len();
        if last {
            if b != hy {
                return false;
            }
        } else {
            // Fresh intermediate variable.
            if b == hy || !seen.insert(b) {
                return false;
            }
        }
        expected = b;
    }
    !rule.body.is_empty()
}

/// Connectivity of a rule's variable graph (paper §6.2): variables are
/// vertices, co-occurrence in an atom is an edge; the rule is connected if
/// the graph is connected and contains the head variables.
pub fn is_connected_rule(rule: &Rule) -> bool {
    let mut vars: HashSet<VarSym> = HashSet::new();
    for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
        vars.extend(atom.vars());
    }
    if vars.is_empty() {
        return true;
    }
    // Union-find over variables via repeated merging.
    let ids: HashMap<VarSym, usize> = vars.iter().copied().zip(0..).collect();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for atom in rule.body.iter() {
        let avars: Vec<usize> = atom.vars().map(|v| ids[&v]).collect();
        for w in avars.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            parent[a] = b;
        }
    }
    // All variables (including head vars) in one component, connected via
    // *body* atoms.
    let mut roots: HashSet<usize> = HashSet::new();
    for (_, &i) in ids.iter() {
        roots.insert(find(&mut parent, i));
    }
    roots.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn tc_is_linear_chain_connected() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let c = classify(&p);
        assert!(c.is_linear);
        assert!(c.is_chain);
        assert!(c.is_left_linear_chain);
        assert!(c.is_connected);
        assert!(c.is_recursive);
        assert!(!c.is_monadic);
    }

    #[test]
    fn dyck_is_chain_but_not_linear() {
        let p = parse_program(
            "S(X,Y) :- L(X,Z), R(Z,Y).\n\
             S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).\n\
             S(X,Y) :- S(X,Z), S(Z,Y).",
        )
        .unwrap();
        let c = classify(&p);
        assert!(!c.is_linear);
        assert!(c.is_chain);
        assert!(!c.is_left_linear_chain);
        assert!(c.is_connected);
    }

    #[test]
    fn monadic_reachability_program() {
        let p = parse_program("U(X) :- A(X).\nU(X) :- U(Y), E(X,Y).").unwrap();
        let c = classify(&p);
        assert!(c.is_monadic);
        assert!(c.is_linear);
        assert!(!c.is_chain);
        assert!(c.is_connected);
    }

    #[test]
    fn disconnected_rule_detected() {
        // Example 4.2: T(x,y) :- A(x), T(z,y) — z not connected to x.
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").unwrap();
        let c = classify(&p);
        assert!(!c.is_connected);
        assert!(c.is_linear);
        assert!(!c.is_chain);
    }

    #[test]
    fn chain_rule_requires_distinct_chained_vars() {
        // Repeated variable breaks the chain shape.
        let p = parse_program("T(X,Y) :- E(X,X), E(X,Y).").unwrap();
        assert!(!classify(&p).is_chain);
        // Right order but skipping the chain also fails.
        let p2 = parse_program("T(X,Y) :- E(X,Z), E(Y,Z).").unwrap();
        assert!(!classify(&p2).is_chain);
    }

    #[test]
    fn right_linear_chain_is_chain_but_not_left_linear() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- E(X,Z), T(Z,Y).").unwrap();
        let c = classify(&p);
        assert!(c.is_chain);
        assert!(!c.is_left_linear_chain);
    }
}
