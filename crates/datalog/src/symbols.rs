//! String interners for predicates, variables and constants.

use std::collections::HashMap;

/// A string interner handing out dense `u32` ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern a name, returning its id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an id by name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = u32> {
        0..self.names.len() as u32
    }
}

/// Predicate id.
pub type PredId = u32;
/// Variable id (program-level, not provenance).
pub type VarSym = u32;
/// Constant id (element of the active domain).
pub type ConstId = u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("T");
        let b = i.intern("E");
        assert_eq!(i.intern("T"), a);
        assert_ne!(a, b);
        assert_eq!(i.name(a), "T");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("E"), Some(b));
        assert_eq!(i.get("missing"), None);
    }
}
