//! EDB databases with provenance-tagged facts (paper §2.4).
//!
//! Every EDB fact gets a dense [`FactId`] that doubles as the provenance
//! variable `x_α` tagging it: circuits use it as an input id, and the
//! [`semiring::Sorp`] oracle uses it as a polynomial variable.

use std::collections::HashMap;

use grammar::Terminal;
use graphgen::LabeledDigraph;

use crate::ast::Program;
use crate::symbols::{ConstId, Interner, PredId};

/// Provenance variable / fact id of an EDB fact.
pub type FactId = u32;

/// An EDB database: relations over an interned active domain.
#[derive(Clone, Debug, Default)]
pub struct Database {
    /// The active domain.
    pub consts: Interner,
    facts: Vec<(PredId, Vec<ConstId>)>,
    index: HashMap<(PredId, Vec<ConstId>), FactId>,
    by_pred: HashMap<PredId, Vec<FactId>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Intern a domain constant.
    pub fn constant(&mut self, name: &str) -> ConstId {
        self.consts.intern(name)
    }

    /// Insert a fact, returning its id (stable across duplicate inserts).
    pub fn insert(&mut self, pred: PredId, tuple: Vec<ConstId>) -> FactId {
        if let Some(&id) = self.index.get(&(pred, tuple.clone())) {
            return id;
        }
        let id = self.facts.len() as FactId;
        self.facts.push((pred, tuple.clone()));
        self.index.insert((pred, tuple), id);
        self.by_pred.entry(pred).or_default().push(id);
        id
    }

    /// Remove a fact, keeping its [`FactId`] slot as a tombstone so every
    /// other fact id stays valid. Returns the removed id, or `None` when
    /// the fact is absent.
    ///
    /// Fact ids are never reused: a later [`insert`](Database::insert) of
    /// the same tuple allocates a *fresh* id. That is what lets the
    /// incremental-maintenance layer retire exactly the grounded rules
    /// referencing the old id and treat a re-insert as genuinely new
    /// support (with a fresh provenance variable).
    pub fn retract(&mut self, pred: PredId, tuple: &[ConstId]) -> Option<FactId> {
        let id = self.index.remove(&(pred, tuple.to_vec()))?;
        if let Some(bucket) = self.by_pred.get_mut(&pred) {
            // Buckets are ascending (insertion order = increasing id).
            if let Ok(i) = bucket.binary_search(&id) {
                bucket.remove(i);
            }
        }
        Some(id)
    }

    /// Whether the fact id is live (not retracted). Tombstoned ids still
    /// resolve through [`fact`](Database::fact) so provenance variables
    /// stay printable, but they no longer join.
    pub fn is_live(&self, id: FactId) -> bool {
        let (p, t) = &self.facts[id as usize];
        self.index.get(&(*p, t.clone())) == Some(&id)
    }

    /// Whether the fact is present.
    pub fn contains(&self, pred: PredId, tuple: &[ConstId]) -> bool {
        self.index.contains_key(&(pred, tuple.to_vec()))
    }

    /// The id of a fact, if present.
    pub fn fact_id(&self, pred: PredId, tuple: &[ConstId]) -> Option<FactId> {
        self.index.get(&(pred, tuple.to_vec())).copied()
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> (PredId, &[ConstId]) {
        let (p, t) = &self.facts[id as usize];
        (*p, t)
    }

    /// Number of facts (the input size `m` of the paper).
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Size of the active domain (the paper's `n`).
    pub fn domain_size(&self) -> usize {
        self.consts.len()
    }

    /// Fact ids of a predicate.
    pub fn facts_of(&self, pred: PredId) -> &[FactId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All fact ids.
    pub fn all_facts(&self) -> impl Iterator<Item = FactId> {
        0..self.facts.len() as FactId
    }

    /// Import a labeled graph: each label becomes a binary EDB predicate
    /// (interned into `program.preds` by name), each node a constant
    /// `v{i}`, each edge a fact. Returns the per-edge fact ids, aligned
    /// with the graph's edge list.
    pub fn from_graph(program: &mut Program, graph: &LabeledDigraph) -> (Database, Vec<FactId>) {
        let mut db = Database::new();
        let node_consts: Vec<ConstId> = (0..graph.num_nodes())
            .map(|i| db.constant(&format!("v{i}")))
            .collect();
        let label_preds: Vec<PredId> = (0..graph.alphabet.len())
            .map(|t| program.preds.intern(graph.alphabet.name(t as Terminal)))
            .collect();
        let mut edge_facts = Vec::with_capacity(graph.num_edges());
        for &(u, v, t) in graph.edges() {
            let id = db.insert(
                label_preds[t as usize],
                vec![node_consts[u as usize], node_consts[v as usize]],
            );
            edge_facts.push(id);
        }
        (db, edge_facts)
    }

    /// The constant id for graph node `i` as created by [`Self::from_graph`].
    pub fn node_const(&self, i: usize) -> Option<ConstId> {
        self.consts.get(&format!("v{i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use graphgen::generators;

    #[test]
    fn insert_is_idempotent() {
        let mut db = Database::new();
        let a = db.constant("a");
        let b = db.constant("b");
        let f1 = db.insert(0, vec![a, b]);
        let f2 = db.insert(0, vec![a, b]);
        assert_eq!(f1, f2);
        assert_eq!(db.num_facts(), 1);
        assert!(db.contains(0, &[a, b]));
        assert!(!db.contains(0, &[b, a]));
    }

    #[test]
    fn retract_tombstones_and_reinsert_gets_fresh_id() {
        let mut db = Database::new();
        let a = db.constant("a");
        let b = db.constant("b");
        let f0 = db.insert(0, vec![a, b]);
        let f1 = db.insert(0, vec![b, a]);
        assert_eq!(db.retract(0, &[a, b]), Some(f0));
        assert_eq!(db.retract(0, &[a, b]), None, "second retract is a no-op");
        assert!(!db.contains(0, &[a, b]));
        assert!(!db.is_live(f0));
        assert!(db.is_live(f1));
        // Ids of surviving facts are untouched; the slot stays readable.
        assert_eq!(db.fact(f0).1, &[a, b][..]);
        assert_eq!(db.facts_of(0), &[f1][..]);
        // Re-insert: fresh id, never a reuse of the tombstone.
        let f2 = db.insert(0, vec![a, b]);
        assert_ne!(f2, f0);
        assert!(db.is_live(f2));
        assert_eq!(db.facts_of(0), &[f1, f2][..]);
    }

    #[test]
    fn from_graph_aligns_edge_ids() {
        let mut p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let g = generators::path(3, "E");
        let (db, edge_facts) = Database::from_graph(&mut p, &g);
        assert_eq!(db.num_facts(), 3);
        assert_eq!(edge_facts, vec![0, 1, 2]);
        let e = p.preds.get("E").unwrap();
        assert_eq!(db.facts_of(e).len(), 3);
        let (pred, tuple) = db.fact(edge_facts[1]);
        assert_eq!(pred, e);
        assert_eq!(tuple[0], db.node_const(1).unwrap());
        assert_eq!(tuple[1], db.node_const(2).unwrap());
    }

    #[test]
    fn multi_label_graphs_create_multiple_predicates() {
        let mut p = parse_program("S(X,Y) :- L(X,Z), R(Z,Y).").unwrap();
        let g = generators::word_path(&["L", "R"]);
        let (db, _) = Database::from_graph(&mut p, &g);
        let l = p.preds.get("L").unwrap();
        let r = p.preds.get("R").unwrap();
        assert_eq!(db.facts_of(l).len(), 1);
        assert_eq!(db.facts_of(r).len(), 1);
    }
}
