//! Compact CSR storage for grounded rules.
//!
//! A materialized [`GroundedProgram`] stores its rules as
//! `Vec<GroundedRule>`, each rule owning two boxed `Vec`s — at 15M rules
//! (TC on gnm(2000, 8000)) that is 15M × 2 separate heap allocations plus
//! two pointer-sized headers per rule, and the body payloads are scattered
//! across the heap. [`CompactRules`] stores the same rules in six flat
//! arrays (classic compressed-sparse-row layout): per-rule scalars plus
//! two shared body pools indexed by offset ranges. Rules that must be
//! *retained* — for provenance, circuits, or incremental maintenance —
//! can land here instead of in boxed vectors; the fused ground+eval
//! pipeline's retention mode ([`crate::fused::fused_eval_retaining`])
//! fills one streaming, without ever building the boxed form.
//!
//! [`GroundedProgram`]: crate::ground::GroundedProgram

use crate::database::FactId;
use crate::ground::GroundedRule;

/// Grounded rules in compressed-sparse-row form: six flat arrays instead
/// of one boxed struct per rule.
///
/// Scalars are narrowed to `u32` — a grounding with ≥ 2³² facts or rules
/// is far beyond the engine's memory ceiling (the boxed form would need
/// hundreds of GiB first), and the narrowing is half the point: per-rule
/// overhead drops from two `Vec` headers (48 bytes) plus two allocations
/// to 16 bytes of offsets, and body entries from 8 to 4 bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactRules {
    /// Per rule: index of the originating program rule.
    rule_index: Vec<u32>,
    /// Per rule: head fact (index into `GroundedProgram::idb_facts`).
    head: Vec<u32>,
    /// Per rule + sentinel: start of its IDB body slice in `idb_bodies`.
    idb_start: Vec<u32>,
    /// Per rule + sentinel: start of its EDB body slice in `edb_bodies`.
    edb_start: Vec<u32>,
    /// Shared pool of IDB body fact indices.
    idb_bodies: Vec<u32>,
    /// Shared pool of EDB body fact ids.
    edb_bodies: Vec<FactId>,
}

impl CompactRules {
    /// An empty store (the CSR sentinel rows are created lazily on the
    /// first [`push`](CompactRules::push)).
    pub fn new() -> Self {
        CompactRules {
            rule_index: Vec::new(),
            head: Vec::new(),
            idb_start: vec![0],
            edb_start: vec![0],
            idb_bodies: Vec::new(),
            edb_bodies: Vec::new(),
        }
    }

    /// Number of rules stored.
    pub fn len(&self) -> usize {
        self.rule_index.len()
    }

    /// Whether the store holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rule_index.is_empty()
    }

    /// Append one rule given as parts (the streaming entry point: no
    /// `GroundedRule` is ever built).
    pub fn push(
        &mut self,
        rule_index: usize,
        head: usize,
        body_idb: &[usize],
        body_edb: &[FactId],
    ) {
        self.rule_index.push(rule_index as u32);
        self.head.push(head as u32);
        self.idb_bodies.extend(body_idb.iter().map(|&i| i as u32));
        self.edb_bodies.extend_from_slice(body_edb);
        self.idb_start.push(self.idb_bodies.len() as u32);
        self.edb_start.push(self.edb_bodies.len() as u32);
    }

    /// Build from a boxed rule vector.
    pub fn from_rules(rules: &[GroundedRule]) -> Self {
        let mut out = CompactRules::new();
        for r in rules {
            out.push(r.rule_index, r.head, &r.body_idb, &r.body_edb);
        }
        out
    }

    /// Originating program-rule index of rule `i`.
    pub fn rule_index(&self, i: usize) -> usize {
        self.rule_index[i] as usize
    }

    /// Head fact of rule `i`.
    pub fn head(&self, i: usize) -> usize {
        self.head[i] as usize
    }

    /// IDB body facts of rule `i` (indices into the grounded fact list,
    /// still `u32`-narrow — widen at the use site).
    pub fn body_idb(&self, i: usize) -> &[u32] {
        &self.idb_bodies[self.idb_start[i] as usize..self.idb_start[i + 1] as usize]
    }

    /// EDB body fact ids of rule `i`.
    pub fn body_edb(&self, i: usize) -> &[FactId] {
        &self.edb_bodies[self.edb_start[i] as usize..self.edb_start[i + 1] as usize]
    }

    /// Reconstruct rule `i` in boxed form.
    pub fn rule(&self, i: usize) -> GroundedRule {
        GroundedRule {
            rule_index: self.rule_index(i),
            head: self.head(i),
            body_idb: self.body_idb(i).iter().map(|&x| x as usize).collect(),
            body_edb: self.body_edb(i).to_vec(),
        }
    }

    /// Reconstruct the full boxed rule vector (round-trip with
    /// [`from_rules`](CompactRules::from_rules)).
    pub fn to_rules(&self) -> Vec<GroundedRule> {
        (0..self.len()).map(|i| self.rule(i)).collect()
    }

    /// Heap bytes held by the six arrays (capacity not counted — this is
    /// the payload measure the bench reports).
    pub fn heap_bytes(&self) -> usize {
        self.rule_index.len() * 4
            + self.head.len() * 4
            + self.idb_start.len() * 4
            + self.edb_start.len() * 4
            + self.idb_bodies.len() * 4
            + self.edb_bodies.len() * std::mem::size_of::<FactId>()
    }

    /// Heap bytes the same rules occupy in boxed `Vec<GroundedRule>` form:
    /// the struct footprint per rule plus each body vector's payload and
    /// its own allocation. Used to report the compaction ratio.
    pub fn boxed_bytes_equivalent(&self) -> usize {
        self.len() * std::mem::size_of::<GroundedRule>()
            + self.idb_bodies.len() * std::mem::size_of::<usize>()
            + self.edb_bodies.len() * std::mem::size_of::<FactId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::ground::ground;
    use crate::parser::parse_program;
    use graphgen::generators;

    #[test]
    fn round_trips_a_real_grounding() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let g = generators::gnm(12, 30, &["E"], 7);
        let mut p = p;
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        assert!(!gp.rules.is_empty());
        let csr = CompactRules::from_rules(&gp.rules);
        assert_eq!(csr.len(), gp.rules.len());
        assert_eq!(csr.to_rules(), gp.rules);
        for (i, r) in gp.rules.iter().enumerate() {
            assert_eq!(csr.rule_index(i), r.rule_index);
            assert_eq!(csr.head(i), r.head);
            assert_eq!(
                csr.body_idb(i)
                    .iter()
                    .map(|&x| x as usize)
                    .collect::<Vec<_>>(),
                r.body_idb
            );
            assert_eq!(csr.body_edb(i), &r.body_edb[..]);
        }
    }

    #[test]
    fn empty_store_is_coherent() {
        let csr = CompactRules::new();
        assert!(csr.is_empty());
        assert_eq!(csr.len(), 0);
        assert!(csr.to_rules().is_empty());
        assert!(csr.heap_bytes() >= 8); // the two sentinels
    }

    #[test]
    fn csr_is_smaller_than_boxed() {
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap();
        let g = generators::gnm(30, 90, &["E"], 3);
        let mut p = p;
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let csr = CompactRules::from_rules(&gp.rules);
        assert!(
            csr.heap_bytes() * 2 < csr.boxed_bytes_equivalent(),
            "CSR {} bytes vs boxed {} bytes",
            csr.heap_bytes(),
            csr.boxed_bytes_equivalent()
        );
    }
}
