//! Fused ground+eval: stream grounded rules into the semi-naive
//! ⊕-worklist as phase-1 delta grounding discovers them, instead of
//! materializing a rule vector first.
//!
//! The materialized pipeline pays for a pure fixpoint query three times:
//! phase-1 discovery of the derivable facts, phase-2 enumeration of every
//! grounding into a `Vec<GroundedRule>` (the 15M-rule, multi-GiB vector
//! on large TC instances — 20–80× the cost of the evaluation it feeds),
//! and finally the fixpoint over that vector. But phase 1 *already
//! enumerates every grounding exactly once* — each at the round where its
//! newest body fact appeared — and phase 2 merely re-materializes them.
//! The fused pipeline exploits that: each discovery-round match is
//! ⊕-accumulated into its head value on the spot and dropped. No grounded
//! rule is ever stored (unless retention is requested, in which case each
//! lands once in a compact CSR pool — [`fused_eval_retaining`]).
//!
//! # Soundness
//!
//! Requires `⊕` idempotent ([`Semiring::ADD_IDEMPOTENT`]) — the same
//! precondition as semi-naive evaluation, and for the same reason: values
//! are accumulated in place (Gauss–Seidel), so a grounding may contribute
//! a product built from not-yet-final body values, and later rounds must
//! be able to repair it by re-accumulating without over-counting. Over an
//! idempotent (absorptive in all shipped cases) semiring the fixpoint of
//! the immediate-consequence operator is unique and ⊕-accumulation of any
//! sequence of rule products that includes every grounding's final
//! product converges to exactly it; duplicate or stale contributions are
//! absorbed. The driver guarantees the "every final product" part with
//! two passes per round:
//!
//! * a **discovery pass** replaying phase 1's task order exactly (round
//!   0: full join per rule; round r: `(rule, delta position)` over the
//!   last round's frontier) — every grounding is enumerated exactly once,
//!   at the round after its newest body fact appeared, and newly derived
//!   head facts are appended in first-discovery order, which makes the
//!   fused fact list **bit-identical** to the materialized grounding's
//!   (`tests/engine_agreement.rs` asserts this);
//! * a **re-fire pass** over the facts whose *value* changed in the
//!   previous round without being newly discovered: every grounding
//!   citing such a fact is re-enumerated (possibly more than once — see
//!   [`Matcher::enumerate_changed`]) and its fresh product re-accumulated.
//!
//! A fact's value can only change finitely often (each strict change
//! moves it up the ⊕-order toward the unique fixpoint), so both passes
//! eventually quiesce and the result equals the materialized pipeline's
//! bit-for-bit.
//!
//! Non-idempotent semirings (e.g. `Counting`) take the documented
//! fallback: materialize the grounding and run the naive fixpoint —
//! exactly what the materialized pipeline's own semi-naive → naive
//! fallback does, divergence behavior included.
//!
//! [`Matcher::enumerate_changed`]: mod@crate::ground
//! [`Semiring::ADD_IDEMPOTENT`]: semiring::Semiring::ADD_IDEMPOTENT

use provcirc_error::Error;
use semiring::valuation::Valuation;
use semiring::Semiring;
use telemetry::{Counter, Recorder, RoundStats, Stage, NOOP};

use crate::ast::Program;
use crate::csr::CompactRules;
use crate::database::Database;
use crate::eval::{default_budget, naive_eval, EvalStrategy};
use crate::fxhash::FxHashMap;
use crate::ground::{
    par_ground_with_limit_recorded, BodyMatch, FusedBatch, FusedGrounder, GroundedProgram,
};
use crate::symbols::{ConstId, PredId};

/// Result of a fused ground+eval run.
#[derive(Clone, Debug)]
pub struct FusedOutcome<S> {
    /// The derivable facts, in an order **bit-identical** to the
    /// materialized grounding's `idb_facts` — but with `rules` /
    /// `rules_by_head` left empty: no grounded rule was materialized.
    /// (On the non-idempotent fallback the rules *are* present, exactly
    /// as the materialized pipeline would have built them.)
    pub gp: GroundedProgram,
    /// Value per derivable fact, aligned with `gp.idb_facts`.
    pub values: Vec<S>,
    /// Fused rounds executed (discovery + re-fire pairs). Not comparable
    /// to either materialized strategy's `iterations`.
    pub iterations: usize,
    /// Total rule firings: streamed groundings plus re-fires.
    pub rule_firings: usize,
    /// Groundings streamed through the worklist by discovery passes —
    /// the count a materialized run would have stored as `rules.len()`.
    pub streamed_rules: u64,
    /// Re-firings performed by the changed-value passes.
    pub refires: u64,
    /// Whether the fixpoint quiesced within the round budget.
    pub converged: bool,
    /// Peak number of groundings held in memory at once: `0` on the
    /// sequential path (each grounding is accumulated and dropped on the
    /// spot), the largest single round's grounding count on the parallel
    /// path (discovery tasks buffer their round before the ordered
    /// drain), and the full materialized rule count on the
    /// non-⊕-idempotent fallback.
    pub peak_buffered: u64,
    /// [`EvalStrategy::SemiNaive`] for the fused path proper,
    /// [`EvalStrategy::Naive`] when the non-idempotent fallback ran.
    pub strategy: EvalStrategy,
    /// The streamed rules in compact CSR form when retention was
    /// requested ([`fused_eval_retaining`]); `None` otherwise.
    pub retained: Option<CompactRules>,
}

/// Newly derived facts buffered during a round (the grounder borrows the
/// fact list immutably, so appends wait for the round boundary).
/// First-discovery order — the order phase 1 would have interned them in.
/// The index is per-predicate so membership probes take the borrowed
/// head-tuple slice the grounder streams, allocating only on insertion.
struct PendingFacts<S> {
    facts: Vec<(PredId, Vec<ConstId>, S)>,
    index: FxHashMap<PredId, FxHashMap<Vec<ConstId>, usize>>,
}

impl<S: Semiring> PendingFacts<S> {
    fn new() -> Self {
        PendingFacts {
            facts: Vec::new(),
            index: FxHashMap::default(),
        }
    }
}

/// ⊕-accumulate one streamed grounding into its head. Returns `true` if
/// the head was created or its value strictly changed.
#[allow(clippy::too_many_arguments)]
fn accumulate<S, V>(
    gp: &GroundedProgram,
    values: &mut [S],
    pending: &mut PendingFacts<S>,
    changed_flags: &mut [bool],
    retained: &mut Option<CompactRules>,
    assign: &V,
    record_rule: bool,
    may_create: bool,
    rule_index: usize,
    head_pred: PredId,
    head_tuple: &[ConstId],
    body: &[BodyMatch],
) where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    let mut prod = S::one();
    let mut body_idb: Vec<usize> = Vec::new();
    let mut body_edb: Vec<crate::database::FactId> = Vec::new();
    for m in body {
        match *m {
            BodyMatch::Idb(i) => {
                prod.mul_assign(&values[i]);
                if record_rule {
                    body_idb.push(i);
                }
            }
            BodyMatch::Edb(f) => {
                prod.mul_assign(&assign.value(f));
                if record_rule {
                    body_edb.push(f);
                }
            }
        }
    }
    let head = match gp.fact(head_pred, head_tuple) {
        Some(h) => {
            let before = values[h].clone();
            values[h].add_assign(&prod);
            if !values[h].sr_eq(&before) {
                changed_flags[h] = true;
            }
            h
        }
        None => {
            let by_pred = pending.index.entry(head_pred).or_default();
            match by_pred.get(head_tuple) {
                Some(&pi) => {
                    pending.facts[pi].2.add_assign(&prod);
                    gp.num_idb_facts() + pi
                }
                None => {
                    assert!(
                        may_create,
                        "fused re-fire reached a head the discovery passes never derived"
                    );
                    let pi = pending.facts.len();
                    by_pred.insert(head_tuple.to_vec(), pi);
                    pending.facts.push((head_pred, head_tuple.to_vec(), prod));
                    gp.num_idb_facts() + pi
                }
            }
        }
    };
    if record_rule {
        if let Some(csr) = retained {
            csr.push(rule_index, head, &body_idb, &body_edb);
        }
    }
}

/// [`fused_eval_recorded`] with the no-op recorder.
pub fn fused_eval<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    fused_run(program, db, assign, budget, false, 1, &NOOP)
}

/// [`par_fused_eval_recorded`] with the no-op recorder.
pub fn par_fused_eval<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
    threads: usize,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    fused_run(program, db, assign, budget, false, threads, &NOOP)
}

/// [`fused_eval_recorded`] with the discovery joins sharded over up to
/// `threads` workers.
///
/// The ⊕-accumulation itself stays sequential — Gauss–Seidel in-place
/// updates are what make the streaming fixpoint converge fast, and a
/// racing schedule would break the bit-identity contract. What *can*
/// shard is discovery: the join enumeration never reads values, so each
/// round's `(rule, delta position, frontier shard)` tasks run on worker
/// threads exactly as phase 1's do, each buffering its groundings in a
/// flat batch, and the driver then drains the batches in task order —
/// the same accumulation sequence the sequential path performs, hence
/// bit-identical facts *and* values (`threads <= 1` is literally the
/// sequential path). This is the lever the materialized pipeline does
/// not have: parallel phase 2 must materialize giant per-shard rule
/// buffers and loses its speedup to the allocator, while fused
/// discovery buffers only one round at a time
/// ([`FusedOutcome::peak_buffered`]) and keeps the join sharding
/// profitable.
pub fn par_fused_eval_recorded<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
    threads: usize,
    rec: &dyn Recorder,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    fused_run(program, db, assign, budget, false, threads, rec)
}

/// Evaluate `program` over `db` by the fused streaming pipeline,
/// reporting into a telemetry [`Recorder`]: a [`Stage::FusedEval`] span
/// with one [`RoundStats`] per round, plus the
/// [`Counter::StreamedRules`] / [`Counter::FusedRefires`] /
/// [`Counter::RuleFirings`] / [`Counter::FactsDiscovered`] /
/// [`Counter::IndexProbes`] totals.
///
/// `budget` caps the number of fused rounds; `None` uses the dynamic
/// default (#derivable facts + 2, recomputed as facts are discovered —
/// the fused analogue of [`default_budget`]).
///
/// This entry point runs discovery on the caller's thread; see
/// [`par_fused_eval_recorded`] for the sharded-discovery variant (the
/// accumulation is sequential either way — that is what keeps the
/// Gauss–Seidel streaming fixpoint deterministic).
pub fn fused_eval_recorded<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
    rec: &dyn Recorder,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    fused_run(program, db, assign, budget, false, 1, rec)
}

/// [`fused_eval_recorded`], additionally retaining every streamed
/// grounding in a [`CompactRules`] CSR store (`outcome.retained`) — the
/// path for callers that need the rules afterwards (provenance, circuit
/// construction, incremental maintenance) but not the boxed
/// `Vec<GroundedRule>` form. Each grounding is recorded exactly once
/// (discovery passes only; re-fires are value repairs, not new rules),
/// so the store holds the same rule set as the materialized grounding —
/// in discovery order rather than phase 2's rule-major order.
pub fn fused_eval_retaining<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
    rec: &dyn Recorder,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    fused_run(program, db, assign, budget, true, 1, rec)
}

fn fused_run<S, V>(
    program: &Program,
    db: &Database,
    assign: &V,
    budget: Option<usize>,
    retain: bool,
    threads: usize,
    rec: &dyn Recorder,
) -> Result<FusedOutcome<S>, Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    if !S::ADD_IDEMPOTENT {
        // Streaming accumulation is unsound without idempotent ⊕ (stale
        // products cannot be absorbed). Fall back to exactly what the
        // materialized pipeline does for these semirings: ground fully,
        // run the naive fixpoint.
        let gp = par_ground_with_limit_recorded(program, db, usize::MAX, threads, rec)?;
        let b = budget.unwrap_or_else(|| default_budget(&gp));
        let out = naive_eval::<S, _>(&gp, assign, b);
        let retained = retain.then(|| CompactRules::from_rules(&gp.rules));
        let peak_buffered = gp.rules.len() as u64;
        return Ok(FusedOutcome {
            gp,
            values: out.values,
            iterations: out.iterations,
            rule_firings: out.rule_firings,
            streamed_rules: 0,
            refires: 0,
            converged: out.converged,
            peak_buffered,
            strategy: EvalStrategy::Naive,
            retained,
        });
    }

    let enabled = rec.enabled();
    let span = enabled.then(std::time::Instant::now);
    let mut fg = FusedGrounder::new(program, db, enabled)?;
    let mut gp = GroundedProgram::default();
    let mut values: Vec<S> = Vec::new();
    let mut retained = retain.then(CompactRules::new);
    let mut streamed: u64 = 0;
    let mut refires: u64 = 0;
    let mut peak_buffered: u64 = 0;
    // D_{r-1}: the facts appended by the previous round's discovery pass.
    let mut delta_start = 0usize;
    // Facts whose value strictly changed in the previous round (any index
    // below that round's append point; newly appended facts are covered
    // by the discovery frontier instead).
    let mut changed: Vec<usize> = Vec::new();
    let mut round = 0usize;
    let converged = loop {
        let len_before = gp.num_idb_facts();
        let frontier = (len_before - delta_start) as u64;
        let mut pending = PendingFacts::<S>::new();
        let mut changed_flags = vec![false; len_before];
        let mut probes = 0u64;
        let mut fired_now = 0u64;

        // Discovery pass: replay phase 1's enumeration for this round.
        if threads > 1 {
            // Sharded discovery: worker threads buffer this round's
            // groundings in flat batches (task order = sequential
            // enumeration order), then the drain below accumulates them
            // in exactly the sequence the sequential path would have —
            // enumeration never reads values, so deferring the
            // accumulation to the drain changes nothing observable.
            let (batches, p): (Vec<FusedBatch>, u64) = if round == 0 {
                fg.round0_par(&gp, threads, rec)
            } else {
                fg.delta_round_par(&gp, delta_start, threads, rec)
            };
            probes += p;
            let held: u64 = batches.iter().map(|b| b.len() as u64).sum();
            peak_buffered = peak_buffered.max(held);
            for b in &batches {
                let (mut ho, mut bo) = (0usize, 0usize);
                for &ri in &b.rules {
                    let rule = &program.rules[ri as usize];
                    let (ha, nb) = (rule.head.terms.len(), rule.body.len());
                    fired_now += 1;
                    accumulate(
                        &gp,
                        &mut values,
                        &mut pending,
                        &mut changed_flags,
                        &mut retained,
                        assign,
                        retain,
                        true,
                        ri as usize,
                        rule.head.pred,
                        &b.heads[ho..ho + ha],
                        &b.bodies[bo..bo + nb],
                    );
                    ho += ha;
                    bo += nb;
                }
            }
        } else {
            let mut sink = |ri: usize, hp: PredId, ht: &[ConstId], body: &[BodyMatch]| {
                fired_now += 1;
                accumulate(
                    &gp,
                    &mut values,
                    &mut pending,
                    &mut changed_flags,
                    &mut retained,
                    assign,
                    retain,
                    true,
                    ri,
                    hp,
                    ht,
                    body,
                );
            };
            probes += if round == 0 {
                fg.round0(&gp, &mut sink)
            } else {
                fg.delta_round(&gp, delta_start, &mut sink)
            };
        }
        streamed += fired_now;

        // Re-fire pass: repair values downstream of last round's changes.
        let mut refired_now = 0u64;
        if !changed.is_empty() {
            let mut sink = |ri: usize, hp: PredId, ht: &[ConstId], body: &[BodyMatch]| {
                refired_now += 1;
                accumulate(
                    &gp,
                    &mut values,
                    &mut pending,
                    &mut changed_flags,
                    &mut retained,
                    assign,
                    false,
                    false,
                    ri,
                    hp,
                    ht,
                    body,
                );
            };
            probes += fg.refire_round(&gp, &changed, &mut sink);
        }
        refires += refired_now;

        // Round boundary: append this round's discoveries (in
        // first-discovery order — phase 1's interning order) and fold
        // them into the join indices.
        delta_start = len_before;
        for (pred, tuple, v) in pending.facts {
            let i = gp
                .push_fact(pred, tuple)
                .expect("pending facts are deduplicated against gp");
            debug_assert_eq!(i, values.len());
            values.push(v);
        }
        if gp.num_idb_facts() > len_before {
            fg.extend_indices(&gp);
        }
        changed = changed_flags
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i))
            .collect();
        let delta = (gp.num_idb_facts() - len_before) as u64;
        round += 1;
        if enabled {
            rec.counter(Counter::IndexProbes, probes);
            rec.counter(Counter::StreamedRules, fired_now);
            rec.counter(Counter::FusedRefires, refired_now);
            rec.counter(Counter::RuleFirings, fired_now + refired_now);
            rec.counter(Counter::FactsDiscovered, delta);
            rec.round(
                Stage::FusedEval,
                RoundStats {
                    round: (round - 1) as u64,
                    frontier,
                    delta,
                    probes,
                    firings: fired_now + refired_now,
                    worklist: delta + changed.len() as u64,
                },
            );
        }
        if delta == 0 && changed.is_empty() {
            break true;
        }
        let limit = budget.unwrap_or(gp.num_idb_facts() + 2);
        if round >= limit {
            break false;
        }
    };
    if let Some(t) = span {
        rec.stage_nanos(Stage::FusedEval, t.elapsed().as_nanos() as u64);
    }
    Ok(FusedOutcome {
        gp,
        values,
        iterations: round,
        rule_firings: (streamed + refires) as usize,
        streamed_rules: streamed,
        refires,
        converged,
        peak_buffered,
        strategy: EvalStrategy::SemiNaive,
        retained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{naive_eval, semi_naive_eval};
    use crate::ground::{ground, GroundedRule};
    use crate::parser::parse_program;
    use graphgen::generators;
    use semiring::valuation::{AllOnes, UnitWeights};
    use semiring::{Bool, Counting, Tropical};

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    fn instance(n: usize, m: usize, seed: u64) -> (Program, Database) {
        let mut p = tc();
        let g = generators::gnm(n, m, &["E"], seed);
        let (db, _) = Database::from_graph(&mut p, &g);
        (p, db)
    }

    #[test]
    fn fused_matches_materialized_bit_for_bit() {
        for seed in [3u64, 7, 13, 29] {
            let (p, db) = instance(9, 22, seed);
            let gp = ground(&p, &db).unwrap();
            let mat = semi_naive_eval::<Tropical, _>(
                &gp,
                &UnitWeights::new(Tropical::new(1)),
                default_budget(&gp),
            );
            let fused =
                fused_eval::<Tropical, _>(&p, &db, &UnitWeights::new(Tropical::new(1)), None)
                    .unwrap();
            // Fact interning order is the contract, not just the fact set.
            assert_eq!(fused.gp.idb_facts, gp.idb_facts, "seed {seed}");
            assert!(fused.converged && mat.converged);
            assert_eq!(fused.values, mat.values, "seed {seed}");
            assert!(fused.gp.rules.is_empty(), "no rule was materialized");
        }
    }

    #[test]
    fn fused_bool_matches_on_cycles_and_dags() {
        for g in [generators::cycle(7, "E"), generators::path(7, "E")] {
            let mut p = tc();
            let (db, _) = Database::from_graph(&mut p, &g);
            let gp = ground(&p, &db).unwrap();
            let mat = naive_eval::<Bool, _>(&gp, &AllOnes, default_budget(&gp));
            let fused = fused_eval::<Bool, _>(&p, &db, &AllOnes, None).unwrap();
            assert_eq!(fused.gp.idb_facts, gp.idb_facts);
            assert!(fused.converged && mat.converged);
            assert_eq!(fused.values, mat.values);
        }
    }

    #[test]
    fn non_idempotent_semirings_fall_back_to_materialize_and_naive() {
        // Acyclic, so Counting converges; the fused path must report the
        // naive fallback and agree with the materialized run exactly.
        let mut p = tc();
        let g = generators::path(6, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = ground(&p, &db).unwrap();
        let mat = naive_eval::<Counting, _>(&gp, &AllOnes, default_budget(&gp));
        let fused = fused_eval::<Counting, _>(&p, &db, &AllOnes, None).unwrap();
        assert_eq!(fused.strategy, EvalStrategy::Naive);
        assert_eq!(fused.streamed_rules, 0);
        assert!(!fused.gp.rules.is_empty(), "fallback materializes");
        assert_eq!(fused.values, mat.values);
        assert_eq!(fused.converged, mat.converged);

        // Cyclic: both diverge, reported as non-convergence either way.
        let mut p2 = tc();
        let g2 = generators::cycle(4, "E");
        let (db2, _) = Database::from_graph(&mut p2, &g2);
        let fused2 = fused_eval::<Counting, _>(&p2, &db2, &AllOnes, None).unwrap();
        assert!(!fused2.converged);
    }

    #[test]
    fn retention_stores_exactly_the_materialized_rule_set() {
        fn canon(rules: &[GroundedRule]) -> Vec<(usize, usize, Vec<usize>, Vec<u32>)> {
            let mut v: Vec<_> = rules
                .iter()
                .map(|r| (r.rule_index, r.head, r.body_idb.clone(), r.body_edb.clone()))
                .collect();
            v.sort();
            v
        }
        for seed in [5u64, 17] {
            let (p, db) = instance(8, 20, seed);
            let gp = ground(&p, &db).unwrap();
            let fused = fused_eval_retaining::<Bool, _>(&p, &db, &AllOnes, None, &NOOP).unwrap();
            let csr = fused.retained.expect("retention requested");
            assert_eq!(csr.len() as u64, fused.streamed_rules);
            assert_eq!(
                canon(&csr.to_rules()),
                canon(&gp.rules),
                "seed {seed}: fused retention must hold the phase-2 rule set"
            );
        }
    }

    #[test]
    fn zero_rule_and_empty_database_programs_quiesce() {
        let p = parse_program("T(X,Y) :- E(X,Y).").unwrap();
        let db = Database::new(); // no facts at all
        let fused = fused_eval::<Bool, _>(&p, &db, &AllOnes, None).unwrap();
        assert!(fused.converged);
        assert!(fused.gp.idb_facts.is_empty());
        assert_eq!(fused.values.len(), 0);
    }

    #[test]
    fn explicit_budget_reports_divergence_without_panicking() {
        let (p, db) = instance(8, 20, 11);
        let fused = fused_eval::<Bool, _>(&p, &db, &AllOnes, Some(1)).unwrap();
        assert!(!fused.converged);
        assert_eq!(fused.iterations, 1);
    }

    #[test]
    fn parallel_fused_is_bit_identical_to_sequential() {
        let unit = UnitWeights::new(Tropical::new(1));
        for seed in [3u64, 7, 13, 29] {
            let (p, db) = instance(60, 240, seed);
            let seq = fused_eval::<Tropical, _>(&p, &db, &unit, None).unwrap();
            for threads in [2usize, 4] {
                let par = par_fused_eval::<Tropical, _>(&p, &db, &unit, None, threads).unwrap();
                assert_eq!(par.gp.idb_facts, seq.gp.idb_facts, "seed {seed}");
                assert_eq!(par.values, seq.values, "seed {seed} threads {threads}");
                assert_eq!(par.streamed_rules, seq.streamed_rules);
                assert_eq!(par.iterations, seq.iterations);
                assert!(par.converged);
                // The parallel path holds at most one round's groundings;
                // the sequential path never holds any.
                assert!(par.peak_buffered > 0);
                assert!(par.peak_buffered < par.streamed_rules);
                assert_eq!(seq.peak_buffered, 0);
            }
        }
    }

    #[test]
    fn parallel_fused_matches_non_linear_programs_too() {
        // Dyck-1 exercises multi-IDB bodies (two delta positions per
        // rule) and re-fire rounds; the sharded discovery must still
        // replay the exact sequential order.
        let mut p = crate::programs::dyck1();
        let g = generators::gnm(12, 30, &["L", "R"], 21);
        let (db, _) = Database::from_graph(&mut p, &g);
        let seq = fused_eval::<Bool, _>(&p, &db, &AllOnes, None).unwrap();
        let par = par_fused_eval::<Bool, _>(&p, &db, &AllOnes, None, 3).unwrap();
        assert_eq!(par.gp.idb_facts, seq.gp.idb_facts);
        assert_eq!(par.values, seq.values);
        assert_eq!(par.streamed_rules, seq.streamed_rules);
    }
}
