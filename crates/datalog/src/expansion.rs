//! CQ expansions of a Datalog target and homomorphism-based boundedness
//! evidence (paper §4, Theorems 4.5 and 4.6).
//!
//! Unfolding the target with rule applications yields a sequence of
//! conjunctive queries `C₀, C₁, …` with `T =_S ⋃ᵢ Cᵢ` (Example 4.4). Over an
//! absorptive ⊗-idempotent semiring (class `Chom`), the program is bounded
//! iff from some depth on, every expansion absorbs into an earlier one via a
//! homomorphism (Theorem 4.6) — and this coincides with Boolean boundedness
//! (Corollary 4.7). Boundedness is undecidable in general, so this module
//! offers a *semi-decision*: evidence up to a depth horizon.

use std::collections::HashSet;

use crate::ast::{Atom, Program, Term};
use crate::symbols::{PredId, VarSym};

/// A conjunctive query over EDB atoms with distinguished head variables.
///
/// Variables are local (`0..num_vars`); constants reference
/// `Program::consts`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cq {
    /// Head terms (the target's arguments).
    pub head: Vec<CqTerm>,
    /// EDB body atoms.
    pub atoms: Vec<(PredId, Vec<CqTerm>)>,
    /// Number of local variables.
    pub num_vars: u32,
    /// How many rule applications produced this expansion.
    pub depth: usize,
}

/// A term of a [`Cq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CqTerm {
    /// A local variable.
    Var(u32),
    /// A program constant.
    Const(u32),
}

/// Enumerate the expansions of the program's target with at most
/// `max_depth` rule applications, stopping at `max_count` expansions.
/// Returns `(expansions, truncated)`.
pub fn expansions(program: &Program, max_depth: usize, max_count: usize) -> (Vec<Cq>, bool) {
    let idbs = program.idbs();
    let target_arity = program.arity(program.target).unwrap_or(0);

    // Partial expansion: atoms may still contain IDB predicates.
    #[derive(Clone)]
    struct Partial {
        head: Vec<CqTerm>,
        atoms: Vec<(PredId, Vec<CqTerm>)>,
        num_vars: u32,
        depth: usize,
    }

    let init = Partial {
        head: (0..target_arity as u32).map(CqTerm::Var).collect(),
        atoms: vec![(
            program.target,
            (0..target_arity as u32).map(CqTerm::Var).collect(),
        )],
        num_vars: target_arity as u32,
        depth: 0,
    };

    let mut out: Vec<Cq> = Vec::new();
    let mut truncated = false;
    let mut frontier = vec![init];
    while let Some(partial) = frontier.pop() {
        if out.len() >= max_count {
            truncated = true;
            break;
        }
        // Find the first IDB atom to unfold.
        let Some(pos) = partial.atoms.iter().position(|(p, _)| idbs.contains(p)) else {
            out.push(Cq {
                head: partial.head,
                atoms: partial.atoms,
                num_vars: partial.num_vars,
                depth: partial.depth,
            });
            continue;
        };
        if partial.depth == max_depth {
            continue; // still has IDB atoms at the depth horizon: drop
        }
        let (pred, args) = partial.atoms[pos].clone();
        for rule in program.rules.iter().filter(|r| r.head.pred == pred) {
            // Rename rule variables to fresh local variables; unify head
            // with `args` directly (head vars map to the matched terms).
            let mut var_map: Vec<Option<CqTerm>> = vec![None; program.vars.len()];
            let mut num_vars = partial.num_vars;
            let mut consistent = true;
            for (ht, at) in rule.head.terms.iter().zip(args.iter()) {
                match ht {
                    Term::Var(v) => {
                        let slot = &mut var_map[*v as usize];
                        match slot {
                            None => *slot = Some(*at),
                            Some(prev) if *prev != *at => {
                                consistent = false;
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                    Term::Const(c) => {
                        // Head constant must match a constant argument; a
                        // variable argument would need equality handling —
                        // conservatively require equality of constants.
                        if *at != CqTerm::Const(*c) {
                            consistent = false;
                            break;
                        }
                    }
                }
            }
            if !consistent {
                continue;
            }
            let mut resolve = |t: &Term, num_vars: &mut u32| -> CqTerm {
                match t {
                    Term::Const(c) => CqTerm::Const(*c),
                    Term::Var(v) => {
                        let slot = &mut var_map[*v as usize];
                        match slot {
                            Some(x) => *x,
                            None => {
                                let fresh = CqTerm::Var(*num_vars);
                                *num_vars += 1;
                                *slot = Some(fresh);
                                fresh
                            }
                        }
                    }
                }
            };
            let mut atoms = partial.atoms.clone();
            let new_atoms: Vec<(PredId, Vec<CqTerm>)> = rule
                .body
                .iter()
                .map(|a| {
                    (
                        a.pred,
                        a.terms.iter().map(|t| resolve(t, &mut num_vars)).collect(),
                    )
                })
                .collect();
            atoms.splice(pos..=pos, new_atoms);
            frontier.push(Partial {
                head: partial.head.clone(),
                atoms,
                num_vars,
                depth: partial.depth + 1,
            });
        }
    }
    out.sort_by_key(|c| c.depth);
    (out, truncated)
}

/// Is there a homomorphism `src → dst` fixing the head pointwise?
/// (Chandra–Merlin: then `dst ⊆ src` over the Boolean semiring, and over any
/// `Chom` semiring by the Kostylev et al. characterization the paper uses.)
pub fn homomorphism(src: &Cq, dst: &Cq) -> bool {
    // Mapping from src variables to dst terms.
    let mut map: Vec<Option<CqTerm>> = vec![None; src.num_vars as usize];
    // Head must map pointwise.
    for (s, d) in src.head.iter().zip(dst.head.iter()) {
        match s {
            CqTerm::Var(v) => {
                let slot = &mut map[*v as usize];
                match slot {
                    None => *slot = Some(*d),
                    Some(prev) if prev != d => return false,
                    Some(_) => {}
                }
            }
            CqTerm::Const(c) => {
                if *d != CqTerm::Const(*c) {
                    return false;
                }
            }
        }
    }
    hom_search(src, dst, 0, &mut map)
}

fn hom_search(src: &Cq, dst: &Cq, pos: usize, map: &mut Vec<Option<CqTerm>>) -> bool {
    if pos == src.atoms.len() {
        return true;
    }
    let (pred, args) = &src.atoms[pos];
    'candidates: for (dpred, dargs) in &dst.atoms {
        if dpred != pred || dargs.len() != args.len() {
            continue;
        }
        let mut newly: Vec<u32> = Vec::new();
        for (s, d) in args.iter().zip(dargs.iter()) {
            match s {
                CqTerm::Const(c) => {
                    if *d != CqTerm::Const(*c) {
                        for v in newly {
                            map[v as usize] = None;
                        }
                        continue 'candidates;
                    }
                }
                CqTerm::Var(v) => match &map[*v as usize] {
                    Some(prev) if prev != d => {
                        for v in newly {
                            map[v as usize] = None;
                        }
                        continue 'candidates;
                    }
                    Some(_) => {}
                    None => {
                        map[*v as usize] = Some(*d);
                        newly.push(*v);
                    }
                },
            }
        }
        if hom_search(src, dst, pos + 1, map) {
            return true;
        }
        for v in newly {
            map[v as usize] = None;
        }
    }
    false
}

/// Evidence about boundedness gathered from expansions (Theorem 4.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundednessEvidence {
    /// The smallest `N` such that every expansion with depth in
    /// `(N, horizon]` has a homomorphism from an expansion of depth ≤ `N`,
    /// if one exists.
    pub bound: Option<usize>,
    /// The depth horizon examined.
    pub horizon: usize,
    /// Whether expansion enumeration was truncated (evidence incomplete).
    pub truncated: bool,
}

/// Check the Theorem 4.6 condition up to a depth horizon. `Some(N)` in
/// [`BoundednessEvidence::bound`] is *evidence* of boundedness over any
/// absorptive ⊗-idempotent semiring (a proof if the program is known bounded
/// ⇔ grammar-finite, as for chain programs); `None` with an honest horizon
/// is evidence of unboundedness.
pub fn boundedness_evidence(
    program: &Program,
    horizon: usize,
    max_expansions: usize,
) -> BoundednessEvidence {
    let (exps, truncated) = expansions(program, horizon, max_expansions);
    let mut bound = None;
    'candidates: for n in 0..horizon {
        for deep in exps.iter().filter(|c| c.depth > n) {
            let absorbed = exps
                .iter()
                .filter(|c| c.depth <= n)
                .any(|shallow| homomorphism(shallow, deep));
            if !absorbed {
                continue 'candidates;
            }
        }
        bound = Some(n);
        break;
    }
    BoundednessEvidence {
        bound,
        horizon,
        truncated,
    }
}

/// Convenience: variables of an atom list (used by tests).
pub fn cq_vars(cq: &Cq) -> HashSet<u32> {
    let mut out = HashSet::new();
    for (_, args) in &cq.atoms {
        for t in args {
            if let CqTerm::Var(v) = t {
                out.insert(*v);
            }
        }
    }
    out
}

/// Suppress unused-import warnings for `VarSym` (kept for doc references).
#[allow(dead_code)]
fn _unused(_: VarSym, _: &Atom) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn tc() -> Program {
        parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).").unwrap()
    }

    #[test]
    fn tc_expansions_are_paths() {
        let p = tc();
        let (exps, truncated) = expansions(&p, 4, 1000);
        assert!(!truncated);
        // Depth d expansion: path with d edge atoms (d = #applications;
        // depth 1 → E(x,y), depth 2 → E(x,z),E(z,y), …).
        for cq in &exps {
            assert_eq!(cq.atoms.len(), cq.depth);
            assert!(cq
                .atoms
                .iter()
                .all(|(p_, _)| { p_ == &p.preds.get("E").unwrap() }));
        }
        let depths: Vec<usize> = exps.iter().map(|c| c.depth).collect();
        assert_eq!(depths, vec![1, 2, 3, 4]);
    }

    #[test]
    fn path_homomorphisms_go_short_to_long_nowhere() {
        // No hom from the 1-edge path E(x,y) to the 2-edge path
        // E(x,z),E(z,y) with head (x,y) fixed — and vice versa.
        let p = tc();
        let (exps, _) = expansions(&p, 2, 100);
        assert_eq!(exps.len(), 2);
        assert!(!homomorphism(&exps[0], &exps[1]));
        assert!(!homomorphism(&exps[1], &exps[0]));
    }

    #[test]
    fn tc_looks_unbounded() {
        let ev = boundedness_evidence(&tc(), 5, 1000);
        assert_eq!(ev.bound, None);
        assert!(!ev.truncated);
    }

    #[test]
    fn example_4_2_looks_bounded() {
        // T(x,y) :- E(x,y) | A(x), T(z,y): expansions beyond depth 2 absorb
        // into depth-2 ones (the program is equivalent to a UCQ).
        let p = parse_program("T(X,Y) :- E(X,Y).\nT(X,Y) :- A(X), T(Z,Y).").unwrap();
        let ev = boundedness_evidence(&p, 5, 1000);
        assert_eq!(ev.bound, Some(2));
    }

    #[test]
    fn finite_chain_program_is_bounded_quickly() {
        // S → ab | b: no recursion, bounded at depth 1.
        let p = parse_program("S(X,Y) :- A(X,Z), B(Z,Y).\nS(X,Y) :- B(X,Y).").unwrap();
        let ev = boundedness_evidence(&p, 4, 1000);
        assert_eq!(ev.bound, Some(1));
    }

    #[test]
    fn nonlinear_expansion_explosion_is_truncated() {
        // Dyck-1 expansions grow exponentially with depth; the cap must
        // report truncation rather than hang.
        let p = parse_program(
            "S(X,Y) :- L(X,Z), R(Z,Y).\n\
             S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).\n\
             S(X,Y) :- S(X,Z), S(Z,Y).",
        )
        .unwrap();
        let (exps, truncated) = expansions(&p, 12, 50);
        assert!(truncated);
        assert!(exps.len() <= 50);
        // Truncation propagates to the boundedness evidence as Unknown-safe.
        let ev = boundedness_evidence(&p, 12, 50);
        assert!(ev.truncated);
    }

    #[test]
    fn self_homomorphism_always_exists() {
        let p = tc();
        let (exps, _) = expansions(&p, 3, 100);
        for cq in &exps {
            assert!(homomorphism(cq, cq));
        }
    }

    #[test]
    fn hom_collapses_redundant_atoms() {
        // src: E(x,z), E(z,y) with head (x,y);
        // dst: E(x,y) with head (x,y) has no hom (z can't go anywhere to
        // make both atoms map) — but src': E(x,z),E(x,z2) head (x) maps onto
        // dst': E(x,z) head (x).
        let src = Cq {
            head: vec![CqTerm::Var(0)],
            atoms: vec![
                (0, vec![CqTerm::Var(0), CqTerm::Var(1)]),
                (0, vec![CqTerm::Var(0), CqTerm::Var(2)]),
            ],
            num_vars: 3,
            depth: 0,
        };
        let dst = Cq {
            head: vec![CqTerm::Var(0)],
            atoms: vec![(0, vec![CqTerm::Var(0), CqTerm::Var(1)])],
            num_vars: 2,
            depth: 0,
        };
        assert!(homomorphism(&src, &dst));
        assert!(homomorphism(&dst, &src));
    }
}
