//! Pipeline telemetry for the `datalog-circuits` workspace: who spent the
//! wall-clock, round by round and shard by shard.
//!
//! The grounding bottleneck (ROADMAP item 1) and the unproven parallel
//! speedup (item 4) are both *visibility* problems: the bench prints two
//! coarse end-to-end numbers, so per-stage attribution — grounding vs
//! evaluation, phase 1 vs phase 2, round-level frontier decay, per-shard
//! utilization — was guesswork. This crate is the measuring layer:
//!
//! * [`Recorder`] — the trait the pipeline reports into. Every method has
//!   a no-op default body and a cheap [`enabled`](Recorder::enabled)
//!   guard, so the disabled path is a predictable never-taken branch: no
//!   clocks are read, no samples are allocated, and the parallel code
//!   paths are byte-identical to the un-instrumented ones.
//! * [`PipelineMetrics`] — the concrete collector: per-[`Stage`]
//!   wall-clock spans, per-round series ([`RoundStats`]), per-shard
//!   parallel stats ([`ShardStats`]), named [`Counter`]s, and the engine
//!   cache events ([`CacheEvent`]). Hot counters are relaxed atomics;
//!   series go through a mutex only when telemetry is enabled.
//! * [`MetricsReport`] — an owned snapshot with a human-readable table
//!   (`Display`) and a hand-rolled JSON serializer
//!   ([`to_json`](MetricsReport::to_json), same no-dependency style as
//!   the committed `BENCH_*.json` trajectories).
//!
//! The `provcirc::Engine` facade owns one `PipelineMetrics` per session
//! (`EngineBuilder::telemetry`, `DATALOG_METRICS` env override) and
//! threads it through grounding, evaluation, provenance, and circuit
//! construction; `dlc compile/classify --metrics` exposes it end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// The pipeline stages a span can be attributed to, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Program text → AST (`datalog::parser`).
    Parse,
    /// Grounding phase 1: the semi-naive Boolean fixpoint computing the
    /// derivable IDB facts (`datalog::ground`).
    GroundPhase1,
    /// Grounding phase 2: enumerating all grounded rules against the
    /// completed fact set (`datalog::ground`).
    GroundPhase2,
    /// Paper-level classification (`provcirc::classify`).
    Classify,
    /// Fixpoint evaluation over a semiring — naive or semi-naive
    /// (`datalog::eval`).
    Eval,
    /// The cached provenance fixpoint over `Sorp` (always naive; its
    /// iteration count feeds the Theorem 4.3 layering).
    Provenance,
    /// Circuit construction (`provcirc::compile` / `circuit`).
    CircuitBuild,
    /// Server-side query handling in the serving layer (`server`): the
    /// wall-clock of one wire query or batch group, measured around the
    /// snapshot evaluation — the engine stages it drives (grounding on a
    /// lazy snapshot build, `Eval` fixpoints) are attributed to their own
    /// stages as usual, so `serve` minus `eval` is protocol overhead.
    Serve,
    /// Incremental delta-grounding: extending a cached grounded program
    /// with the consequences of newly inserted EDB facts
    /// (`datalog::ground::extend_grounding`).
    DeltaGround,
    /// Incremental fixpoint maintenance: ⊕-propagation from newly
    /// grounded rules and DRed-style cone rederivation after retraction
    /// (`incremental::MaintainedFixpoint`).
    Maintain,
    /// Fused ground+eval: the streaming pipeline that feeds grounded
    /// rules straight into the semi-naive ⊕-worklist as phase-1 delta
    /// grounding discovers them, never materializing a rule vector
    /// (`datalog::fused`).
    FusedEval,
    /// Bottom-up circuit evaluation (`circuit::arena`): level-synchronous
    /// parallel gate evaluation over the topological layers.
    CircuitEval,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::Parse,
        Stage::GroundPhase1,
        Stage::GroundPhase2,
        Stage::Classify,
        Stage::Eval,
        Stage::Provenance,
        Stage::CircuitBuild,
        Stage::Serve,
        Stage::DeltaGround,
        Stage::Maintain,
        Stage::FusedEval,
        Stage::CircuitEval,
    ];

    /// Stable machine-readable name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::GroundPhase1 => "ground_phase1",
            Stage::GroundPhase2 => "ground_phase2",
            Stage::Classify => "classify",
            Stage::Eval => "eval",
            Stage::Provenance => "provenance",
            Stage::CircuitBuild => "circuit_build",
            Stage::Serve => "serve",
            Stage::DeltaGround => "delta_ground",
            Stage::Maintain => "maintain",
            Stage::FusedEval => "fused_eval",
            Stage::CircuitEval => "circuit_eval",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::GroundPhase1 => 1,
            Stage::GroundPhase2 => 2,
            Stage::Classify => 3,
            Stage::Eval => 4,
            Stage::Provenance => 5,
            Stage::CircuitBuild => 6,
            Stage::Serve => 7,
            Stage::DeltaGround => 8,
            Stage::Maintain => 9,
            Stage::FusedEval => 10,
            Stage::CircuitEval => 11,
        }
    }
}

/// Monotonic work counters accumulated across a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Hash-index probes performed by the grounding joins.
    IndexProbes,
    /// Grounded-rule firings performed by fixpoint evaluation.
    RuleFirings,
    /// Facts discovered by grounding phase 1.
    FactsDiscovered,
    /// `(head, contribution)` pairs produced by parallel evaluation
    /// shards (0 on the sequential path).
    Contributions,
    /// Nanoseconds spent ⊕-merging shard outputs at grounding barriers.
    GroundMergeNanos,
    /// Nanoseconds the main thread spent scattering owner-drained
    /// accumulator slices back into the value vector at eval round
    /// boundaries (the owner-sharded design's residual sequential work —
    /// moves, not ⊕-merges).
    EvalDrainNanos,
    /// Serving-layer sessions opened (`SESSION OPEN`).
    SessionsOpened,
    /// Serving-layer sessions closed (`SESSION CLOSE`).
    SessionsClosed,
    /// Wire queries answered by the serving layer (batch members count
    /// individually).
    QueriesServed,
    /// `BATCH` commands evaluated by the serving layer.
    BatchesServed,
    /// Total queries submitted through `BATCH` commands — divide by
    /// [`Counter::BatchesServed`] for the mean batch size.
    BatchQueries,
    /// Write batches (insert or retract) applied through the incremental
    /// maintenance path — delta grounding plus in-place fixpoint repair.
    IncrementalApplied,
    /// Write batches that fell back to full recomputation (lazy
    /// re-ground / re-eval) because in-place maintenance was unsound or
    /// the cached grounding was unusable.
    IncrementalFallbacks,
    /// Serving-layer sessions evicted by the idle TTL sweeper.
    SessionsEvicted,
    /// Grounded rules streamed through the fused ground+eval pipeline —
    /// each is ⊕-accumulated into its head and dropped, never stored
    /// (the materialized pipeline's `grounded_rules` equivalent).
    StreamedRules,
    /// Re-firings of already-streamed groundings whose body values
    /// changed in a later fused round (the fused pipeline's semi-naive
    /// propagation tail).
    FusedRefires,
    /// Magic-set rewrites performed for demand-driven point queries.
    MagicRewrites,
    /// Connections rejected by the serving layer's bounded pending queue
    /// (`ERR BUSY` single-frame rejects under overload).
    OverloadRejections,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 18] = [
        Counter::IndexProbes,
        Counter::RuleFirings,
        Counter::FactsDiscovered,
        Counter::Contributions,
        Counter::GroundMergeNanos,
        Counter::EvalDrainNanos,
        Counter::SessionsOpened,
        Counter::SessionsClosed,
        Counter::QueriesServed,
        Counter::BatchesServed,
        Counter::BatchQueries,
        Counter::IncrementalApplied,
        Counter::IncrementalFallbacks,
        Counter::SessionsEvicted,
        Counter::StreamedRules,
        Counter::FusedRefires,
        Counter::MagicRewrites,
        Counter::OverloadRejections,
    ];

    /// Stable machine-readable name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::IndexProbes => "index_probes",
            Counter::RuleFirings => "rule_firings",
            Counter::FactsDiscovered => "facts_discovered",
            Counter::Contributions => "contributions",
            Counter::GroundMergeNanos => "ground_merge_nanos",
            Counter::EvalDrainNanos => "eval_drain_nanos",
            Counter::SessionsOpened => "sessions_opened",
            Counter::SessionsClosed => "sessions_closed",
            Counter::QueriesServed => "queries_served",
            Counter::BatchesServed => "batches_served",
            Counter::BatchQueries => "batch_queries",
            Counter::IncrementalApplied => "incremental_applied",
            Counter::IncrementalFallbacks => "incremental_fallbacks",
            Counter::SessionsEvicted => "sessions_evicted",
            Counter::StreamedRules => "streamed_rules",
            Counter::FusedRefires => "fused_refires",
            Counter::MagicRewrites => "magic_rewrites",
            Counter::OverloadRejections => "overload_rejections",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::IndexProbes => 0,
            Counter::RuleFirings => 1,
            Counter::FactsDiscovered => 2,
            Counter::Contributions => 3,
            Counter::GroundMergeNanos => 4,
            Counter::EvalDrainNanos => 5,
            Counter::SessionsOpened => 6,
            Counter::SessionsClosed => 7,
            Counter::QueriesServed => 8,
            Counter::BatchesServed => 9,
            Counter::BatchQueries => 10,
            Counter::IncrementalApplied => 11,
            Counter::IncrementalFallbacks => 12,
            Counter::SessionsEvicted => 13,
            Counter::StreamedRules => 14,
            Counter::FusedRefires => 15,
            Counter::MagicRewrites => 16,
            Counter::OverloadRejections => 17,
        }
    }
}

/// Engine cache events — the single home of the counters the
/// `Engine::cache_stats()` compatibility view reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheEvent {
    /// The grounded program was computed (at most once per session).
    Grounding,
    /// The program was classified (at most once per session).
    Classification,
    /// The provenance fixpoint over `Sorp` was run (at most once).
    ProvenanceRun,
    /// A circuit was actually constructed.
    CircuitBuilt,
    /// A circuit request was served from the per-fact cache.
    CircuitCacheHit,
    /// A semi-naive evaluation fell back to naive (non-⊕-idempotent
    /// semiring).
    SeminaiveFallback,
}

impl CacheEvent {
    fn index(self) -> usize {
        match self {
            CacheEvent::Grounding => 0,
            CacheEvent::Classification => 1,
            CacheEvent::ProvenanceRun => 2,
            CacheEvent::CircuitBuilt => 3,
            CacheEvent::CircuitCacheHit => 4,
            CacheEvent::SeminaiveFallback => 5,
        }
    }
}

/// One round of a delta-driven fixpoint (grounding phase 1, semi-naive
/// evaluation) or one ICO application (naive evaluation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number, 0-based within its stage run.
    pub round: u64,
    /// Size of the round's input frontier (facts for grounding, rules for
    /// evaluation).
    pub frontier: u64,
    /// New facts discovered (grounding) or head values strictly changed
    /// (evaluation) this round.
    pub delta: u64,
    /// Hash-index probes performed this round (grounding only).
    pub probes: u64,
    /// Grounded-rule firings this round (evaluation only).
    pub firings: u64,
    /// Worklist/queue length at the end of the round (next frontier).
    pub worklist: u64,
}

/// What one parallel shard (worker thread) did during one sharded call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker index within the sharded call (0-based).
    pub worker: u64,
    /// Wall-clock the worker spent inside its tasks, in nanoseconds.
    pub busy_nanos: u64,
    /// Number of tasks the worker executed.
    pub tasks: u64,
    /// Items the worker produced (facts, grounded rules, or `(head,
    /// contribution)` pairs, depending on the stage).
    pub produced: u64,
    /// Tasks this worker stole from another worker's chunk range (0 when
    /// every executed task came from its own range).
    pub steals: u64,
    /// `(head, contribution)` pairs this worker routed through per-owner
    /// mailboxes (0 for stages without owner-sharded accumulation).
    pub mailbox: u64,
}

/// The sink the pipeline reports into.
///
/// Every method has a no-op default, so a recorder only overrides what it
/// wants. Instrumented code MUST gate anything with a cost — reading a
/// clock, allocating a sample, an extra pass over data — on
/// [`enabled`](Recorder::enabled): when it returns `false` the
/// instrumented code paths must do no measurable extra work and produce
/// bit-identical results.
pub trait Recorder: Sync {
    /// Whether the expensive instrumentation (spans, rounds, shards)
    /// should run at all. Defaults to `false`.
    fn enabled(&self) -> bool {
        false
    }
    /// One completed span of `stage`, lasting `nanos` nanoseconds.
    fn stage_nanos(&self, stage: Stage, nanos: u64) {
        let _ = (stage, nanos);
    }
    /// One completed round within `stage`.
    fn round(&self, stage: Stage, stats: RoundStats) {
        let _ = (stage, stats);
    }
    /// One shard's contribution to a sharded call within `stage`.
    fn shard(&self, stage: Stage, stats: ShardStats) {
        let _ = (stage, stats);
    }
    /// Bump a monotonic counter by `delta`.
    fn counter(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }
}

/// The always-disabled recorder. [`NOOP`] is the shared instance the
/// un-instrumented entry points pass down.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Recorder for Noop {}

/// Shared [`Noop`] instance.
pub static NOOP: Noop = Noop;

/// Run `f`, attributing its wall-clock to `stage` when the recorder is
/// enabled. Disabled: no clock is read — this is exactly `f()`.
pub fn time<T>(rec: &dyn Recorder, stage: Stage, f: impl FnOnce() -> T) -> T {
    if !rec.enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    rec.stage_nanos(stage, start.elapsed().as_nanos() as u64);
    out
}

/// Cap on retained per-round samples (across all stages). Runs that
/// overflow it keep counting rounds but drop the samples — the drop count
/// is reported, never hidden.
const MAX_ROUND_SAMPLES: usize = 4096;

/// Aggregated per-`(stage, worker)` shard statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardAgg {
    /// Sharded calls this worker participated in.
    pub calls: u64,
    /// Total busy wall-clock, nanoseconds.
    pub busy_nanos: u64,
    /// Total tasks executed.
    pub tasks: u64,
    /// Total items produced.
    pub produced: u64,
    /// Total tasks stolen from other workers' chunk ranges.
    pub steals: u64,
    /// Total mailbox contributions routed to owners.
    pub mailbox: u64,
}

/// The concrete session collector: a [`Recorder`] whose cache events are
/// always counted (they back the `Engine::cache_stats()` view) and whose
/// spans/rounds/shards are recorded only when built enabled.
///
/// Thread-safe by construction — relaxed atomics for the hot counters,
/// short mutexed pushes for the (enabled-only) series — so one collector
/// can be shared with the scoped worker threads of the parallel pipeline
/// without perturbing their deterministic, bit-identical output.
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    enabled: bool,
    stage_calls: [AtomicU64; Stage::ALL.len()],
    stage_nanos: [AtomicU64; Stage::ALL.len()],
    counters: [AtomicU64; Counter::ALL.len()],
    cache: [AtomicU64; 6],
    rounds: Mutex<Vec<(Stage, RoundStats)>>,
    rounds_dropped: AtomicU64,
    shards: Mutex<Vec<((Stage, u64), ShardAgg)>>,
}

impl PipelineMetrics {
    /// A fresh collector. `enabled` gates spans/rounds/shards; cache
    /// events are counted either way.
    pub fn new(enabled: bool) -> Self {
        PipelineMetrics {
            enabled,
            ..Default::default()
        }
    }

    /// Whether span/round/shard recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Count one cache event (always, enabled or not — the
    /// `cache_stats()` compatibility view depends on it).
    pub fn cache_event(&self, event: CacheEvent) {
        self.cache[event.index()].fetch_add(1, Relaxed);
    }

    /// Current value of one cache event counter.
    pub fn cache_count(&self, event: CacheEvent) -> u64 {
        self.cache[event.index()].load(Relaxed)
    }

    /// Total nanoseconds attributed to `stage` so far.
    pub fn stage_total_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage.index()].load(Relaxed)
    }

    /// Number of completed spans attributed to `stage` so far.
    pub fn stage_calls(&self, stage: Stage) -> u64 {
        self.stage_calls[stage.index()].load(Relaxed)
    }

    /// Current value of a monotonic counter.
    pub fn counter_value(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Relaxed)
    }

    /// Owned snapshot of everything recorded so far.
    pub fn report(&self) -> MetricsReport {
        let stages = Stage::ALL
            .iter()
            .map(|&s| StageLine {
                stage: s,
                calls: self.stage_calls(s),
                total_nanos: self.stage_total_nanos(s),
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c, self.counter_value(c)))
            .collect();
        let rounds = self.rounds.lock().expect("rounds poisoned").clone();
        let shards = self.shards.lock().expect("shards poisoned").clone();
        MetricsReport {
            enabled: self.enabled,
            stages,
            counters,
            rounds,
            rounds_dropped: self.rounds_dropped.load(Relaxed),
            shards,
            cache: CacheSnapshot {
                groundings: self.cache_count(CacheEvent::Grounding),
                classifications: self.cache_count(CacheEvent::Classification),
                provenance_runs: self.cache_count(CacheEvent::ProvenanceRun),
                circuits_built: self.cache_count(CacheEvent::CircuitBuilt),
                circuit_cache_hits: self.cache_count(CacheEvent::CircuitCacheHit),
                seminaive_fallbacks: self.cache_count(CacheEvent::SeminaiveFallback),
            },
        }
    }
}

impl Recorder for PipelineMetrics {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn stage_nanos(&self, stage: Stage, nanos: u64) {
        self.stage_calls[stage.index()].fetch_add(1, Relaxed);
        self.stage_nanos[stage.index()].fetch_add(nanos, Relaxed);
    }

    fn round(&self, stage: Stage, stats: RoundStats) {
        if !self.enabled {
            return;
        }
        let mut rounds = self.rounds.lock().expect("rounds poisoned");
        if rounds.len() < MAX_ROUND_SAMPLES {
            rounds.push((stage, stats));
        } else {
            self.rounds_dropped.fetch_add(1, Relaxed);
        }
    }

    fn shard(&self, stage: Stage, stats: ShardStats) {
        if !self.enabled {
            return;
        }
        let key = (stage, stats.worker);
        let mut shards = self.shards.lock().expect("shards poisoned");
        let agg = match shards.iter_mut().find(|(k, _)| *k == key) {
            Some((_, agg)) => agg,
            None => {
                shards.push((key, ShardAgg::default()));
                &mut shards.last_mut().expect("just pushed").1
            }
        };
        agg.calls += 1;
        agg.busy_nanos += stats.busy_nanos;
        agg.tasks += stats.tasks;
        agg.produced += stats.produced;
        agg.steals += stats.steals;
        agg.mailbox += stats.mailbox;
    }

    fn counter(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Relaxed);
    }
}

/// One stage row of a [`MetricsReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageLine {
    /// The stage.
    pub stage: Stage,
    /// Completed spans.
    pub calls: u64,
    /// Total wall-clock, nanoseconds.
    pub total_nanos: u64,
}

/// Snapshot of the engine cache counters (mirrors
/// `provcirc::EngineCacheStats`, which is the compatible public view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Times the grounded program was computed.
    pub groundings: u64,
    /// Times the program was classified.
    pub classifications: u64,
    /// Times the provenance fixpoint was run.
    pub provenance_runs: u64,
    /// Circuits actually constructed.
    pub circuits_built: u64,
    /// Circuit requests served from cache.
    pub circuit_cache_hits: u64,
    /// Semi-naive → naive fallbacks.
    pub seminaive_fallbacks: u64,
}

/// An owned snapshot of a [`PipelineMetrics`] collector: render it as a
/// human-readable table (`Display`) or export it as JSON
/// ([`to_json`](MetricsReport::to_json)).
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Whether span/round/shard recording was on.
    pub enabled: bool,
    /// Per-stage spans, pipeline order.
    pub stages: Vec<StageLine>,
    /// Counter values, display order.
    pub counters: Vec<(Counter, u64)>,
    /// Raw per-round series (capped; see `rounds_dropped`).
    pub rounds: Vec<(Stage, RoundStats)>,
    /// Rounds recorded beyond the sample cap (counted, not retained).
    pub rounds_dropped: u64,
    /// Per-`(stage, worker)` aggregated shard stats.
    pub shards: Vec<((Stage, u64), ShardAgg)>,
    /// Engine cache counters.
    pub cache: CacheSnapshot,
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

impl MetricsReport {
    /// Total nanoseconds attributed to `stage`.
    pub fn stage_total_nanos(&self, stage: Stage) -> u64 {
        self.stages
            .iter()
            .find(|l| l.stage == stage)
            .map_or(0, |l| l.total_nanos)
    }

    /// Total milliseconds attributed to `stage`.
    pub fn stage_total_ms(&self, stage: Stage) -> f64 {
        ms(self.stage_total_nanos(stage))
    }

    /// The per-round series of one stage, in recording order.
    pub fn rounds_of(&self, stage: Stage) -> Vec<RoundStats> {
        self.rounds
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, r)| *r)
            .collect()
    }

    /// Serialize the whole report as JSON (hand-rolled, no dependencies —
    /// the same style as the committed `BENCH_*.json` trajectories).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"pipeline_metrics_v1\",\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));

        out.push_str("  \"stages\": [\n");
        let stage_lines: Vec<String> = self
            .stages
            .iter()
            .map(|l| {
                format!(
                    "    {{\"stage\": \"{}\", \"calls\": {}, \"total_ms\": {:.6}}}",
                    l.stage.name(),
                    l.calls,
                    ms(l.total_nanos)
                )
            })
            .collect();
        out.push_str(&stage_lines.join(",\n"));
        out.push_str("\n  ],\n");

        out.push_str("  \"counters\": {");
        let counter_fields: Vec<String> = self
            .counters
            .iter()
            .map(|(c, v)| format!("\"{}\": {v}", c.name()))
            .collect();
        out.push_str(&counter_fields.join(", "));
        out.push_str("},\n");

        out.push_str("  \"rounds\": [\n");
        let round_lines: Vec<String> = self
            .rounds
            .iter()
            .map(|(s, r)| {
                format!(
                    "    {{\"stage\": \"{}\", \"round\": {}, \"frontier\": {}, \
                     \"delta\": {}, \"probes\": {}, \"firings\": {}, \"worklist\": {}}}",
                    s.name(),
                    r.round,
                    r.frontier,
                    r.delta,
                    r.probes,
                    r.firings,
                    r.worklist
                )
            })
            .collect();
        out.push_str(&round_lines.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str(&format!("  \"rounds_dropped\": {},\n", self.rounds_dropped));

        out.push_str("  \"shards\": [\n");
        let shard_lines: Vec<String> = self
            .shards
            .iter()
            .map(|((s, w), a)| {
                format!(
                    "    {{\"stage\": \"{}\", \"worker\": {w}, \"calls\": {}, \
                     \"busy_ms\": {:.6}, \"tasks\": {}, \"produced\": {}, \
                     \"steals\": {}, \"mailbox\": {}}}",
                    s.name(),
                    a.calls,
                    ms(a.busy_nanos),
                    a.tasks,
                    a.produced,
                    a.steals,
                    a.mailbox
                )
            })
            .collect();
        out.push_str(&shard_lines.join(",\n"));
        out.push_str("\n  ],\n");

        out.push_str(&format!(
            "  \"cache\": {{\"groundings\": {}, \"classifications\": {}, \
             \"provenance_runs\": {}, \"circuits_built\": {}, \
             \"circuit_cache_hits\": {}, \"seminaive_fallbacks\": {}}}\n",
            self.cache.groundings,
            self.cache.classifications,
            self.cache.provenance_runs,
            self.cache.circuits_built,
            self.cache.circuit_cache_hits,
            self.cache.seminaive_fallbacks
        ));
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            writeln!(
                f,
                "telemetry disabled (enable with EngineBuilder::telemetry(true) or DATALOG_METRICS=1)"
            )?;
        }
        let total: u64 = self.stages.iter().map(|l| l.total_nanos).sum();
        writeln!(
            f,
            "{:<14} {:>6} {:>12} {:>7}",
            "stage", "calls", "total_ms", "share"
        )?;
        for l in &self.stages {
            if l.calls == 0 {
                continue;
            }
            let share = if total > 0 {
                100.0 * l.total_nanos as f64 / total as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "{:<14} {:>6} {:>12.3} {:>6.1}%",
                l.stage.name(),
                l.calls,
                ms(l.total_nanos),
                share
            )?;
        }
        let live: Vec<&(Counter, u64)> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !live.is_empty() {
            writeln!(f, "counters:")?;
            for (c, v) in live {
                writeln!(f, "  {:<20} {v}", c.name())?;
            }
        }
        for stage in [Stage::GroundPhase1, Stage::Eval, Stage::Provenance] {
            let rounds = self.rounds_of(stage);
            if rounds.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{} rounds ({}):  round  frontier  delta  worklist",
                stage.name(),
                rounds.len()
            )?;
            for r in &rounds {
                writeln!(
                    f,
                    "  {:>28} {:>9} {:>6} {:>9}",
                    r.round, r.frontier, r.delta, r.worklist
                )?;
            }
        }
        if self.rounds_dropped > 0 {
            writeln!(
                f,
                "  ({} further rounds counted but not retained)",
                self.rounds_dropped
            )?;
        }
        if !self.shards.is_empty() {
            writeln!(
                f,
                "shards:        {:<14} {:>6} {:>6} {:>12} {:>10} {:>7} {:>9}",
                "stage", "worker", "calls", "busy_ms", "produced", "steals", "mailbox"
            )?;
            for ((s, w), a) in &self.shards {
                writeln!(
                    f,
                    "               {:<14} {:>6} {:>6} {:>12.3} {:>10} {:>7} {:>9}",
                    s.name(),
                    w,
                    a.calls,
                    ms(a.busy_nanos),
                    a.produced,
                    a.steals,
                    a.mailbox
                )?;
            }
        }
        writeln!(
            f,
            "cache:         groundings={} classifications={} provenance_runs={} \
             circuits_built={} circuit_cache_hits={} seminaive_fallbacks={}",
            self.cache.groundings,
            self.cache.classifications,
            self.cache.provenance_runs,
            self.cache.circuits_built,
            self.cache.circuit_cache_hits,
            self.cache.seminaive_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        assert!(!NOOP.enabled());
        // All default methods are no-ops — nothing to observe, but they
        // must not panic.
        NOOP.stage_nanos(Stage::Parse, 1);
        NOOP.round(Stage::Eval, RoundStats::default());
        NOOP.shard(Stage::Eval, ShardStats::default());
        NOOP.counter(Counter::IndexProbes, 1);
    }

    #[test]
    fn time_attributes_only_when_enabled() {
        let off = PipelineMetrics::new(false);
        assert_eq!(time(&off, Stage::Parse, || 41 + 1), 42);
        assert_eq!(off.stage_calls(Stage::Parse), 0);
        assert_eq!(off.stage_total_nanos(Stage::Parse), 0);

        let on = PipelineMetrics::new(true);
        assert_eq!(time(&on, Stage::Parse, || 42), 42);
        assert_eq!(on.stage_calls(Stage::Parse), 1);
    }

    #[test]
    fn cache_events_count_even_when_disabled() {
        let m = PipelineMetrics::new(false);
        m.cache_event(CacheEvent::Grounding);
        m.cache_event(CacheEvent::CircuitCacheHit);
        m.cache_event(CacheEvent::CircuitCacheHit);
        assert_eq!(m.cache_count(CacheEvent::Grounding), 1);
        assert_eq!(m.cache_count(CacheEvent::CircuitCacheHit), 2);
        assert_eq!(m.report().cache.circuit_cache_hits, 2);
    }

    #[test]
    fn rounds_and_shards_are_gated_on_enabled() {
        let off = PipelineMetrics::new(false);
        off.round(Stage::Eval, RoundStats::default());
        off.shard(Stage::Eval, ShardStats::default());
        assert!(off.report().rounds.is_empty());
        assert!(off.report().shards.is_empty());

        let on = PipelineMetrics::new(true);
        on.round(
            Stage::GroundPhase1,
            RoundStats {
                round: 0,
                frontier: 3,
                delta: 2,
                probes: 10,
                firings: 0,
                worklist: 2,
            },
        );
        on.shard(
            Stage::Eval,
            ShardStats {
                worker: 1,
                busy_nanos: 500,
                tasks: 2,
                produced: 7,
                steals: 1,
                mailbox: 4,
            },
        );
        on.shard(
            Stage::Eval,
            ShardStats {
                worker: 1,
                busy_nanos: 300,
                tasks: 1,
                produced: 3,
                steals: 0,
                mailbox: 2,
            },
        );
        let r = on.report();
        assert_eq!(r.rounds_of(Stage::GroundPhase1).len(), 1);
        assert_eq!(r.shards.len(), 1);
        let agg = r.shards[0].1;
        assert_eq!(agg.calls, 2);
        assert_eq!(agg.busy_nanos, 800);
        assert_eq!(agg.produced, 10);
        assert_eq!(agg.steals, 1);
        assert_eq!(agg.mailbox, 6);
    }

    #[test]
    fn round_samples_are_capped_not_silently_lost() {
        let on = PipelineMetrics::new(true);
        for i in 0..(MAX_ROUND_SAMPLES as u64 + 5) {
            on.round(
                Stage::Eval,
                RoundStats {
                    round: i,
                    ..Default::default()
                },
            );
        }
        let r = on.report();
        assert_eq!(r.rounds.len(), MAX_ROUND_SAMPLES);
        assert_eq!(r.rounds_dropped, 5);
        assert!(r.to_json().contains("\"rounds_dropped\": 5"));
    }

    #[test]
    fn json_has_every_stage_and_counter() {
        let on = PipelineMetrics::new(true);
        on.stage_nanos(Stage::GroundPhase1, 1_500_000);
        on.counter(Counter::IndexProbes, 12);
        let json = on.report().to_json();
        for stage in Stage::ALL {
            assert!(json.contains(stage.name()), "{} missing", stage.name());
        }
        for counter in Counter::ALL {
            assert!(json.contains(counter.name()), "{} missing", counter.name());
        }
        assert!(json.contains("\"schema\": \"pipeline_metrics_v1\""));
        assert!(json.contains("\"index_probes\": 12"));
        // Balanced braces/brackets — the cheap well-formedness check the
        // shape test in `tests/` deepens with a real parser.
        let braces = json.matches('{').count() == json.matches('}').count();
        let brackets = json.matches('[').count() == json.matches(']').count();
        assert!(braces && brackets);
    }

    #[test]
    fn display_renders_a_table() {
        let on = PipelineMetrics::new(true);
        on.stage_nanos(Stage::GroundPhase1, 2_000_000);
        on.stage_nanos(Stage::Eval, 1_000_000);
        let text = on.report().to_string();
        assert!(text.contains("ground_phase1"));
        assert!(text.contains("eval"));
        assert!(text.contains("share"));
    }
}
