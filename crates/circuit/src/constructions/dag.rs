//! Linear-size circuits for reachability provenance on DAGs
//! (Theorem 3.5: "the graph itself is a circuit").
//!
//! For an acyclic graph, the gate of a vertex `v` is the ⊕-sum over incoming
//! edges `(u, v)` of `gate(u) ⊗ x_{(u,v)}`, with `gate(s) = 1`. The output
//! `gate(t)` computes the sum over all `s → t` paths of the product of their
//! edge variables — linear size, depth linear in the longest path (times a
//! log factor for fan-in-2 sums). On an `(ℓ, L)`-layered graph this is
//! exactly the paper's linear-size, linear-depth circuit, the counterpoint
//! to the Ω(log² n) *depth* lower bound of Theorem 3.4.

use graphgen::{LabeledDigraph, NodeId};
use provcirc_error::Error;
use semiring::VarId;

use crate::arena::{Circuit, CircuitBuilder};

/// Build the Theorem 3.5 circuit for `s → t` path provenance on an acyclic
/// edge list. `vars[e]` is the provenance variable of edge `e`.
///
/// Returns an error if the (live part of the) graph has a cycle.
pub fn dag_path_circuit(
    num_nodes: usize,
    edges: &[(NodeId, NodeId)],
    vars: &[VarId],
    s: NodeId,
    t: NodeId,
) -> Result<Circuit, Error> {
    assert_eq!(edges.len(), vars.len());
    // Kahn topological order.
    let mut indegree = vec![0usize; num_nodes];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut out_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
    for (e, &(u, v)) in edges.iter().enumerate() {
        indegree[v as usize] += 1;
        in_edges[v as usize].push(e);
        out_nodes[u as usize].push(v);
    }
    let mut order: Vec<NodeId> = Vec::with_capacity(num_nodes);
    let mut queue: Vec<NodeId> = (0..num_nodes as NodeId)
        .filter(|&v| indegree[v as usize] == 0)
        .collect();
    while let Some(u) = queue.pop() {
        order.push(u);
        for &v in &out_nodes[u as usize] {
            indegree[v as usize] -= 1;
            if indegree[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() != num_nodes {
        return Err(Error::unsupported(
            "graph has a cycle; Theorem 3.5 needs a DAG",
        ));
    }

    let mut b = CircuitBuilder::new();
    let zero = b.zero();
    let one = b.one();
    let mut gate = vec![zero; num_nodes];
    gate[s as usize] = one;
    for &v in &order {
        if v == s {
            continue; // the source contributes the empty path only
        }
        let summands: Vec<_> = in_edges[v as usize]
            .iter()
            .map(|&e| {
                let src_gate = gate[edges[e].0 as usize];
                let x = b.input(vars[e]);
                b.mul(src_gate, x)
            })
            .collect();
        gate[v as usize] = b.add_many(&summands);
    }
    Ok(b.finish(gate[t as usize]))
}

/// Wrapper for a [`LabeledDigraph`] with edge ids as provenance variables.
pub fn dag_path_circuit_graph(g: &LabeledDigraph, s: NodeId, t: NodeId) -> Result<Circuit, Error> {
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    let vars: Vec<VarId> = (0..g.num_edges() as VarId).collect();
    dag_path_circuit(g.num_nodes(), &edges, &vars, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::stats;
    use datalog::{programs, Database};
    use graphgen::generators;
    use semiring::Semiring;
    use semiring::Tropical;
    use semiring::UnitWeights;

    #[test]
    fn matches_tc_provenance_on_layered_graphs() {
        for seed in 0..3u64 {
            let (g, s, t) = generators::layered(3, 3, 0.7, "E", seed);
            let circuit = dag_path_circuit_graph(&g, s, t).unwrap();
            // Oracle: grounded TC provenance of T(s,t).
            let mut p = programs::transitive_closure();
            let (db, _) = Database::from_graph(&mut p, &g);
            let gp = datalog::ground(&p, &db).unwrap();
            let tpred = p.preds.get("T").unwrap();
            let expected = gp
                .fact(
                    tpred,
                    &[
                        db.node_const(s as usize).unwrap(),
                        db.node_const(t as usize).unwrap(),
                    ],
                )
                .map(|f| datalog::provenance_polynomial(&gp, f, 100_000).unwrap());
            match expected {
                Some(poly) => assert_eq!(circuit.polynomial(), poly, "seed {seed}"),
                None => assert!(circuit.polynomial().is_empty(), "seed {seed}"),
            }
        }
    }

    #[test]
    fn size_is_linear_in_edges() {
        for (w, l) in [(3usize, 4usize), (4, 8), (5, 12)] {
            let (g, s, t) = generators::layered(w, l, 1.0, "E", 1);
            let circuit = dag_path_circuit_graph(&g, s, t).unwrap();
            let st = stats(&circuit);
            // ≤ 3 gates per edge (input, mul, share of adds) + constants.
            assert!(
                st.num_gates <= 3 * g.num_edges() + 3,
                "w={w} l={l}: {} gates for {} edges",
                st.num_gates,
                g.num_edges()
            );
        }
    }

    #[test]
    fn depth_is_linear_in_layers() {
        let mut depths = Vec::new();
        for l in [4usize, 8, 16] {
            let (g, s, t) = generators::layered(3, l, 1.0, "E", 1);
            let circuit = dag_path_circuit_graph(&g, s, t).unwrap();
            depths.push(stats(&circuit).depth);
        }
        // Depth grows linearly with the number of layers.
        let d0 = depths[0] as f64;
        assert!((depths[1] as f64) > 1.7 * d0);
        assert!((depths[2] as f64) > 3.4 * d0);
    }

    #[test]
    fn rejects_cycles() {
        let g = generators::cycle(3, "E");
        assert!(dag_path_circuit_graph(&g, 0, 1).is_err());
    }

    #[test]
    fn tropical_value_is_shortest_path() {
        let g = generators::random_dag(10, 0.5, "E", 4);
        if let Ok(circuit) = dag_path_circuit_graph(&g, 0, 9) {
            let val = circuit.eval(&UnitWeights::new(Tropical::new(1)));
            match g.bfs_distances(0)[9] {
                Some(d) => assert_eq!(val, Tropical::new(d)),
                None => assert!(val.is_zero()),
            }
        }
    }
}
