//! The paper's circuit constructions, one module per theorem.
//!
//! | Module | Paper result | Size | Depth |
//! |---|---|---|---|
//! | [`grounded`] | Thm 3.1 (Deutch et al.) / Thm 4.3 | poly(m) | O(K log m), K = fixpoint iterations (O(1) for bounded programs) |
//! | [`dag`] | Thm 3.5 (layered graphs) | O(m) | O(L log ℓ) (linear) |
//! | [`bellman_ford`] | Thm 5.6 | O(mn) | O(n log n) |
//! | [`squaring`] | Thm 5.7 (NC² analogue) | O(n³ log n) | O(log² n) |
//! | [`uvg`] | Thm 6.2 (Ullman–Van Gelder) | poly(m) | O(log² m) |
//! | [`magic_rpq`] | Thm 5.8 (finite RPQs) | O(m) | O(log n) |
//! | [`rpq`] | Thm 5.9 (product-graph direction) | inherits | inherits |

pub mod bellman_ford;
pub mod dag;
pub mod grounded;
pub mod magic_rpq;
pub mod rpq;
pub mod squaring;
pub mod uvg;

use crate::arena::{Circuit, CircuitBuilder, GateId};

/// A circuit arena with one output gate per IDB fact; extract a
/// single-output [`Circuit`] per fact of interest.
#[derive(Clone, Debug)]
pub struct MultiOutput {
    builder: CircuitBuilder,
    /// Output gate per fact (aligned with the construction's fact order).
    pub outputs: Vec<GateId>,
    /// Layers / stages the construction used before reaching its structural
    /// fixpoint or cap.
    pub layers: usize,
}

impl MultiOutput {
    pub(crate) fn new(builder: CircuitBuilder, outputs: Vec<GateId>, layers: usize) -> Self {
        MultiOutput {
            builder,
            outputs,
            layers,
        }
    }

    /// The circuit computing fact `i`'s provenance polynomial.
    pub fn circuit_for(&self, i: usize) -> Circuit {
        self.builder.clone().finish(self.outputs[i])
    }

    /// Total arena size (shared across all outputs).
    pub fn arena_size(&self) -> usize {
        self.builder.arena_size()
    }
}
