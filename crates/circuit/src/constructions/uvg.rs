//! The Ullman–Van Gelder low-depth circuit (Theorem 6.2): for any Datalog
//! program with the polynomial fringe property, polynomial size and depth
//! O(log² |I|) over any absorptive semiring.
//!
//! The circuit maintains a gate matrix `G` over ids `N ∪ {0}` (`N` = the
//! derivable IDB facts, `0` a special source id). Each of the `K` stages
//! performs (paper's four steps):
//!
//! 1. `G1[0, α] ← ⊕_{α :- ∧ᵢβᵢ ∧ⱼγⱼ} (Πᵢ G^{k-1}[0, βᵢ] ⊗ Πⱼ x_{γⱼ})`
//! 2. `G1[δ, α] ← ⊕_{α :- δ ∧ᵢβᵢ ∧ⱼγⱼ} (Πᵢ G1[0, βᵢ] ⊗ Πⱼ x_{γⱼ})`
//!    (one term per *occurrence* of δ in the body; the remaining IDB facts
//!    use the *current-stage* `G1[0, ·]` values)
//! 3. `G2 ← G^{k-1} ⊕ G1` (pointwise)
//! 4. `G^k[a, b] ← G2[a, b] ⊕ ⊕_γ G2[a, γ] ⊗ G2[γ, b]` (one squaring step
//!    of transitive closure on the id graph)
//!
//! After `K = O(log(max tight-tree size))` stages, `G^K[0, α]` computes the
//! provenance polynomial of `α`. Each stage has depth O(log |I|), giving
//! O(log² |I|) total. Hash-consing stops the stage loop at the structural
//! fixpoint, so `K` adapts to the instance.

use datalog::GroundedProgram;

use crate::arena::{CircuitBuilder, GateId};
use crate::constructions::MultiOutput;

/// Build the Theorem 6.2 circuit; `stages = None` runs to the structural
/// fixpoint, capped at `⌈log_{4/3}(gp.size() + 2)⌉ + 2` (the paper's stage
/// bound for polynomial-fringe programs).
pub fn uvg_circuit(gp: &GroundedProgram, stages: Option<usize>) -> MultiOutput {
    let n = gp.num_idb_facts();
    let ids = n + 1; // id n is the special ⟨0⟩ node
    let source = n;
    let cap = stages.unwrap_or_else(|| {
        let m = (gp.size() + 2) as f64;
        (m.ln() / (4.0f64 / 3.0).ln()).ceil() as usize + 2
    });

    let mut b = CircuitBuilder::new();
    let zero = b.zero();
    // G[a][b] indexed as a * ids + b; only the columns of IDB facts are
    // ever read (edges point *into* fact ids), rows include the source.
    let mut g = vec![zero; ids * ids];
    let mut stages_used = 0;

    for _ in 0..cap {
        // Step 1: G1[0, α].
        let mut g1 = vec![zero; ids * ids];
        for alpha in 0..n {
            let mut summands = Vec::with_capacity(gp.rules_by_head[alpha].len());
            for &ri in &gp.rules_by_head[alpha] {
                let rule = &gp.rules[ri];
                let mut factors = Vec::with_capacity(rule.body_idb.len() + rule.body_edb.len());
                for &beta in &rule.body_idb {
                    factors.push(g[source * ids + beta]);
                }
                for &x in &rule.body_edb {
                    factors.push(b.input(x));
                }
                summands.push(b.mul_many(&factors));
            }
            g1[source * ids + alpha] = b.add_many(&summands);
        }
        // Step 2: G1[δ, α] — one term per occurrence of δ in a body,
        // using the current-stage G1[0, ·] for the remaining IDB facts.
        for alpha in 0..n {
            // Group terms by δ to form the sums.
            let mut terms: std::collections::HashMap<usize, Vec<GateId>> =
                std::collections::HashMap::new();
            for &ri in &gp.rules_by_head[alpha] {
                let rule = &gp.rules[ri];
                for (pos, &delta) in rule.body_idb.iter().enumerate() {
                    let mut factors =
                        Vec::with_capacity(rule.body_idb.len() - 1 + rule.body_edb.len());
                    for (other, &beta) in rule.body_idb.iter().enumerate() {
                        if other != pos {
                            factors.push(g1[source * ids + beta]);
                        }
                    }
                    for &x in &rule.body_edb {
                        factors.push(b.input(x));
                    }
                    let term = b.mul_many(&factors);
                    terms.entry(delta).or_default().push(term);
                }
            }
            for (delta, ts) in terms {
                g1[delta * ids + alpha] = b.add_many(&ts);
            }
        }
        // Step 3: G2 = G ⊕ G1.
        let mut g2 = vec![zero; ids * ids];
        for (i, slot) in g2.iter_mut().enumerate() {
            *slot = b.add(g[i], g1[i]);
        }
        // Step 4: one TC-squaring step.
        let mut next = vec![zero; ids * ids];
        for a in 0..ids {
            for c in 0..ids {
                let mut summands = Vec::with_capacity(ids + 1);
                summands.push(g2[a * ids + c]);
                for mid in 0..ids {
                    let (l, r) = (g2[a * ids + mid], g2[mid * ids + c]);
                    summands.push(b.mul(l, r));
                }
                next[a * ids + c] = b.add_many(&summands);
            }
        }
        stages_used += 1;
        if next == g {
            break;
        }
        g = next;
    }

    let outputs: Vec<GateId> = (0..n).map(|alpha| g[source * ids + alpha]).collect();
    MultiOutput::new(b, outputs, stages_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::grounded::grounded_circuit;
    use crate::metrics::stats;
    use datalog::{programs, Database};
    use graphgen::generators;

    fn grounded_for(
        program: &mut datalog::Program,
        g: &graphgen::LabeledDigraph,
    ) -> (Database, GroundedProgram) {
        let (db, _) = Database::from_graph(program, g);
        let gp = datalog::ground(program, &db).unwrap();
        (db, gp)
    }

    #[test]
    fn matches_grounded_circuit_on_tc() {
        for seed in 0..3u64 {
            let g = generators::gnm(5, 9, &["E"], seed);
            let mut p = programs::transitive_closure();
            let (_, gp) = grounded_for(&mut p, &g);
            let uvg = uvg_circuit(&gp, None);
            let layered = grounded_circuit(&gp, None);
            for fact in 0..gp.num_idb_facts() {
                assert_eq!(
                    uvg.circuit_for(fact).polynomial(),
                    layered.circuit_for(fact).polynomial(),
                    "seed {seed}, fact {fact}"
                );
            }
        }
    }

    #[test]
    fn matches_provenance_on_dyck_paths() {
        // Non-linear program with the polynomial fringe property
        // (Example 6.4).
        for (pairs, seed) in [(2usize, 1u64), (3, 2)] {
            let mut p = programs::dyck1();
            let g = generators::dyck_path(pairs, seed);
            let (_, gp) = grounded_for(&mut p, &g);
            let uvg = uvg_circuit(&gp, None);
            let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
            assert!(out.converged);
            for fact in 0..gp.num_idb_facts() {
                assert_eq!(
                    uvg.circuit_for(fact).polynomial(),
                    out.values[fact],
                    "pairs {pairs}, fact {fact}"
                );
            }
        }
    }

    #[test]
    fn stage_count_is_logarithmic_on_paths() {
        // TC on a path of length n: the layered circuit needs Θ(n) layers,
        // UvG only Θ(log n) stages.
        let mut rows = Vec::new();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let mut p = programs::transitive_closure();
            let (_, gp) = grounded_for(&mut p, &g);
            let uvg = uvg_circuit(&gp, None);
            let layered = grounded_circuit(&gp, None);
            rows.push((n, uvg.layers, layered.layers));
        }
        // Layered grows linearly (≈ +n/2 per doubling)…
        assert!(rows[2].2 >= 2 * rows[1].2 - 2, "{rows:?}");
        // …UvG grows by O(1) stages per doubling of n (logarithmically).
        assert!(rows[1].1 - rows[0].1 <= 6, "{rows:?}");
        assert!(rows[2].1 - rows[1].1 <= 6, "{rows:?}");
        assert!(rows[2].1 < rows[2].2 + 10, "{rows:?}");
    }

    #[test]
    fn depth_is_polylog_on_paths() {
        let mut depths = Vec::new();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let mut p = programs::transitive_closure();
            let (db, gp) = grounded_for(&mut p, &g);
            let t = p.preds.get("T").unwrap();
            let fact = gp
                .fact(t, &[db.node_const(0).unwrap(), db.node_const(n).unwrap()])
                .unwrap();
            let uvg = uvg_circuit(&gp, None);
            depths.push(stats(&uvg.circuit_for(fact)).depth as f64);
        }
        // Sub-linear growth: doubling n must not double depth.
        assert!(depths[2] / depths[1] < 1.8, "{depths:?}");
        assert!(depths[1] / depths[0] < 1.8, "{depths:?}");
    }

    #[test]
    fn same_generation_linear_program() {
        // Linear non-chain program (Corollary 6.3).
        let mut p = programs::same_generation();
        // Small tree: F(x,y) flat pairs, U/D edges up/down.
        let mut g = graphgen::LabeledDigraph::new(7);
        // parent structure: 0-(1,2), 1-(3,4), 2-(5,6)
        for (c, par) in [(1u32, 0u32), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)] {
            g.add_edge(c, par, "U");
            g.add_edge(par, c, "D");
        }
        g.add_edge(3, 3, "F");
        let (_, gp) = grounded_for(&mut p, &g);
        let uvg = uvg_circuit(&gp, None);
        let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        assert!(out.converged);
        for fact in 0..gp.num_idb_facts() {
            assert_eq!(uvg.circuit_for(fact).polynomial(), out.values[fact]);
        }
    }
}
