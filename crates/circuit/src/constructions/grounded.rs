//! The layered fixpoint circuit over the grounded program
//! (Theorem 3.1 / Deutch et al., and Theorem 4.3 for bounded programs).
//!
//! Layer `k` encodes the `k`-th naive-evaluation iteration: the gate of
//! fact `α` at layer `k` is the ⊕-sum over grounded rules with head `α` of
//! the ⊗-product of the body gates at layer `k-1` and the rule's EDB
//! variables. Sums and products are balanced, so each layer adds only
//! O(log m) depth. Hash-consing detects the structural fixpoint: for a
//! bounded program it is reached after O(1) layers on every input, which is
//! exactly Theorem 4.3's log-depth circuit; in general at most
//! `#IDB facts + 1` layers suffice over any absorptive semiring.

use datalog::GroundedProgram;

use crate::arena::CircuitBuilder;
use crate::constructions::MultiOutput;

/// Build the layered circuit. `max_layers = None` runs to the structural
/// fixpoint (capped at `#IDB facts + 1`).
pub fn grounded_circuit(gp: &GroundedProgram, max_layers: Option<usize>) -> MultiOutput {
    let n = gp.num_idb_facts();
    let cap = max_layers.unwrap_or(n + 1);
    let mut b = CircuitBuilder::new();
    let zero = b.zero();
    let mut vals = vec![zero; n];
    let mut layers = 0;
    for _ in 0..cap {
        let mut next = vec![zero; n];
        for (fact, slot) in next.iter_mut().enumerate() {
            let mut summands = Vec::with_capacity(gp.rules_by_head[fact].len());
            for &ri in &gp.rules_by_head[fact] {
                let rule = &gp.rules[ri];
                let mut factors = Vec::with_capacity(rule.body_idb.len() + rule.body_edb.len());
                for &i in &rule.body_idb {
                    factors.push(vals[i]);
                }
                for &f in &rule.body_edb {
                    factors.push(b.input(f));
                }
                summands.push(b.mul_many(&factors));
            }
            *slot = b.add_many(&summands);
        }
        layers += 1;
        if next == vals {
            break;
        }
        vals = next;
    }
    MultiOutput::new(b, vals, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::{programs, Database};
    use graphgen::generators;
    use semiring::prelude::*;

    fn tc_grounded(g: &graphgen::LabeledDigraph) -> (datalog::Program, Database, GroundedProgram) {
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = datalog::ground(&p, &db).unwrap();
        (p, db, gp)
    }

    #[test]
    fn circuit_matches_proof_tree_polynomial_on_figure1() {
        let mut g = graphgen::LabeledDigraph::new(6);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)] {
            g.add_edge(u, v, "E");
        }
        let (p, db, gp) = tc_grounded(&g);
        let mo = grounded_circuit(&gp, None);
        let t = p.preds.get("T").unwrap();
        let fact = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(5).unwrap()])
            .unwrap();
        let circuit = mo.circuit_for(fact);
        let expected = datalog::provenance_polynomial(&gp, fact, 10_000).unwrap();
        assert_eq!(circuit.polynomial(), expected);
    }

    #[test]
    fn circuit_matches_naive_eval_on_random_graphs() {
        for seed in 0..4u64 {
            let g = generators::gnm(7, 14, &["E"], seed);
            let (_, _, gp) = tc_grounded(&g);
            let mo = grounded_circuit(&gp, None);
            let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
            assert!(out.converged);
            for fact in 0..gp.num_idb_facts() {
                assert_eq!(
                    mo.circuit_for(fact).polynomial(),
                    out.values[fact],
                    "seed {seed}, fact {fact}"
                );
            }
        }
    }

    #[test]
    fn tropical_values_agree_with_direct_eval() {
        let g = generators::gnm(8, 20, &["E"], 9);
        let (_, _, gp) = tc_grounded(&g);
        let mo = grounded_circuit(&gp, None);
        let assign = semiring::from_fn(|f: u32| Tropical::new((f as u64 % 4) + 1));
        let direct = datalog::naive_eval(&gp, &assign, datalog::default_budget(&gp));
        for fact in 0..gp.num_idb_facts() {
            assert_eq!(mo.circuit_for(fact).eval(&assign), direct.values[fact]);
        }
    }

    #[test]
    fn bounded_program_needs_constant_layers() {
        // Theorem 4.3: for a *bounded* program, the number of semantic
        // fixpoint iterations is O(1), so the layered circuit truncated at
        // that constant is already exact. (The builder's structural
        // fixpoint can lag the semantic one, which is why the theorem's
        // construction takes the boundedness constant as input.)
        let mut p = programs::bounded_example();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let (mut db, _) = Database::from_graph(&mut p, &g);
            let a = p.preds.get("A").unwrap();
            let v0 = db.node_const(0).unwrap();
            db.insert(a, vec![v0]);
            let gp = datalog::ground(&p, &db).unwrap();
            let probe = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
            assert!(probe.converged);
            assert!(
                probe.iterations <= 4,
                "bounded program took {} iterations at n={n}",
                probe.iterations
            );
            // Truncating at the semantic constant yields the exact
            // provenance for every fact.
            let mo = grounded_circuit(&gp, Some(probe.iterations));
            for fact in 0..gp.num_idb_facts() {
                assert_eq!(
                    mo.circuit_for(fact).polynomial(),
                    probe.values[fact],
                    "n={n} fact={fact}"
                );
            }
        }
    }

    #[test]
    fn unbounded_tc_layers_grow() {
        let mut layer_counts = Vec::new();
        for n in [4usize, 8, 16] {
            let g = generators::path(n, "E");
            let (_, _, gp) = tc_grounded(&g);
            let mo = grounded_circuit(&gp, None);
            layer_counts.push(mo.layers);
        }
        assert!(layer_counts[0] < layer_counts[1] && layer_counts[1] < layer_counts[2]);
    }

    #[test]
    fn truncated_layers_underapproximate() {
        // With only 2 layers, long paths are missing: the polynomial at
        // T(0,4) on a 4-path must be 0 (path needs 4 iterations).
        let g = generators::path(4, "E");
        let (p, db, gp) = tc_grounded(&g);
        let mo = grounded_circuit(&gp, Some(2));
        let t = p.preds.get("T").unwrap();
        let fact = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(4).unwrap()])
            .unwrap();
        assert!(mo.circuit_for(fact).polynomial().is_empty());
    }

    #[test]
    fn dyck_program_provenance_matches() {
        let mut p = programs::dyck1();
        let g = generators::dyck_path(4, 3);
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        let mo = grounded_circuit(&gp, None);
        let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
        assert!(out.converged);
        for fact in 0..gp.num_idb_facts() {
            assert_eq!(mo.circuit_for(fact).polynomial(), out.values[fact]);
        }
        let _ = db;
    }
}
