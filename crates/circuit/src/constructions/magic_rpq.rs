//! Linear-size, O(log n)-depth circuits for finite RPQs (Theorem 5.8).
//!
//! For a left-linear chain program whose regular language is finite, the
//! magic-set rewriting bound to the query source makes every IDB unary; the
//! rewritten program has an O(m)-size grounding and reaches its fixpoint in
//! at most `longest word + 1` iterations, so the layered circuit has O(m)
//! size and O(log n) depth. This is the upper half of the Theorem 5.3
//! depth dichotomy.

use datalog::{classify, magic_rewrite, Database, Program};
use grammar::{CfgAnalysis, Cnf};
use graphgen::{LabeledDigraph, NodeId};
use provcirc_error::Error;

use crate::arena::Circuit;
use crate::constructions::grounded::grounded_circuit;

/// Outcome of the Theorem 5.8 construction.
#[derive(Clone, Debug)]
pub struct FiniteRpqCircuit {
    /// The circuit for the queried fact (constant 0 if not derivable).
    pub circuit: Circuit,
    /// Longest word of the (finite) language — the layer bound.
    pub longest_word: u64,
    /// Size of the rewritten program's grounding.
    pub grounding_size: usize,
    /// Total gates in the construction's shared arena (the circuit for the
    /// *whole* query, all targets at once) — the paper's O(m) object.
    pub arena_gates: usize,
}

/// Build the linear-size circuit for `target(src, dst)` of a left-linear
/// chain program with a finite language.
///
/// Errors if the program is not a left-linear chain program or its language
/// is infinite (then Theorem 5.9's Ω(log² n) lower bound applies instead).
pub fn finite_rpq_circuit(
    program: &Program,
    graph: &LabeledDigraph,
    src: NodeId,
    dst: NodeId,
) -> Result<FiniteRpqCircuit, Error> {
    if !classify(program).is_left_linear_chain {
        return Err(Error::unsupported(
            "Theorem 5.8 needs a left-linear chain program",
        ));
    }
    let cfg = datalog::chain_to_cfg(program)?;
    let cnf = Cnf::from_cfg(&cfg);
    let analysis = CfgAnalysis::new(&cnf);
    let longest_word = analysis
        .longest_word_len(&cnf)
        .ok_or_else(|| Error::unsupported("language is infinite: Theorem 5.8 does not apply"))?;

    let rewritten = magic_rewrite(program, &format!("v{src}"))?;
    let mut p = rewritten.program;
    let (db, _) = Database::from_graph(&mut p, graph);
    let gp = datalog::ground(&p, &db)?;
    let mo = grounded_circuit(&gp, Some(longest_word as usize + 1));

    let target_name = format!("{}_s", program.preds.name(program.target));
    let tpred = p
        .preds
        .get(&target_name)
        .ok_or_else(|| Error::unsupported("rewritten target missing"))?;
    let circuit = match db
        .node_const(dst as usize)
        .and_then(|c| gp.fact(tpred, &[c]))
    {
        Some(fact) => mo.circuit_for(fact),
        None => {
            // Not derivable: the constant-0 circuit.
            let mut b = crate::arena::CircuitBuilder::new();
            let z = b.zero();
            b.finish(z)
        }
    };
    Ok(FiniteRpqCircuit {
        circuit,
        longest_word,
        grounding_size: gp.size(),
        arena_gates: mo.arena_size(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::stats;
    use datalog::programs;
    use graphgen::generators;

    /// A left-linear program for the finite language {E·E·E}.
    fn three_hop_left_linear() -> Program {
        datalog::parse_program(
            "P3(X,Y) :- P2(X,Z), E(Z,Y).\n\
             P2(X,Y) :- P1(X,Z), E(Z,Y).\n\
             P1(X,Y) :- E(X,Y).\n\
             @target P3",
        )
        .unwrap()
    }

    #[test]
    fn rejects_infinite_languages_and_non_chain() {
        let tc = programs::transitive_closure();
        let g = generators::path(3, "E");
        assert!(finite_rpq_circuit(&tc, &g, 0, 3)
            .unwrap_err()
            .to_string()
            .contains("infinite"));
        let monadic = programs::monadic_reachability();
        assert!(finite_rpq_circuit(&monadic, &g, 0, 3).is_err());
    }

    #[test]
    fn matches_tc_truncation_on_paths() {
        // P3(0, 3) on a 3-path: exactly one monomial (the full path).
        let p = three_hop_left_linear();
        let g = generators::path(3, "E");
        let out = finite_rpq_circuit(&p, &g, 0, 3).unwrap();
        assert_eq!(out.longest_word, 3);
        let poly = out.circuit.polynomial();
        assert_eq!(poly.len(), 1);
        assert_eq!(poly.degree(), 3);
        // And P3(0, 2) is empty.
        let out2 = finite_rpq_circuit(&p, &g, 0, 2).unwrap();
        assert!(out2.circuit.polynomial().is_empty());
    }

    #[test]
    fn matches_direct_grounding_provenance() {
        for seed in 0..3u64 {
            let p = three_hop_left_linear();
            let g = generators::gnm(7, 16, &["E"], seed);
            for dst in 1..5u32 {
                let out = finite_rpq_circuit(&p, &g, 0, dst).unwrap();
                // Oracle: ground the *original* program, read P3(v0, vdst).
                let mut po = three_hop_left_linear();
                let (db, _) = Database::from_graph(&mut po, &g);
                let gp = datalog::ground(&po, &db).unwrap();
                let t = po.preds.get("P3").unwrap();
                let expect = gp
                    .fact(
                        t,
                        &[
                            db.node_const(0).unwrap(),
                            db.node_const(dst as usize).unwrap(),
                        ],
                    )
                    .map(|f| datalog::provenance_polynomial(&gp, f, 100_000).unwrap());
                match expect {
                    Some(poly) => {
                        assert_eq!(out.circuit.polynomial(), poly, "seed {seed} dst {dst}")
                    }
                    None => assert!(out.circuit.polynomial().is_empty()),
                }
            }
        }
    }

    #[test]
    fn grounding_and_size_are_linear_in_m() {
        let p = three_hop_left_linear();
        let mut rows = Vec::new();
        for n in [16usize, 32, 64] {
            let g = generators::gnm(n, 3 * n, &["E"], 5);
            let out = finite_rpq_circuit(&p, &g, 0, (n - 1) as NodeId).unwrap();
            rows.push((g.num_edges(), out.grounding_size));
        }
        // Grounding size per edge stays bounded (linear-size witness).
        for &(m, gsize) in &rows {
            assert!(gsize <= 8 * m, "grounding {gsize} for m={m}");
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let p = three_hop_left_linear();
        let mut depths = Vec::new();
        for n in [16usize, 64] {
            let g = generators::gnm(n, 4 * n, &["E"], 9);
            let out = finite_rpq_circuit(&p, &g, 0, (n - 1) as NodeId).unwrap();
            depths.push(stats(&out.circuit).depth as f64);
        }
        // 4× the input should add only additive O(log) depth.
        assert!(depths[1] <= depths[0] + 8.0, "{depths:?}");
    }
}
