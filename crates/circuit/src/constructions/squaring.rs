//! The repeated-squaring circuit for transitive-closure provenance
//! (Theorem 5.7): size O(n³ log n), depth **O(log² n)** — the absorptive
//! analogue of TC ∈ NC², and depth-optimal by the Karchmer–Wigderson
//! bound (Theorem 3.4).
//!
//! The adjacency matrix `M` (with `M[i][i] = 1`) is squared ⌈log₂ n⌉ times
//! over the semiring; the `(s, t)` entry of `M^{2^⌈log n⌉}` computes the
//! provenance of `T(s, t)` for `s ≠ t` (for `s = t` the entry is the
//! constant 1 — the paper's remark (ii): diagonal entries stay 1 under
//! absorption).

use graphgen::{LabeledDigraph, NodeId};
use semiring::VarId;

use crate::arena::{Circuit, CircuitBuilder, GateId};

/// The matrix of gates after repeated squaring, with extraction helpers.
#[derive(Clone, Debug)]
pub struct SquaringResult {
    builder: CircuitBuilder,
    n: usize,
    entries: Vec<GateId>,
    /// Number of squarings performed (⌈log₂ n⌉, or fewer on structural
    /// fixpoint).
    pub squarings: usize,
}

impl SquaringResult {
    /// The circuit for entry `(s, t)`. For `s ≠ t` this is the provenance
    /// polynomial of `T(s, t)`.
    pub fn circuit_for(&self, s: NodeId, t: NodeId) -> Circuit {
        self.builder
            .clone()
            .finish(self.entries[s as usize * self.n + t as usize])
    }

    /// Shared arena size.
    pub fn arena_size(&self) -> usize {
        self.builder.arena_size()
    }
}

/// Build the Theorem 5.7 squaring circuit over an edge list.
pub fn squaring_all(
    num_nodes: usize,
    edges: &[(NodeId, NodeId)],
    vars: &[VarId],
) -> SquaringResult {
    assert_eq!(edges.len(), vars.len());
    let n = num_nodes;
    let mut b = CircuitBuilder::new();
    let zero = b.zero();
    let one = b.one();

    // M[i][j]: 1 on the diagonal, ⊕ of parallel edge variables off it.
    let mut m = vec![zero; n * n];
    for i in 0..n {
        m[i * n + i] = one;
    }
    let mut parallel: std::collections::HashMap<(NodeId, NodeId), Vec<GateId>> =
        std::collections::HashMap::new();
    for (e, &(u, v)) in edges.iter().enumerate() {
        let x = b.input(vars[e]);
        parallel.entry((u, v)).or_default().push(x);
    }
    for ((u, v), xs) in parallel {
        if u != v {
            // Self-loops are absorbed by the diagonal 1 (paper remark (i)).
            m[u as usize * n + v as usize] = b.add_many(&xs);
        }
    }

    // ⌈log₂ n⌉ squarings: M^{2^rounds} ⪰ M^n, and entries are stable from
    // exponent n on (all simple paths/cycles are covered).
    let rounds = if n <= 1 {
        0
    } else {
        (n as f64).log2().ceil() as usize
    };
    let mut squarings = 0;
    for _ in 0..rounds {
        let mut next = vec![zero; n * n];
        for i in 0..n {
            for j in 0..n {
                let products: Vec<GateId> = (0..n)
                    .map(|k| {
                        let (a, c) = (m[i * n + k], m[k * n + j]);
                        b.mul(a, c)
                    })
                    .collect();
                next[i * n + j] = b.add_many(&products);
            }
        }
        squarings += 1;
        if next == m {
            break;
        }
        m = next;
    }
    SquaringResult {
        builder: b,
        n,
        entries: m,
        squarings,
    }
}

/// Wrapper for a [`LabeledDigraph`] (edge ids as provenance variables).
pub fn squaring_graph(g: &LabeledDigraph) -> SquaringResult {
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    let vars: Vec<VarId> = (0..g.num_edges() as VarId).collect();
    squaring_all(g.num_nodes(), &edges, &vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::bellman_ford::bellman_ford_graph;
    use crate::metrics::stats;
    use graphgen::generators;
    use semiring::{Semiring, Tropical, UnitWeights};

    #[test]
    fn agrees_with_bellman_ford_off_diagonal() {
        for seed in 0..4u64 {
            let g = generators::gnm(7, 16, &["E"], seed);
            let sq = squaring_graph(&g);
            for (s, t) in [(0u32, 3u32), (1, 6), (4, 2)] {
                let c1 = sq.circuit_for(s, t);
                let c2 = bellman_ford_graph(&g, s, t);
                assert_eq!(c1.polynomial(), c2.polynomial(), "seed {seed} ({s},{t})");
            }
        }
    }

    #[test]
    fn diagonal_is_one_by_absorption() {
        let g = generators::cycle(3, "E");
        let sq = squaring_graph(&g);
        let c = sq.circuit_for(1, 1);
        assert!(c.polynomial().is_one());
    }

    #[test]
    fn depth_grows_as_log_squared() {
        // Depth/log₂(n)² should stay roughly constant while depth/log₂(n)
        // must grow.
        let mut rows = Vec::new();
        for n in [8usize, 16, 32] {
            let g = generators::cycle(n, "E");
            let sq = squaring_graph(&g);
            let c = sq.circuit_for(0, (n / 2) as NodeId);
            let d = stats(&c).depth as f64;
            let log = (n as f64).log2();
            rows.push((d / log, d / (log * log)));
        }
        // d/log n increases markedly…
        assert!(rows[2].0 > rows[0].0 * 1.3, "{rows:?}");
        // …while d/log² n stays within a 2.5× band.
        let ratios: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let (min, max) = (
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0, f64::max),
        );
        assert!(max / min < 2.5, "{ratios:?}");
    }

    #[test]
    fn tropical_all_pairs_shortest_paths() {
        let g = generators::gnm(8, 20, &["E"], 21);
        let sq = squaring_graph(&g);
        for s in 0..4u32 {
            let dist = g.bfs_distances(s);
            for t in 0..8u32 {
                if s == t {
                    continue;
                }
                let val = sq
                    .circuit_for(s, t)
                    .eval(&UnitWeights::new(Tropical::new(1)));
                match dist[t as usize] {
                    Some(d) if d > 0 => assert_eq!(val, Tropical::new(d), "({s},{t})"),
                    _ => assert!(val.is_zero(), "({s},{t})"),
                }
            }
        }
    }

    #[test]
    fn parallel_edges_sum() {
        let mut g = graphgen::LabeledDigraph::new(2);
        g.add_edge(0, 1, "E");
        g.add_edge(0, 1, "E");
        let sq = squaring_graph(&g);
        let poly = sq.circuit_for(0, 1).polynomial();
        assert_eq!(poly.len(), 2);
    }
}
