//! RPQ circuits via the product-graph reduction to TC (Theorem 5.9,
//! second direction).
//!
//! The RPQ over `G` becomes transitive closure over `G × DFA`: for each
//! accept state `q_f`, build a TC circuit from `(s, q₀)` to `(t, q_f)` and
//! ⊕-sum the results. Product edges carry the provenance variable of their
//! originating graph edge ("connecting the input variables based on its
//! projections to G"), so the resulting circuit directly computes the RPQ's
//! provenance polynomial — with the same size and depth as the underlying
//! TC construction, which is how the paper transfers both upper bounds.

use grammar::Dfa;
use graphgen::{product_with_dfa, LabeledDigraph, NodeId};
use semiring::VarId;

use crate::arena::{Circuit, CircuitBuilder};
use crate::constructions::bellman_ford::bellman_ford_all;
use crate::constructions::squaring::squaring_all;

/// Which TC construction to run on the product graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcStrategy {
    /// Theorem 5.6: size O(mn), depth O(n log n).
    BellmanFord,
    /// Theorem 5.7: size O(n³ log n), depth O(log² n).
    RepeatedSquaring,
}

/// Build the circuit for the RPQ fact `(src, dst)` with the given DFA
/// (compiled against the graph's alphabet).
///
/// Note: a `src = dst` query with `ε ∈ L` yields the constant 1 (the empty
/// path), mirroring the diagonal-1 convention of Theorem 5.7.
pub fn rpq_circuit(
    graph: &LabeledDigraph,
    dfa: &Dfa,
    src: NodeId,
    dst: NodeId,
    strategy: TcStrategy,
) -> Circuit {
    let prod = product_with_dfa(graph, dfa);
    let vars: Vec<VarId> = prod.edge_origin.iter().map(|&e| e as VarId).collect();
    let start = prod.node(src, dfa.start);
    let accepts: Vec<NodeId> = (0..dfa.num_states)
        .filter(|&q| dfa.accepting[q])
        .map(|q| prod.node(dst, q))
        .collect();

    match strategy {
        TcStrategy::BellmanFord => {
            let mo = bellman_ford_all(prod.num_nodes, &prod.edges, &vars, start);
            // ⊕-sum over accept states, plus the ε-path when applicable.
            merge_outputs(mo, &accepts, src == dst && dfa.accepting[dfa.start])
        }
        TcStrategy::RepeatedSquaring => {
            let sq = squaring_all(prod.num_nodes, &prod.edges, &vars);
            // The squaring matrix's diagonal 1 already covers the ε-path
            // when (src,q0) == (dst,qf).
            let circuits: Vec<Circuit> =
                accepts.iter().map(|&a| sq.circuit_for(start, a)).collect();
            sum_circuits(&circuits)
        }
    }
}

/// Merge several outputs of a [`super::MultiOutput`] into one ⊕-gate.
fn merge_outputs(mo: super::MultiOutput, outputs: &[NodeId], include_epsilon: bool) -> Circuit {
    // Clone the arena once and sum the chosen outputs within it.
    let circuits: Vec<Circuit> = outputs
        .iter()
        .map(|&o| mo.circuit_for(o as usize))
        .collect();
    let mut merged = sum_circuits(&circuits);
    if include_epsilon {
        // c ⊕ 1: over an absorptive semiring this is 1; keep it explicit so
        // the polynomial is faithful.
        let mut b = CircuitBuilder::new();
        let rebuilt = import(&mut b, &merged);
        let one = b.one();
        let out = b.add(rebuilt, one);
        merged = b.finish(out);
    }
    merged
}

/// ⊕-sum of independently built circuits (re-imported into one arena).
pub fn sum_circuits(circuits: &[Circuit]) -> Circuit {
    let mut b = CircuitBuilder::new();
    let outs: Vec<_> = circuits.iter().map(|c| import(&mut b, c)).collect();
    let out = b.add_many(&outs);
    b.finish(out)
}

/// Import a circuit into a builder, returning the mapped output gate.
/// Hash-consing deduplicates shared structure across imports.
pub fn import(b: &mut CircuitBuilder, c: &Circuit) -> crate::arena::GateId {
    use crate::arena::Gate;
    let mut map = Vec::with_capacity(c.gates().len());
    for gate in c.gates() {
        let id = match *gate {
            Gate::Zero => b.zero(),
            Gate::One => b.one(),
            Gate::Input(v) => b.input(v),
            Gate::Add(x, y) => {
                let (mx, my) = (map[x as usize], map[y as usize]);
                b.add(mx, my)
            }
            Gate::Mul(x, y) => {
                let (mx, my) = (map[x as usize], map[y as usize]);
                b.mul(mx, my)
            }
        };
        map.push(id);
    }
    map[c.output() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::stats;
    use datalog::Database;
    use grammar::Regex;
    use graphgen::generators;
    use semiring::Semiring as _;

    /// Oracle: the chain-Datalog provenance of the RPQ via grounding.
    fn rpq_oracle(
        program_text: &str,
        g: &graphgen::LabeledDigraph,
        src: usize,
        dst: usize,
    ) -> Option<semiring::Sorp> {
        let mut p = datalog::parse_program(program_text).unwrap();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = datalog::ground(&p, &db).unwrap();
        let t = p.target;
        gp.fact(
            t,
            &[db.node_const(src).unwrap(), db.node_const(dst).unwrap()],
        )
        .map(|f| {
            let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
            out.values[f].clone()
        })
    }

    #[test]
    fn tc_as_rpq_matches_datalog_for_both_strategies() {
        let tc_text = "T(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).";
        for seed in 0..3u64 {
            let mut g = generators::gnm(6, 12, &["E"], seed);
            let dfa = Dfa::compile(&Regex::parse("E E*").unwrap(), &mut g.alphabet);
            for (s, t) in [(0usize, 5usize), (1, 4)] {
                let oracle = rpq_oracle(tc_text, &g, s, t);
                for strat in [TcStrategy::BellmanFord, TcStrategy::RepeatedSquaring] {
                    let c = rpq_circuit(&g, &dfa, s as NodeId, t as NodeId, strat);
                    match &oracle {
                        Some(poly) => {
                            assert_eq!(&c.polynomial(), poly, "seed {seed} ({s},{t}) {strat:?}")
                        }
                        None => assert!(c.polynomial().is_empty()),
                    }
                }
            }
        }
    }

    #[test]
    fn two_label_rpq_matches_datalog() {
        // L = a b* — left-linear chain program:
        // T(x,y) :- A(x,y).  T(x,y) :- T(x,z), B(z,y).
        let text = "T(X,Y) :- A(X,Y).\nT(X,Y) :- T(X,Z), B(Z,Y).";
        for seed in 3..6u64 {
            let mut g = generators::gnm(6, 14, &["A", "B"], seed);
            let dfa = Dfa::compile(&Regex::parse("A B*").unwrap(), &mut g.alphabet);
            for (s, t) in [(0usize, 3usize), (2, 5)] {
                let oracle = rpq_oracle(text, &g, s, t);
                let c = rpq_circuit(&g, &dfa, s as NodeId, t as NodeId, TcStrategy::BellmanFord);
                match &oracle {
                    Some(poly) => {
                        assert_eq!(&c.polynomial(), poly, "seed {seed} ({s},{t})")
                    }
                    None => assert!(c.polynomial().is_empty(), "seed {seed} ({s},{t})"),
                }
            }
        }
    }

    #[test]
    fn squaring_strategy_keeps_polylog_depth() {
        let mut depths = Vec::new();
        for n in [8usize, 16, 32] {
            let mut g = generators::cycle(n, "E");
            let dfa = Dfa::compile(&Regex::parse("E E*").unwrap(), &mut g.alphabet);
            let c = rpq_circuit(&g, &dfa, 0, (n / 2) as NodeId, TcStrategy::RepeatedSquaring);
            depths.push(stats(&c).depth as f64);
        }
        assert!(depths[2] / depths[1] < 1.8, "{depths:?}");
    }

    #[test]
    fn epsilon_query_on_same_node() {
        let mut g = generators::path(2, "E");
        let dfa = Dfa::compile(&Regex::parse("E*").unwrap(), &mut g.alphabet);
        let c = rpq_circuit(&g, &dfa, 1, 1, TcStrategy::BellmanFord);
        // ε ∈ E*: the polynomial contains 1, which absorbs everything.
        assert!(c.polynomial().is_one());
    }
}
