//! The Bellman–Ford circuit for transitive-closure provenance
//! (Theorem 5.6): size O(mn), depth O(n log n), over any absorptive
//! semiring.
//!
//! `f^k_j` computes the ⊕-sum over walks of length ≤ k from the source to
//! `j` of the ⊗-product of their edge variables; walks that are not paths
//! are absorbed by their path sub-monomials (the proof of Thm 5.6). The
//! recursion is `f^k_j = f^{k-1}_j ⊕ ⊕_{(i,j)∈E} f^{k-1}_i ⊗ x_{i,j}`, run
//! for `n-1` layers (hash-consing stops earlier when the layers stabilize).

use graphgen::{LabeledDigraph, NodeId};
use semiring::VarId;

use crate::arena::{Circuit, CircuitBuilder, GateId};
use crate::constructions::MultiOutput;

/// Build Bellman–Ford gates for all targets from source `s`; output `j` is
/// the provenance of "some path with ≥ 1 edge from `s` to `j`".
pub fn bellman_ford_all(
    num_nodes: usize,
    edges: &[(NodeId, NodeId)],
    vars: &[VarId],
    s: NodeId,
) -> MultiOutput {
    assert_eq!(edges.len(), vars.len());
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (e, &(_, v)) in edges.iter().enumerate() {
        in_edges[v as usize].push(e);
    }
    let mut b = CircuitBuilder::new();
    let zero = b.zero();

    // f^1_j = ⊕ of variables of edges (s, j).
    let mut f: Vec<GateId> = vec![zero; num_nodes];
    for (j, slot) in f.iter_mut().enumerate() {
        let direct: Vec<GateId> = in_edges[j]
            .iter()
            .filter(|&&e| edges[e].0 == s)
            .map(|&e| b.input(vars[e]))
            .collect();
        *slot = b.add_many(&direct);
    }

    // n-1 layers cover all simple paths (s ≠ t); running to layer n also
    // covers simple cycles through s, so self-facts T(s,s) are exact too.
    let mut layers = 1;
    for _ in 2..=num_nodes {
        let mut next = vec![zero; num_nodes];
        for (j, slot) in next.iter_mut().enumerate() {
            let mut summands = Vec::with_capacity(in_edges[j].len() + 1);
            summands.push(f[j]);
            for &e in &in_edges[j] {
                let (i, _) = edges[e];
                let x = b.input(vars[e]);
                summands.push(b.mul(f[i as usize], x));
            }
            *slot = b.add_many(&summands);
        }
        layers += 1;
        if next == f {
            break;
        }
        f = next;
    }
    MultiOutput::new(b, f, layers)
}

/// The Theorem 5.6 circuit for a single fact `T(s, t)`.
pub fn bellman_ford_circuit(
    num_nodes: usize,
    edges: &[(NodeId, NodeId)],
    vars: &[VarId],
    s: NodeId,
    t: NodeId,
) -> Circuit {
    let mo = bellman_ford_all(num_nodes, edges, vars, s);
    mo.circuit_for(t as usize)
}

/// Wrapper for a [`LabeledDigraph`] (labels ignored; edge ids are the
/// provenance variables).
pub fn bellman_ford_graph(g: &LabeledDigraph, s: NodeId, t: NodeId) -> Circuit {
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    let vars: Vec<VarId> = (0..g.num_edges() as VarId).collect();
    bellman_ford_circuit(g.num_nodes(), &edges, &vars, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::stats;
    use datalog::{programs, Database};
    use graphgen::generators;
    use semiring::{Semiring, Tropical, UnitWeights};

    fn tc_oracle(g: &graphgen::LabeledDigraph, s: usize, t: usize) -> Option<semiring::Sorp> {
        let mut p = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p, g);
        let gp = datalog::ground(&p, &db).unwrap();
        let tpred = p.preds.get("T").unwrap();
        gp.fact(
            tpred,
            &[db.node_const(s).unwrap(), db.node_const(t).unwrap()],
        )
        .map(|f| {
            let out = datalog::provenance_eval(&gp, datalog::default_budget(&gp));
            out.values[f].clone()
        })
    }

    #[test]
    fn matches_tc_provenance_on_random_graphs() {
        for seed in 0..4u64 {
            let g = generators::gnm(7, 15, &["E"], seed);
            for (s, t) in [(0usize, 6usize), (1, 5), (2, 2)] {
                let circuit = bellman_ford_graph(&g, s as NodeId, t as NodeId);
                match tc_oracle(&g, s, t) {
                    Some(poly) => {
                        assert_eq!(circuit.polynomial(), poly, "seed {seed} ({s},{t})")
                    }
                    None => assert!(circuit.polynomial().is_empty(), "seed {seed} ({s},{t})"),
                }
            }
        }
    }

    #[test]
    fn works_on_cyclic_graphs() {
        let g = generators::cycle(4, "E");
        let circuit = bellman_ford_graph(&g, 0, 0);
        // Provenance of T(0,0): the full 4-cycle.
        let poly = circuit.polynomial();
        assert_eq!(poly.len(), 1);
        assert_eq!(poly.degree(), 4);
    }

    #[test]
    fn tropical_value_is_shortest_path() {
        let g = generators::gnm(10, 30, &["E"], 11);
        for t in 1..6u32 {
            let circuit = bellman_ford_graph(&g, 0, t);
            let val = circuit.eval(&UnitWeights::new(Tropical::new(1)));
            match g.bfs_distances(0)[t as usize] {
                Some(d) if d > 0 => assert_eq!(val, Tropical::new(d)),
                _ => assert!(val.is_zero()),
            }
        }
    }

    #[test]
    fn size_scales_as_m_times_n() {
        // Dense graph: size should grow ~ n·m; depth ~ n log n.
        let mut sizes = Vec::new();
        for n in [6usize, 12] {
            let g = generators::complete(n, "E");
            let circuit = bellman_ford_graph(&g, 0, (n - 1) as NodeId);
            sizes.push(stats(&circuit).num_gates as f64);
        }
        // m·n grows 16× from n=6 to n=12 (m ~ n²); allow slack but demand
        // clearly superquadratic growth (> 6×).
        assert!(sizes[1] / sizes[0] > 6.0, "sizes: {sizes:?}");
    }

    #[test]
    fn depth_grows_linearly_with_n_on_paths() {
        let mut depths = Vec::new();
        for n in [8usize, 16, 32] {
            let g = generators::path(n, "E");
            let circuit = bellman_ford_graph(&g, 0, n as NodeId);
            depths.push(stats(&circuit).depth as f64);
        }
        assert!(depths[1] / depths[0] > 1.6, "depths: {depths:?}");
        assert!(depths[2] / depths[1] > 1.6, "depths: {depths:?}");
    }
}
