//! Verification utilities: every construction is checked against the
//! brute-force oracles of the `datalog` crate.
//!
//! The chain of trust: tight-proof-tree enumeration (Definition 2.2 — the
//! paper's *definition* of provenance) ⟶ naive `Sorp` evaluation
//! (Proposition 2.4) ⟶ circuit polynomials (§2.5 "computes"). Equality in
//! `Sorp(X)` implies equal values over **every** absorptive semiring.

use datalog::GroundedProgram;
use provcirc_error::Error;
use semiring::valuation::Valuation;
use semiring::{Absorptive, Semiring, Sorp};

use crate::arena::Circuit;

/// Check that a circuit computes exactly the provenance polynomial of a
/// grounded IDB fact, by brute-force proof-tree enumeration (up to `cap`
/// trees; errors if the instance is too large to enumerate).
pub fn check_against_proof_trees(
    circuit: &Circuit,
    gp: &GroundedProgram,
    fact: usize,
    cap: usize,
) -> Result<(), Error> {
    let expected = datalog::provenance_polynomial(gp, fact, cap)
        .ok_or_else(|| Error::TooLarge("too many tight proof trees to enumerate".into()))?;
    let got = circuit.polynomial();
    if got == expected {
        Ok(())
    } else {
        Err(Error::VerificationFailed(format!(
            "circuit polynomial mismatch:\n  circuit: {got}\n  proof trees: {expected}"
        )))
    }
}

/// Check that two circuits compute the same polynomial over every
/// absorptive semiring.
pub fn equivalent(c1: &Circuit, c2: &Circuit) -> bool {
    c1.polynomial() == c2.polynomial()
}

/// Check agreement between direct circuit evaluation and naive Datalog
/// evaluation under a concrete assignment (applies to *any* semiring, not
/// just absorptive ones, as long as naive evaluation converges).
pub fn check_against_naive_eval<S, V>(
    circuit: &Circuit,
    gp: &GroundedProgram,
    fact: usize,
    assign: &V,
) -> Result<(), Error>
where
    S: Semiring,
    V: Valuation<S> + ?Sized,
{
    let budget = datalog::default_budget(gp);
    let out = datalog::naive_eval(gp, assign, budget);
    if !out.converged {
        return Err(Error::Diverged { iterations: budget });
    }
    let direct = circuit.eval(assign);
    if direct.sr_eq(&out.values[fact]) {
        Ok(())
    } else {
        Err(Error::VerificationFailed(format!(
            "value mismatch over {}: circuit {direct:?}, naive {:?}",
            S::NAME,
            out.values[fact]
        )))
    }
}

/// Full cross-check bundle used by integration tests: polynomial equality
/// against proof trees plus concrete agreement over an absorptive semiring.
pub fn verify_circuit<S, V>(
    circuit: &Circuit,
    gp: &GroundedProgram,
    fact: usize,
    assign: &V,
    tree_cap: usize,
) -> Result<(), Error>
where
    S: Absorptive,
    V: Valuation<S> + ?Sized,
{
    circuit.validate()?;
    check_against_proof_trees(circuit, gp, fact, tree_cap)?;
    check_against_naive_eval(circuit, gp, fact, assign)?;
    // And the polynomial evaluated pointwise agrees with the direct run.
    let via_poly: S = circuit.polynomial().eval(assign);
    let direct = circuit.eval(assign);
    if via_poly.sr_eq(&direct) {
        Ok(())
    } else {
        Err(Error::VerificationFailed(
            "polynomial evaluation disagrees with direct evaluation".into(),
        ))
    }
}

/// The canonical provenance polynomial of a circuit (re-exported
/// convenience).
pub fn polynomial(circuit: &Circuit) -> Sorp {
    circuit.polynomial()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::grounded::grounded_circuit;
    use datalog::{programs, Database};
    use graphgen::generators;
    use semiring::Tropical;

    #[test]
    fn verify_bundle_passes_on_tc() {
        let mut p = programs::transitive_closure();
        let g = generators::gnm(6, 12, &["E"], 2);
        let (_, _) = Database::from_graph(&mut p, &g);
        let mut p2 = programs::transitive_closure();
        let (db, _) = Database::from_graph(&mut p2, &g);
        let gp = datalog::ground(&p2, &db).unwrap();
        let mo = grounded_circuit(&gp, None);
        for fact in 0..gp.num_idb_facts() {
            verify_circuit(
                &mo.circuit_for(fact),
                &gp,
                fact,
                &semiring::from_fn(|f| Tropical::new((f as u64 % 3) + 1)),
                50_000,
            )
            .unwrap();
        }
    }

    #[test]
    fn detects_wrong_circuits() {
        let mut p = programs::transitive_closure();
        let g = generators::path(2, "E");
        let (db, _) = Database::from_graph(&mut p, &g);
        let gp = datalog::ground(&p, &db).unwrap();
        // A bogus circuit: just x0.
        let mut b = crate::arena::CircuitBuilder::new();
        let x0 = b.input(0);
        let bogus = b.finish(x0);
        let t = p.preds.get("T").unwrap();
        let f02 = gp
            .fact(t, &[db.node_const(0).unwrap(), db.node_const(2).unwrap()])
            .unwrap();
        assert!(check_against_proof_trees(&bogus, &gp, f02, 1000).is_err());
    }
}
