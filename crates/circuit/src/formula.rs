//! Formulas: circuits whose gates have fan-out one (paper §2.5).
//!
//! Proposition 3.3: a circuit of depth `d` expands into an equivalent
//! formula of size ≤ 2^d and the same depth. This module materializes that
//! expansion (with a size cap, since the expansion is intentionally
//! super-polynomial for the paper's hard instances), so the formula-size
//! experiments can account exactly.

use semiring::valuation::Valuation;
use semiring::{Semiring, VarId};

use crate::arena::{Circuit, Gate};

/// A formula: a tree over the same gate vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// The constant 0.
    Zero,
    /// The constant 1.
    One,
    /// An input variable.
    Input(VarId),
    /// `l ⊕ r`.
    Add(Box<Formula>, Box<Formula>),
    /// `l ⊗ r`.
    Mul(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Number of nodes.
    pub fn size(&self) -> u128 {
        match self {
            Formula::Zero | Formula::One | Formula::Input(_) => 1,
            Formula::Add(l, r) | Formula::Mul(l, r) => {
                1u128.saturating_add(l.size()).saturating_add(r.size())
            }
        }
    }

    /// Depth (edges on the longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        match self {
            Formula::Zero | Formula::One | Formula::Input(_) => 0,
            Formula::Add(l, r) | Formula::Mul(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Evaluate over a semiring.
    pub fn eval<S, V>(&self, assign: &V) -> S
    where
        S: Semiring,
        V: Valuation<S> + ?Sized,
    {
        match self {
            Formula::Zero => S::zero(),
            Formula::One => S::one(),
            Formula::Input(v) => assign.value(*v),
            Formula::Add(l, r) => l.eval(assign).add(&r.eval(assign)),
            Formula::Mul(l, r) => l.eval(assign).mul(&r.eval(assign)),
        }
    }
}

/// Expand a circuit into a formula (Proposition 3.3), failing if the result
/// would exceed `max_size` nodes.
pub fn expand(circuit: &Circuit, max_size: u128) -> Result<Formula, FormulaTooLarge> {
    // Check the size first via metrics (cheap DP), then build.
    let size = crate::metrics::stats(circuit).formula_size;
    if size > max_size {
        return Err(FormulaTooLarge { size });
    }
    Ok(build(circuit, circuit.output()))
}

fn build(circuit: &Circuit, gate: u32) -> Formula {
    match circuit.gates()[gate as usize] {
        Gate::Zero => Formula::Zero,
        Gate::One => Formula::One,
        Gate::Input(v) => Formula::Input(v),
        Gate::Add(a, b) => Formula::Add(Box::new(build(circuit, a)), Box::new(build(circuit, b))),
        Gate::Mul(a, b) => Formula::Mul(Box::new(build(circuit, a)), Box::new(build(circuit, b))),
    }
}

/// The expansion would exceed the requested size cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FormulaTooLarge {
    /// The exact (saturating) expansion size.
    pub size: u128,
}

impl std::fmt::Display for FormulaTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula expansion has {} nodes", self.size)
    }
}

impl std::error::Error for FormulaTooLarge {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::CircuitBuilder;
    use semiring::prelude::*;

    #[test]
    fn expansion_preserves_value_and_depth() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(x0, x1);
        let out = b.mul(s, s);
        let c = b.finish(out);
        let f = expand(&c, 1_000).unwrap();
        assert_eq!(f.size(), 7);
        assert_eq!(f.depth(), 2);
        let assign = semiring::from_fn(|v: VarId| Tropical::new(v as u64 + 1));
        assert_eq!(f.eval(&assign), c.eval(&assign));
    }

    #[test]
    fn expansion_respects_cap() {
        let mut b = CircuitBuilder::new();
        let mut g = b.input(0);
        for _ in 0..40 {
            g = b.mul(g, g);
        }
        let c = b.finish(g);
        let err = expand(&c, 1_000_000).unwrap_err();
        assert!(err.size > 1u128 << 40);
    }

    #[test]
    fn formula_size_matches_metrics() {
        let mut b = CircuitBuilder::new();
        let xs: Vec<_> = (0..10).map(|v| b.input(v)).collect();
        let s1 = b.add_many(&xs[..5]);
        let s2 = b.add_many(&xs[5..]);
        let m = b.mul(s1, s2);
        let out = b.add(m, s1); // shared s1
        let c = b.finish(out);
        let f = expand(&c, u128::MAX).unwrap();
        assert_eq!(f.size(), crate::metrics::stats(&c).formula_size);
        assert_eq!(f.depth(), crate::metrics::stats(&c).depth);
    }
}
